"""KORE_LSH recall/speed frontier on the golden corpus.

Runs the full AIDA pipeline over the frozen golden corpus
(``tests/fixtures/golden/corpus.jsonl``, same world/KB seeds as the
regression fixture) under three coherence backends — exact KORE,
KORE_LSH-G (recall-geared) and KORE_LSH-F (speed-geared) — and reports
the frontier: pairwise comparisons computed, disambiguation accuracy,
and wall time.  Comparisons are counted per document (each measure's
pair cache is reset between documents), the quantity Table 4.4 reports.

Also runs the zero-fault chaos differential: a ``rate=0.0`` fault spec
at the ``relatedness`` site counts calls without injecting, confirming
that every surviving pair fires the site exactly once and is counted
exactly once (the inner exact measure's counter stays at zero).

Runs two ways:

* under pytest with the rest of the benchmark suite (a smoke that
  checks the frontier shape, not wall-clock);
* as a script writing ``BENCH_lsh.json``::

      PYTHONPATH=src:. python benchmarks/bench_lsh.py \
          --out BENCH_lsh.json --check

  ``--check`` exits non-zero unless KORE_LSH-G computes at most 1/3 of
  exact KORE's comparisons, both LSH backends keep micro accuracy
  within one point of the exact path, and the chaos differential holds
  (the CI ``lsh-smoke`` gate).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

from benchmarks.common import render_table
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.datagen.io import load_corpus
from repro.datagen.wikipedia import build_world_kb
from repro.datagen.world import World, WorldConfig
from repro.eval.runner import run_disambiguator
from repro.faults import FaultInjector, FaultSpec, injected

#: Same seeds as tests/fixtures/golden/generate.py and tests/conftest.py.
WORLD_SEED = 7
CLUSTERS_PER_DOMAIN = 4
KB_SEED = 101

GOLDEN_CORPUS = os.path.join(
    os.path.dirname(__file__),
    os.pardir,
    "tests",
    "fixtures",
    "golden",
    "corpus.jsonl",
)

BACKENDS = ("kore", "kore_lsh_g", "kore_lsh_f")

#: The acceptance gates of the lsh-smoke CI job.
CHECK_COMPARISON_RATIO = 1.0 / 3.0
CHECK_ACCURACY_POINTS = 0.01

_cache: Dict[str, object] = {}


def golden_kb():
    if "kb" not in _cache:
        world = World.generate(
            WorldConfig(
                seed=WORLD_SEED, clusters_per_domain=CLUSTERS_PER_DOMAIN
            )
        )
        _cache["world"] = world
        _cache["kb"], _ = build_world_kb(world, seed=KB_SEED)
    return _cache["kb"]


def golden_documents():
    if "docs" not in _cache:
        _cache["docs"] = load_corpus(GOLDEN_CORPUS)
    return _cache["docs"]


class _PerDocumentComparisons:
    """Pipeline shim resetting the measure's pair cache per document.

    Without the reset, exact KORE would amortize repeated cross-document
    pairs through its instance cache while the LSH wrapper (whose
    ``prepare`` clears its task cache) would not — the per-document
    reset makes the comparison counts symmetric and per-document, the
    way Table 4.4 counts them.
    """

    def __init__(self, pipeline: AidaDisambiguator):
        self.pipeline = pipeline
        self.comparisons = 0

    def _flush(self) -> None:
        measure = self.pipeline.relatedness
        self.comparisons += measure.comparisons
        measure.reset_stats()

    def disambiguate(self, document, **kwargs):
        self._flush()
        return self.pipeline.disambiguate(document, **kwargs)

    def total_comparisons(self) -> int:
        self._flush()
        return self.comparisons


def run_frontier(doc_limit: Optional[int] = None) -> List[Dict[str, object]]:
    """One frontier row per backend: comparisons, accuracy, wall time."""
    kb = golden_kb()
    documents = golden_documents()
    if doc_limit:
        documents = documents[:doc_limit]
    rows: List[Dict[str, object]] = []
    exact_comparisons = 0
    exact_micro = 0.0
    for backend in BACKENDS:
        config = AidaConfig.full()
        config.relatedness_backend = backend
        pipeline = AidaDisambiguator(kb, config=config)
        shim = _PerDocumentComparisons(pipeline)
        start = time.perf_counter()
        run = run_disambiguator(shim, documents, kb=kb)
        elapsed = time.perf_counter() - start
        comparisons = shim.total_comparisons()
        measure = pipeline.relatedness
        if backend == "kore":
            exact_comparisons = comparisons
            exact_micro = run.micro
        row: Dict[str, object] = {
            "backend": backend,
            "measure": measure.name,
            "documents": len(documents),
            "comparisons": comparisons,
            "comparison_ratio_vs_exact": (
                comparisons / exact_comparisons if exact_comparisons else 1.0
            ),
            "micro_accuracy": run.micro,
            "macro_accuracy": run.macro,
            "accuracy_delta_vs_exact": run.micro - exact_micro,
            "seconds": elapsed,
            "docs_per_second": (
                len(documents) / elapsed if elapsed > 0 else 0.0
            ),
        }
        if hasattr(measure, "pruned_pairs"):
            row["pruned_pairs"] = measure.pruned_pairs
            row["survived_pairs"] = measure.survived_pairs
            row["prepared_tasks"] = measure.prepared_tasks
        rows.append(row)
    return rows


def run_chaos_differential() -> Dict[str, object]:
    """Zero-fault differential: one fire + one count per surviving pair."""
    kb = golden_kb()
    documents = golden_documents()
    config = AidaConfig.full()
    config.relatedness_backend = "kore_lsh_g"
    measure = AidaDisambiguator.build_relatedness(kb, config)
    entities = sorted(
        {
            entity
            for mention in documents[0].document.mentions
            for entity in kb.candidates(mention.surface)
        }
    )
    measure.prepare(entities)
    injector = FaultInjector([FaultSpec(site="relatedness", rate=0.0)])
    surviving = 0
    with injected(injector):
        for i, a in enumerate(entities):
            for b in entities[i + 1 :]:
                measure.relatedness(a, b)
                if measure.should_compare(a, b):
                    surviving += 1
    stats = injector.stats().get("relatedness", {"calls": 0, "injected": 0})
    return {
        "candidate_entities": len(entities),
        "surviving_pairs": surviving,
        "injector_calls": stats["calls"],
        "faults_injected": stats["injected"],
        "wrapper_comparisons": measure.comparisons,
        "inner_comparisons": measure.inner.comparisons,
        "single_fire_single_count": (
            surviving > 0
            and stats["calls"] == surviving
            and measure.comparisons == surviving
            and measure.inner.comparisons == 0
        ),
    }


def _render_frontier(rows) -> str:
    headers = [
        "backend",
        "comparisons",
        "vs exact",
        "micro",
        "macro",
        "seconds",
        "docs/s",
    ]
    table = [
        [
            str(r["measure"]),
            str(r["comparisons"]),
            f"{100 * r['comparison_ratio_vs_exact']:.1f}%",
            f"{100 * r['micro_accuracy']:.2f}%",
            f"{100 * r['macro_accuracy']:.2f}%",
            f"{r['seconds']:.3f}",
            f"{r['docs_per_second']:.2f}",
        ]
        for r in rows
    ]
    return render_table(
        headers, table, title="KORE_LSH frontier (golden corpus)"
    )


def check_gates(rows, chaos) -> List[str]:
    """The lsh-smoke gate; returns a list of failure messages."""
    failures: List[str] = []
    by_backend = {row["backend"]: row for row in rows}
    exact = by_backend["kore"]
    g = by_backend["kore_lsh_g"]
    if g["comparisons"] > exact["comparisons"] * CHECK_COMPARISON_RATIO:
        failures.append(
            f"KORE_LSH-G computed {g['comparisons']} comparisons, more "
            f"than 1/3 of exact KORE's {exact['comparisons']}"
        )
    for backend in ("kore_lsh_g", "kore_lsh_f"):
        delta = abs(
            by_backend[backend]["micro_accuracy"]
            - exact["micro_accuracy"]
        )
        if delta > CHECK_ACCURACY_POINTS + 1e-12:
            failures.append(
                f"{backend} micro accuracy drifted {100 * delta:.2f} "
                f"points from the exact path (> "
                f"{100 * CHECK_ACCURACY_POINTS:.0f})"
            )
    if (
        by_backend["kore_lsh_f"]["comparisons"] > g["comparisons"]
    ):
        failures.append(
            "KORE_LSH-F computed more comparisons than KORE_LSH-G "
            "(the speed-geared setting must prune at least as hard)"
        )
    if not chaos["single_fire_single_count"]:
        failures.append(
            "chaos differential: surviving pairs did not map 1:1 to "
            f"injector fires/comparison counts ({chaos})"
        )
    return failures


def test_lsh_smoke(benchmark):
    """Pytest smoke: the frontier shape and the chaos differential hold.

    Wall-clock is not gated here; the scripted ``--check`` run gates the
    comparison-count and accuracy criteria on the full golden corpus.
    """
    from benchmarks.conftest import report

    def run():
        return run_frontier(), run_chaos_differential()

    rows, chaos = benchmark.pedantic(run, rounds=1, iterations=1)
    report("KORE_LSH frontier - golden corpus", _render_frontier(rows))
    assert not check_gates(rows, chaos)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--doc-limit", type=int, default=0,
        help="cap the corpus at N documents (0 = full golden corpus)",
    )
    parser.add_argument(
        "--out", default="BENCH_lsh.json", help="JSON output path"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless KORE_LSH-G computes <= 1/3 of exact "
        "KORE's comparisons with micro accuracy within 1 point, F prunes "
        "at least as hard as G, and the zero-fault chaos differential "
        "confirms one fire + one count per surviving pair",
    )
    args = parser.parse_args(argv)

    rows = run_frontier(args.doc_limit or None)
    print(_render_frontier(rows))
    chaos = run_chaos_differential()
    print(
        "\nchaos differential: "
        f"{chaos['surviving_pairs']} surviving pairs, "
        f"{chaos['injector_calls']} injector calls, "
        f"{chaos['wrapper_comparisons']} wrapper / "
        f"{chaos['inner_comparisons']} inner comparisons -> "
        f"{'OK' if chaos['single_fire_single_count'] else 'MISMATCH'}"
    )

    record = {
        "benchmark": "kore_lsh_frontier",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "world_seed": WORLD_SEED,
        "clusters_per_domain": CLUSTERS_PER_DOMAIN,
        "kb_seed": KB_SEED,
        "check_comparison_ratio": CHECK_COMPARISON_RATIO,
        "check_accuracy_points": CHECK_ACCURACY_POINTS,
        "frontier": rows,
        "chaos_differential": chaos,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.out}")

    if args.check:
        failures = check_gates(rows, chaos)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
