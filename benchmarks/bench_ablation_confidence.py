"""Ablation — composition of the CONF assessor (Section 5.7.1).

CONF combines the normalized weighted-degree score with entity-
perturbation stability at 0.5/0.5.  This ablation compares normalization
alone, perturbation alone, and the combination by MAP over CoNLL testb.

Expected: the combination is at least as good as either component — the
paper found exactly this pair (with these coefficients) to work best.
"""

from __future__ import annotations

from benchmarks.common import bench_kb, conll_corpus, pct, render_table
from benchmarks.conftest import report
from repro.confidence.combined import ConfAssessor
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.eval.runner import run_disambiguator

VARIANTS = (
    ("normalization only", 1.0),
    ("perturbation only", 0.0),
    ("CONF (0.5 / 0.5)", 0.5),
)


def _run():
    kb = bench_kb()
    testb = conll_corpus().testb
    results = {}
    for name, norm_weight in VARIANTS:
        aida = AidaDisambiguator(kb, config=AidaConfig.full())
        assessor = ConfAssessor(
            aida, rounds=8, norm_weight=norm_weight, seed=33
        )

        class _Pipe:
            def __init__(self, inner):
                self._inner = inner

            def disambiguate(self, document):
                return self._inner.disambiguate_with_confidence(document)

        run = run_disambiguator(_Pipe(assessor), testb, kb=kb)
        results[name] = run.map
    return results


def test_ablation_confidence(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [[name, pct(value)] for name, value in results.items()]
    report(
        "Ablation - CONF assessor composition",
        render_table(["assessor", "MAP"], rows),
    )
    combined = results["CONF (0.5 / 0.5)"]
    assert combined >= results["normalization only"] - 0.01
    assert combined >= results["perturbation only"] - 0.01
