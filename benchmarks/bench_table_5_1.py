"""Table 5.1 / Figure 5.3 — disambiguation-confidence quality.

Compares four confidence assessors over CoNLL testb, ranked by each
assessor's confidence:

* ``prior``   — the popularity prior of the chosen entity,
* ``AIDAcoh`` — AIDA's raw (keyphrase/weighted-degree) score,
* ``IW``      — the Illinois-Wikifier-style linker score,
* ``CONF``    — the paper's combination of normalized weighted-degree
  score and entity-perturbation stability.

Reports MAP, precision@95%/80% confidence with the number of qualifying
mentions, and a downsampled precision-recall curve (Figure 5.3).

Expected shape (paper): CONF has the best MAP and near-perfect precision
at the 95% confidence level over a substantial mention count.
"""

from __future__ import annotations

from benchmarks.common import bench_kb, conll_corpus, pct, render_table
from benchmarks.conftest import report
from repro.baselines.prior_only import PriorOnlyDisambiguator
from repro.baselines.wikifier import WikifierDisambiguator
from repro.confidence.combined import ConfAssessor
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.eval.measures import (
    precision_at_confidence,
    precision_recall_points,
)
from repro.eval.ranking import precision_recall_curve
from repro.eval.runner import run_disambiguator


def _assessors():
    kb = bench_kb()
    aida = AidaDisambiguator(kb, config=AidaConfig.full())
    iw = WikifierDisambiguator(kb)
    conf = ConfAssessor(aida, rounds=8, seed=33)

    def aida_raw_conf(document, result):
        return {a.mention: a.score for a in result.assignments}

    def iw_conf(document, result):
        return {a.mention: iw.linker_score(a) for a in result.assignments}

    class ConfPipe:
        def disambiguate(self, document):
            return conf.disambiguate_with_confidence(document)

    return [
        ("prior", PriorOnlyDisambiguator(kb), None),
        ("AIDAcoh", aida, aida_raw_conf),
        ("IW", iw, iw_conf),
        ("CONF", ConfPipe(), None),
    ]


def _run():
    kb = bench_kb()
    testb = conll_corpus().testb
    results = {}
    for name, pipeline, conf_fn in _assessors():
        run = run_disambiguator(
            pipeline, testb, kb=kb, confidence_fn=conf_fn
        )
        p95, n95 = precision_at_confidence(run.evaluation.outcomes, 0.95)
        p80, n80 = precision_at_confidence(run.evaluation.outcomes, 0.80)
        curve = precision_recall_curve(
            precision_recall_points(run.evaluation.outcomes), num_points=10
        )
        results[name] = {
            "map": run.map,
            "p95": p95,
            "n95": n95,
            "p80": p80,
            "n80": n80,
            "curve": curve,
        }
    return results


def test_table_5_1(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for name, r in results.items():
        # prior and CONF confidences are calibrated probabilities; the raw
        # AIDA / IW scores are rank-only, so precision@confidence is shown
        # only for the calibrated assessors (as in the paper).
        calibrated = name in ("prior", "CONF")
        rows.append(
            [
                name,
                pct(r["p95"]) if calibrated else "-",
                str(r["n95"]) if calibrated else "-",
                pct(r["p80"]) if calibrated else "-",
                str(r["n80"]) if calibrated else "-",
                pct(r["map"]),
            ]
        )
    report(
        "Table 5.1 - confidence assessor quality",
        render_table(
            ["method", "Prec@95%", "#Men@95%", "Prec@80%", "#Men@80%",
             "MAP"],
            rows,
        ),
    )
    curve_rows = []
    for name, r in results.items():
        curve_rows.append(
            [name]
            + [f"{precision:.3f}" for _recall, precision in r["curve"]]
        )
    recalls = [f"r={recall:.1f}" for recall, _p in results["CONF"]["curve"]]
    report(
        "Figure 5.3 - precision-recall curves (confidence ranking)",
        render_table(["method"] + recalls, curve_rows),
    )
    # Shape: CONF leads (or ties) on MAP and improves precision@95 over
    # the prior with a non-marginal mention count.
    assert results["CONF"]["map"] >= results["prior"]["map"]
    assert results["CONF"]["map"] >= results["IW"]["map"] - 0.005
    assert results["CONF"]["p95"] >= results["prior"]["p95"]
    assert results["CONF"]["n95"] > 50
