"""Table 3.1 — CoNLL dataset properties.

Regenerates the dataset-property rows of Table 3.1 (articles, mentions,
mentions with no entity, words/mentions/distinct mentions per article,
mentions with candidates, candidates per mention) over the synthetic
CoNLL-style corpus.
"""

from __future__ import annotations

from benchmarks.common import bench_kb, conll_corpus, render_table
from benchmarks.conftest import report


def _properties():
    corpus = conll_corpus()
    kb = bench_kb()
    props = corpus.properties()
    docs = corpus.all_documents()
    with_candidates = 0
    candidate_total = 0
    candidate_mentions = 0
    for doc in docs:
        for annotation in doc.gold:
            count = len(kb.candidates(annotation.mention.surface))
            if count > 0:
                with_candidates += 1
                candidate_total += count
                candidate_mentions += 1
    props["mentions_with_candidate_in_kb"] = with_candidates
    props["entities_per_mention_avg"] = (
        candidate_total / candidate_mentions if candidate_mentions else 0.0
    )
    return props


def test_table_3_1(benchmark):
    props = benchmark.pedantic(_properties, rounds=1, iterations=1)
    rows = [
        ["articles", f"{props['articles']:.0f}"],
        ["mentions (total)", f"{props['mentions_total']:.0f}"],
        ["mentions with no entity", f"{props['mentions_no_entity']:.0f}"],
        ["words per article (avg.)", f"{props['words_per_article_avg']:.1f}"],
        [
            "mentions per article (avg.)",
            f"{props['mentions_per_article_avg']:.1f}",
        ],
        [
            "distinct mentions per article (avg.)",
            f"{props['distinct_mentions_per_article_avg']:.1f}",
        ],
        [
            "mentions with candidate in KB",
            f"{props['mentions_with_candidate_in_kb']:.0f}",
        ],
        [
            "entities per mention (avg.)",
            f"{props['entities_per_mention_avg']:.1f}",
        ],
    ]
    report(
        "Table 3.1 - CoNLL dataset properties",
        render_table(["property", "value"], rows),
    )
    assert props["articles"] > 0
    assert props["mentions_no_entity"] > 0
    # The paper's corpus has roughly 20% out-of-KB mentions.
    fraction = props["mentions_no_entity"] / props["mentions_total"]
    assert 0.05 < fraction < 0.45
