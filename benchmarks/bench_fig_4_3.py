"""Figure 4.3 — cumulative accuracy over link-poor entities (KORE50).

For each relatedness measure, AIDA runs on the KORE50 corpus; per-mention
correctness is bucketed by the gold entity's inlink count, and the figure's
series — accuracy over all mentions whose entity has at most x inlinks —
is printed for a grid of x values.

Expected shape (paper): KORE (and KORE_LSH-G) above MW for small x, with
the gap narrowing as links grow.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from benchmarks.common import (
    bench_kb,
    kore50_corpus,
    make_relatedness,
    render_table,
)
from benchmarks.conftest import report
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.eval.ranking import cumulative_accuracy_by_links
from repro.eval.runner import run_disambiguator

MEASURES = ("MW", "KORE", "KORE_LSH-G", "KORE_LSH-F")
GRID = (2, 4, 6, 8, 12, 16, 24, 40)


def _run():
    kb = bench_kb()
    docs = kore50_corpus()
    curves: Dict[str, List[Tuple[int, float]]] = {}
    for name in MEASURES:
        pipeline = AidaDisambiguator(
            kb, relatedness=make_relatedness(name), config=AidaConfig.full()
        )
        run = run_disambiguator(pipeline, docs, kb=kb)
        curves[name] = cumulative_accuracy_by_links(run.link_records)
    return curves


def _at(curve: List[Tuple[int, float]], x: int) -> float:
    """Cumulative accuracy at link budget x (last point with links <= x)."""
    value = float("nan")
    for links, accuracy in curve:
        if links <= x:
            value = accuracy
        else:
            break
    return value


def test_fig_4_3(benchmark):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)
    headers = ["measure"] + [f"<= {x} links" for x in GRID]
    rows = []
    for name, curve in curves.items():
        rows.append(
            [name] + [f"{_at(curve, x):.3f}" for x in GRID]
        )
    report(
        "Figure 4.3 - cumulative accuracy by inlink count (KORE50)",
        render_table(headers, rows),
    )
    # Shape: on the link-poorest bucket that exists, KORE is at least as
    # good as MW.
    low_x = GRID[2]
    kore_low = _at(curves["KORE"], low_x)
    mw_low = _at(curves["MW"], low_x)
    if kore_low == kore_low and mw_low == mw_low:  # both defined
        assert kore_low >= mw_low - 0.01
