"""Table 4.2 — Spearman correlation of relatedness measures with the gold
ranking.

For every seed entity of the relatedness gold standard, each measure ranks
the 20 candidates; the table reports the per-domain average Spearman
correlation with the gold ranking, the link-poor average (seeds whose
entity has few incoming links), and the overall average.

Expected shape (paper): all keyphrase-based measures beat the link-based
Milne–Witten measure, with the advantage widest on link-poor entities;
KORE_LSH-G stays close to exact KORE while KORE_LSH-F degrades.
"""

from __future__ import annotations

from typing import Dict, List

from benchmarks.common import (
    RELATEDNESS_NAMES,
    bench_kb,
    make_relatedness,
    relatedness_gold,
    render_table,
)
from benchmarks.conftest import report
from repro.eval.ranking import spearman

#: Seeds with at most this many inlinks count as "link-poor" (the paper
#: uses <= 500 on real Wikipedia; scaled to the synthetic KB).
LINK_POOR_MAX = 10


def _run():
    kb = bench_kb()
    gold = relatedness_gold()
    table: Dict[str, Dict[str, float]] = {}
    for name in RELATEDNESS_NAMES:
        measure = make_relatedness(name)
        per_domain: Dict[str, List[float]] = {}
        link_poor: List[float] = []
        overall: List[float] = []
        for seed in gold.seeds:
            candidates = list(seed.ranked_candidates)
            measure.prepare([seed.seed] + candidates)
            ranked = measure.rank_candidates(seed.seed, candidates)
            rho = spearman(candidates, ranked)
            per_domain.setdefault(seed.domain, []).append(rho)
            overall.append(rho)
            if kb.inlink_count(seed.seed) <= LINK_POOR_MAX:
                link_poor.append(rho)
        row = {
            domain: sum(values) / len(values)
            for domain, values in per_domain.items()
        }
        row["link-poor avg"] = (
            sum(link_poor) / len(link_poor) if link_poor else float("nan")
        )
        row["average"] = sum(overall) / len(overall)
        table[name] = row
    return table


def test_table_4_2(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    domains = sorted(
        key for key in next(iter(table.values()))
        if key not in ("average", "link-poor avg")
    )
    headers = ["measure"] + domains + ["link-poor avg", "average"]
    rows = []
    for name, row in table.items():
        rows.append(
            [name]
            + [f"{row[d]:.3f}" for d in domains]
            + [f"{row['link-poor avg']:.3f}", f"{row['average']:.3f}"]
        )
    report(
        "Table 4.2 - Spearman correlation with gold relatedness ranking",
        render_table(headers, rows),
    )
    # Shape: keyphrase measures beat MW; KORE leads on link-poor seeds;
    # the fast LSH approximation costs quality.
    assert table["KORE"]["average"] > table["MW"]["average"]
    assert table["KPCS"]["average"] > table["MW"]["average"]
    assert table["KWCS"]["average"] > table["MW"]["average"]
    assert table["KORE"]["link-poor avg"] > table["MW"]["link-poor avg"]
    assert table["KORE_LSH-G"]["average"] >= table["KORE_LSH-F"]["average"]
