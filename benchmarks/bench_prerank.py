"""Dense pre-ranker speed/accuracy frontier.

Two workloads:

* **Speed** — a stress KB whose ``candidate_pool`` knob gives every
  pooled mention exactly the same (large) candidate-set size, with
  synthetic documents whose context tokens come from the gold member's
  keyphrases.  End-to-end pipeline throughput is measured with the
  pre-ranker off and at ``K = SPEED_TOPK``; both pipelines share one
  pre-trained embedding model so training cost is excluded from both.
* **Accuracy** — the frozen golden corpus (same world/KB seeds as the
  regression fixture) swept over K, reporting micro/macro accuracy and
  pruning volume per K against the unpruned baseline.

Plus two exactness checks:

* **Identity** — ``prerank_topk`` at or above the largest pool produces
  assignment lists (mention, entity, score) bit-identical to the
  pre-ranker-off path, on both workloads;
* **Determinism** — training twice with the same seed yields
  byte-identical embedding matrices (sha256 of ``tobytes()``).

Runs two ways:

* under pytest with the rest of the benchmark suite (a smoke over a
  reduced workload that checks exactness and pruning shape, not
  wall-clock);
* as a script writing ``BENCH_prerank.json``::

      PYTHONPATH=src:. python benchmarks/bench_prerank.py \
          --out BENCH_prerank.json --check

  ``--check`` exits non-zero unless K = SPEED_TOPK doubles stress
  throughput, its golden-corpus micro accuracy stays within half a
  point of the unpruned path, both identity checks hold, and training
  is deterministic (the CI ``prerank-smoke`` gate).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional, Tuple

from benchmarks.common import render_table
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.datagen.io import load_corpus
from repro.datagen.stress import StressConfig, generate_stress_kb
from repro.datagen.wikipedia import build_world_kb
from repro.datagen.world import World, WorldConfig
from repro.embeddings import EmbeddingConfig, train_embeddings
from repro.eval.runner import run_disambiguator
from repro.types import Document, Mention

#: Same seeds as tests/fixtures/golden/generate.py and tests/conftest.py.
WORLD_SEED = 7
CLUSTERS_PER_DOMAIN = 4
KB_SEED = 101

GOLDEN_CORPUS = os.path.join(
    os.path.dirname(__file__),
    os.pardir,
    "tests",
    "fixtures",
    "golden",
    "corpus.jsonl",
)

#: The speed workload: every pooled mention retrieves exactly
#: ``candidate_pool`` candidates (the acceptance floor is pools >= 32).
STRESS = StressConfig(
    entities=1600,
    seed=17,
    candidate_pool=40,
    ambiguous_fraction=0.0,
    links_per_entity=3,
    phrases_per_entity=3,
)
SPEED_DOCS = 24
SPEED_MENTIONS_PER_DOC = 6
SPEED_CONTEXT_WORDS = 9  # per mention: 3 keyphrases x 3 words

#: The pre-ranker cut evaluated by the speed and accuracy gates.
SPEED_TOPK = 8
#: Golden-corpus K sweep reported in docs/performance.md.
ACCURACY_SWEEP = (2, 4, 8, 16)

#: The acceptance gates of the prerank-smoke CI job.
CHECK_SPEEDUP = 2.0
CHECK_ACCURACY_POINTS = 0.005

_cache: Dict[str, object] = {}


def golden_kb():
    if "kb" not in _cache:
        world = World.generate(
            WorldConfig(
                seed=WORLD_SEED, clusters_per_domain=CLUSTERS_PER_DOMAIN
            )
        )
        _cache["kb"], _ = build_world_kb(world, seed=KB_SEED)
    return _cache["kb"]


def golden_documents():
    if "docs" not in _cache:
        _cache["docs"] = load_corpus(GOLDEN_CORPUS)
    return _cache["docs"]


def golden_model():
    if "model" not in _cache:
        _cache["model"] = train_embeddings(golden_kb(), EmbeddingConfig())
    return _cache["model"]


# ----------------------------------------------------------------------
# Speed workload (stress KB with pooled surfaces)
# ----------------------------------------------------------------------
def build_speed_documents(
    kb, config: StressConfig, num_docs: int, mentions_per_doc: int
) -> List[Document]:
    """Synthetic documents over the pooled surfaces.

    Each mention's context tokens are keyphrase words of one pool member
    (the deterministic "gold" pick), so the embedding space and the
    keyphrase scorers both have signal to rank the pool with.
    """
    n_pools = config.entities // config.candidate_pool
    documents: List[Document] = []
    for d in range(num_docs):
        tokens: List[str] = []
        mentions: List[Mention] = []
        for j in range(mentions_per_doc):
            pool = (d * mentions_per_doc + j) % n_pools
            surface = f"Pool{pool:05d}"
            members = sorted(kb.candidates(surface))
            gold = members[(d + 3 * j) % len(members)]
            words = [
                word
                for phrase, _count in sorted(
                    kb.keyphrases.keyphrase_counts(gold).items()
                )
                for word in phrase
            ]
            tokens.extend(words[:SPEED_CONTEXT_WORDS])
            mentions.append(
                Mention(surface=surface, start=len(tokens), end=len(tokens) + 1)
            )
            tokens.append(surface)
        documents.append(
            Document(
                doc_id=f"stress-{d:03d}",
                tokens=tuple(tokens),
                mentions=tuple(mentions),
            )
        )
    return documents


def _assignment_key(result) -> List[Tuple[str, int, int, str, float]]:
    """The bit-identity comparison unit: every assignment, exactly."""
    return [
        (a.mention.surface, a.mention.start, a.mention.end, a.entity, a.score)
        for a in result.assignments
    ]


def _prerank_counters(result) -> Tuple[int, int]:
    counters = result.stats.counters if result.stats else {}
    return (
        int(counters.get("prerank_pruned", 0)),
        int(counters.get("prerank_survived", 0)),
    )


def run_speed(
    stress: StressConfig = STRESS,
    num_docs: int = SPEED_DOCS,
    topk: int = SPEED_TOPK,
) -> Dict[str, object]:
    """Off-vs-K throughput over the pooled stress workload.

    Returns the two rows plus the identity check at K >= pool size.
    """
    kb = generate_stress_kb(stress)
    documents = build_speed_documents(
        kb, stress, num_docs, SPEED_MENTIONS_PER_DOC
    )
    model = train_embeddings(kb, EmbeddingConfig())
    rows: List[Dict[str, object]] = []
    baselines: Dict[Optional[int], List] = {}
    for k in (None, topk, stress.candidate_pool):
        config = AidaConfig.full()
        config.prerank_topk = k
        pipeline = AidaDisambiguator(
            kb,
            config=config,
            embedding_model=model if k is not None else None,
        )
        pruned = survived = 0
        keys = []
        start = time.perf_counter()
        for document in documents:
            result = pipeline.disambiguate(document)
            p, s = _prerank_counters(result)
            pruned += p
            survived += s
            keys.append(_assignment_key(result))
        elapsed = time.perf_counter() - start
        baselines[k] = keys
        rows.append(
            {
                "prerank_topk": k,
                "documents": len(documents),
                "candidate_pool": stress.candidate_pool,
                "pruned": pruned,
                "survived": survived,
                "seconds": elapsed,
                "docs_per_second": (
                    len(documents) / elapsed if elapsed > 0 else 0.0
                ),
            }
        )
    off, at_k = rows[0], rows[1]
    return {
        "rows": rows[:2],
        "speedup": (
            at_k["docs_per_second"] / off["docs_per_second"]
            if off["docs_per_second"]
            else 0.0
        ),
        "identity_at_pool_size": baselines[stress.candidate_pool]
        == baselines[None],
    }


# ----------------------------------------------------------------------
# Accuracy workload (golden corpus K sweep)
# ----------------------------------------------------------------------
def run_accuracy(
    doc_limit: Optional[int] = None,
    sweep: Tuple[int, ...] = ACCURACY_SWEEP,
) -> Dict[str, object]:
    """Golden-corpus micro/macro per K against the unpruned baseline."""
    kb = golden_kb()
    documents = golden_documents()
    if doc_limit:
        documents = documents[:doc_limit]
    model = golden_model()
    rows: List[Dict[str, object]] = []
    identity_keys: Dict[str, List] = {}
    baseline_micro = 0.0
    for k in (None,) + tuple(sweep) + (10 ** 6,):
        config = AidaConfig.full()
        config.prerank_topk = k
        pipeline = AidaDisambiguator(
            kb,
            config=config,
            embedding_model=model if k is not None else None,
        )
        pruned = survived = 0
        keys = []
        for document in documents:
            result = pipeline.disambiguate(document.document)
            p, s = _prerank_counters(result)
            pruned += p
            survived += s
            if k is None or k == 10 ** 6:
                keys.append(_assignment_key(result))
        run = run_disambiguator(pipeline, documents, kb=kb)
        if k is None:
            baseline_micro = run.micro
            identity_keys["off"] = keys
        elif k == 10 ** 6:
            identity_keys["huge"] = keys
            continue  # the sentinel K is only for the identity check
        rows.append(
            {
                "prerank_topk": k,
                "documents": len(documents),
                "micro_accuracy": run.micro,
                "macro_accuracy": run.macro,
                "micro_delta_vs_off": run.micro - baseline_micro,
                "pruned": pruned,
                "survived": survived,
            }
        )
    return {
        "rows": rows,
        "identity_at_huge_k": identity_keys["huge"] == identity_keys["off"],
    }


def run_determinism() -> Dict[str, object]:
    """Same KB + seed twice -> byte-identical matrices; new seed differs."""
    kb = golden_kb()
    first = train_embeddings(kb, EmbeddingConfig()).fingerprint()
    second = train_embeddings(kb, EmbeddingConfig()).fingerprint()
    other = train_embeddings(kb, EmbeddingConfig(seed=99)).fingerprint()
    return {
        "fingerprint": first,
        "repeatable": first == second,
        "seed_sensitive": first != other,
    }


# ----------------------------------------------------------------------
# Reporting and gates
# ----------------------------------------------------------------------
def _render_speed(speed) -> str:
    headers = ["prerank", "pools", "pruned", "seconds", "docs/s"]
    table = [
        [
            "off" if r["prerank_topk"] is None else f"K={r['prerank_topk']}",
            str(r["candidate_pool"]),
            str(r["pruned"]),
            f"{r['seconds']:.3f}",
            f"{r['docs_per_second']:.2f}",
        ]
        for r in speed["rows"]
    ]
    return render_table(
        headers,
        table,
        title=(
            f"dense pre-ranker throughput (stress, pool="
            f"{STRESS.candidate_pool}; speedup {speed['speedup']:.2f}x)"
        ),
    )


def _render_accuracy(accuracy) -> str:
    headers = ["prerank", "micro", "macro", "delta", "pruned", "survived"]
    table = [
        [
            "off" if r["prerank_topk"] is None else f"K={r['prerank_topk']}",
            f"{100 * r['micro_accuracy']:.2f}%",
            f"{100 * r['macro_accuracy']:.2f}%",
            f"{100 * r['micro_delta_vs_off']:+.2f}",
            str(r["pruned"]),
            str(r["survived"]),
        ]
        for r in accuracy["rows"]
    ]
    return render_table(
        headers, table, title="dense pre-ranker K sweep (golden corpus)"
    )


def check_gates(speed, accuracy, determinism) -> List[str]:
    """The prerank-smoke gate; returns a list of failure messages."""
    failures: List[str] = []
    if speed["speedup"] < CHECK_SPEEDUP:
        failures.append(
            f"K={SPEED_TOPK} speedup {speed['speedup']:.2f}x is below "
            f"the {CHECK_SPEEDUP:.1f}x gate on the pooled stress workload"
        )
    if not speed["identity_at_pool_size"]:
        failures.append(
            "K = pool size changed assignments on the stress workload "
            "(must be bit-identical to the pre-ranker-off path)"
        )
    if not accuracy["identity_at_huge_k"]:
        failures.append(
            "huge K changed assignments on the golden corpus "
            "(must be bit-identical to the pre-ranker-off path)"
        )
    by_k = {row["prerank_topk"]: row for row in accuracy["rows"]}
    gate_row = by_k.get(SPEED_TOPK)
    if gate_row is None:
        failures.append(f"accuracy sweep did not include K={SPEED_TOPK}")
    elif abs(gate_row["micro_delta_vs_off"]) > CHECK_ACCURACY_POINTS + 1e-12:
        failures.append(
            f"K={SPEED_TOPK} micro accuracy drifted "
            f"{100 * abs(gate_row['micro_delta_vs_off']):.2f} points from "
            f"the unpruned path (> {100 * CHECK_ACCURACY_POINTS:.1f})"
        )
    if not determinism["repeatable"]:
        failures.append(
            "training the same KB + seed twice produced different "
            "matrices (must be byte-identical)"
        )
    if not determinism["seed_sensitive"]:
        failures.append(
            "changing the training seed left the matrices unchanged "
            "(the seed is not reaching the RNG)"
        )
    return failures


def test_prerank_smoke(benchmark):
    """Pytest smoke: exactness, determinism and pruning shape hold.

    Wall-clock is not gated here (a reduced workload on shared CI
    hardware); the scripted ``--check`` run gates the 2x throughput and
    half-point accuracy criteria on the full workloads.
    """
    from benchmarks.conftest import report

    small = StressConfig(
        entities=480, seed=17, candidate_pool=40, ambiguous_fraction=0.0
    )

    def run():
        return (
            run_speed(stress=small, num_docs=6),
            run_accuracy(doc_limit=8, sweep=(SPEED_TOPK,)),
            run_determinism(),
        )

    speed, accuracy, determinism = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report(
        "dense pre-ranker - stress + golden corpus",
        _render_speed(speed) + "\n" + _render_accuracy(accuracy),
    )
    assert speed["identity_at_pool_size"]
    assert accuracy["identity_at_huge_k"]
    assert determinism["repeatable"]
    assert determinism["seed_sensitive"]
    assert speed["rows"][1]["pruned"] > 0
    assert speed["rows"][0]["pruned"] == 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--doc-limit", type=int, default=0,
        help="cap the golden corpus at N documents (0 = full corpus)",
    )
    parser.add_argument(
        "--out", default="BENCH_prerank.json", help="JSON output path"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless K doubles stress throughput within "
        "half a point of unpruned golden-corpus micro accuracy, huge K "
        "is bit-identical to the unpruned path, and training is "
        "deterministic",
    )
    args = parser.parse_args(argv)

    speed = run_speed()
    print(_render_speed(speed))
    accuracy = run_accuracy(args.doc_limit or None)
    print()
    print(_render_accuracy(accuracy))
    determinism = run_determinism()
    print(
        "\ndeterminism: repeatable="
        f"{determinism['repeatable']} "
        f"seed_sensitive={determinism['seed_sensitive']}"
    )
    print(
        "identity: stress K=pool "
        f"{'OK' if speed['identity_at_pool_size'] else 'MISMATCH'}, "
        "golden huge-K "
        f"{'OK' if accuracy['identity_at_huge_k'] else 'MISMATCH'}"
    )

    record = {
        "benchmark": "dense_preranker",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "world_seed": WORLD_SEED,
        "clusters_per_domain": CLUSTERS_PER_DOMAIN,
        "kb_seed": KB_SEED,
        "stress": {
            "entities": STRESS.entities,
            "candidate_pool": STRESS.candidate_pool,
            "documents": SPEED_DOCS,
            "mentions_per_doc": SPEED_MENTIONS_PER_DOC,
        },
        "speed_topk": SPEED_TOPK,
        "check_speedup": CHECK_SPEEDUP,
        "check_accuracy_points": CHECK_ACCURACY_POINTS,
        "speed": speed,
        "accuracy": accuracy,
        "determinism": determinism,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.out}")

    if args.check:
        failures = check_gates(speed, accuracy, determinism)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
