"""Shared benchmark infrastructure.

One *benchmark world* — larger and more ambiguous than the test fixture —
serves every experiment, mirroring the single Wikipedia/YAGO substrate of
the paper.  Everything is built lazily and cached at module level so the
bench files stay cheap to combine.

``REPRO_BENCH_SCALE`` (environment variable, default ``0.5``) scales the
CoNLL split sizes; ``1.0`` reproduces the paper's full 946/216/231 split.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.datagen.conll import ConllConfig, ConllCorpus, generate_conll
from repro.datagen.gigaword import (
    GigawordConfig,
    NewsStream,
    generate_gigaword,
)
from repro.datagen.kore50 import Kore50Config, generate_kore50
from repro.datagen.relatedness_gold import (
    RelatednessGold,
    RelatednessGoldConfig,
    generate_relatedness_gold,
)
from repro.datagen.wikipedia import build_world_kb
from repro.datagen.world import World, WorldConfig
from repro.datagen.wpslice import WpSliceConfig, generate_wp_slice
from repro.kb.knowledge_base import KnowledgeBase
from repro.relatedness import (
    KeyphraseCosineRelatedness,
    KeywordCosineRelatedness,
    KoreLshRelatedness,
    KoreRelatedness,
    LshSettings,
    MilneWittenRelatedness,
)
from repro.relatedness.base import EntityRelatedness
from repro.types import AnnotatedDocument
from repro.weights.model import WeightModel

#: The calibrated benchmark world: high ambiguity (small name pools),
#: colliding topic vocabulary (only phrases are distinctive), same-domain
#: family-name sharing and metonymy.
BENCH_WORLD_CONFIG = WorldConfig(
    seed=7,
    clusters_per_domain=8,
    family_sharing=0.7,
    title_place_collision=0.45,
    topic_vocabulary_size=20,
    first_name_pool=18,
    family_name_pool=45,
    place_name_pool=40,
    title_word_pool=50,
)


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


_cache: Dict[str, object] = {}


def bench_world() -> World:
    if "world" not in _cache:
        _cache["world"] = World.generate(BENCH_WORLD_CONFIG)
    return _cache["world"]


def bench_kb() -> KnowledgeBase:
    if "kb" not in _cache:
        kb, wiki = build_world_kb(bench_world(), seed=101)
        _cache["kb"] = kb
        _cache["wiki"] = wiki
    return _cache["kb"]


def bench_weights() -> WeightModel:
    if "weights" not in _cache:
        kb = bench_kb()
        _cache["weights"] = WeightModel(kb.keyphrases, kb.links)
    return _cache["weights"]


def conll_corpus() -> ConllCorpus:
    if "conll" not in _cache:
        _cache["conll"] = generate_conll(
            bench_world(),
            ConllConfig(
                scale=bench_scale(),
                heterogeneous_fraction=0.25,
                context_prob=0.45,
            ),
        )
    return _cache["conll"]


def kore50_corpus() -> List[AnnotatedDocument]:
    """KORE50-style corpus, scaled x3 (150 sentences) so per-measure
    differences are not single-mention noise."""
    if "kore50" not in _cache:
        _cache["kore50"] = generate_kore50(
            bench_world(), Kore50Config(num_sentences=150)
        )
    return _cache["kore50"]


def wp_corpus() -> List[AnnotatedDocument]:
    if "wp" not in _cache:
        _cache["wp"] = generate_wp_slice(
            bench_world(), WpSliceConfig(num_sentences=200)
        )
    return _cache["wp"]


def relatedness_gold() -> RelatednessGold:
    if "relgold" not in _cache:
        _cache["relgold"] = generate_relatedness_gold(
            bench_world(), RelatednessGoldConfig(seeds_per_domain=5)
        )
    return _cache["relgold"]


def news_stream() -> NewsStream:
    """The GigaWord-style stream.  NOTE: building it spawns emerging
    entities into the bench world, so the KB must exist first — handled
    here by forcing KB construction."""
    if "stream" not in _cache:
        bench_kb()
        _cache["stream"] = generate_gigaword(
            bench_world(),
            GigawordConfig(num_days=40, docs_per_day=10, emerging_count=10),
        )
    return _cache["stream"]


# ----------------------------------------------------------------------
# Relatedness measure factory (fresh, uncached instances per call)
# ----------------------------------------------------------------------
RELATEDNESS_NAMES = ("KWCS", "KPCS", "MW", "KORE", "KORE_LSH-G", "KORE_LSH-F")


def make_relatedness(name: str) -> EntityRelatedness:
    kb = bench_kb()
    weights = bench_weights()
    if name == "MW":
        return MilneWittenRelatedness(kb.links, kb.entity_count)
    if name == "KWCS":
        return KeywordCosineRelatedness(kb.keyphrases, weights)
    if name == "KPCS":
        return KeyphraseCosineRelatedness(kb.keyphrases, weights)
    if name == "KORE":
        return KoreRelatedness(kb.keyphrases, weights)
    if name == "KORE_LSH-G":
        return KoreLshRelatedness(
            kb.keyphrases,
            KoreRelatedness(kb.keyphrases, weights),
            LshSettings.recall_geared(),
            name="KORE_LSH-G",
        )
    if name == "KORE_LSH-F":
        return KoreLshRelatedness(
            kb.keyphrases,
            KoreRelatedness(kb.keyphrases, weights),
            LshSettings.fast(),
            name="KORE_LSH-F",
        )
    raise ValueError(f"unknown relatedness measure: {name!r}")


# ----------------------------------------------------------------------
# Table rendering
# ----------------------------------------------------------------------
def render_table(
    headers: List[str], rows: List[List[str]], title: str = ""
) -> str:
    widths = [
        max(len(str(headers[col])), *(len(str(row[col])) for row in rows))
        if rows
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row))
        )
    return "\n".join(lines)


def pct(value: float) -> str:
    return f"{100.0 * value:.2f}%"
