"""Corpus-throughput of the batch layer: serial vs cached vs parallel.

Measures the batch execution layer of :mod:`repro.core.batch` on the
synthetic CoNLL-style benchmark corpus, with the KORE-coherence pipeline
whose graph build dominates corpus cost (Chapter 3/4 coherence edges):

* ``serial`` — a fresh pipeline per document, nothing shared: the
  stateless per-request baseline where every document recomputes its
  relatedness pairs from scratch;
* ``shared-pipeline`` — one pipeline for the whole corpus (the plain
  ``run_disambiguator`` loop): the measure's own per-instance cache grows
  unbounded across documents;
* ``cached`` — a fresh pipeline per document, all sharing one
  thread-safe :class:`~repro.relatedness.caching.CachingRelatedness`:
  stateless pipelines, shared pair work;
* ``parallel`` — :class:`~repro.core.batch.BatchRunner` fanning documents
  over a worker pool; thread workers share the relatedness cache,
  process workers each hold their own (processes share no memory but
  scale across cores).

Every mode must produce bit-identical assignments; the interesting
number is documents/second.  Runs two ways:

* under pytest with the rest of the benchmark suite (a scaled-down
  smoke that checks identity, not wall-clock);
* as a script writing ``BENCH_batch.json``::

      PYTHONPATH=src:. python benchmarks/bench_batch.py \
          --out BENCH_batch.json --check

  ``--check`` exits non-zero unless all modes agree bit-for-bit and the
  parallel mode clears a 2x corpus-throughput improvement over the
  serial baseline (the CI batch smoke gate).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional, Tuple

from benchmarks.common import bench_kb, bench_weights, conll_corpus
from repro.core.batch import BatchConfig, BatchRunner
from repro.core.pipeline import AidaDisambiguator
from repro.relatedness import (
    CachingRelatedness,
    KoreRelatedness,
    MilneWittenRelatedness,
)
from repro.types import DisambiguationResult, Document

DEFAULT_WORKERS = 4
CHECK_SPEEDUP = 2.0


def _make_relatedness(measure: str):
    kb = bench_kb()
    if measure == "mw":
        return MilneWittenRelatedness(kb.links, kb.entity_count)
    return KoreRelatedness(kb.keyphrases, bench_weights())


def _fresh_pipeline(measure: str, shared=None) -> AidaDisambiguator:
    relatedness = shared if shared is not None else _make_relatedness(measure)
    return AidaDisambiguator(bench_kb(), relatedness=relatedness)


def _documents(limit: Optional[int]) -> List[Document]:
    documents = [
        annotated.document
        for annotated in conll_corpus().all_documents()
    ]
    return documents[:limit] if limit else documents


def _signature(results: List[DisambiguationResult]):
    """The bit-exact comparison key: every mention, entity, and score."""
    return [
        [
            (a.mention, a.entity, a.score)
            for a in result.assignments
        ]
        for result in results
    ]


# ----------------------------------------------------------------------
# The four modes
# ----------------------------------------------------------------------
def run_serial(documents: List[Document], measure: str):
    results = [
        _fresh_pipeline(measure).disambiguate(document)
        for document in documents
    ]
    return results, None


def run_shared_pipeline(documents: List[Document], measure: str):
    pipeline = _fresh_pipeline(measure)
    return [pipeline.disambiguate(d) for d in documents], None


def run_cached(documents: List[Document], measure: str):
    shared = CachingRelatedness(_make_relatedness(measure))
    results = [
        _fresh_pipeline(measure, shared).disambiguate(document)
        for document in documents
    ]
    return results, shared.cache_stats().as_dict()


def run_parallel(
    documents: List[Document],
    measure: str,
    workers: int,
    executor: str,
):
    if executor == "process":
        runner = BatchRunner(
            pipeline_factory=_ProcessFactory(measure),
            config=BatchConfig(workers=workers, executor="process"),
        )
        outcome = runner.run(documents)
        outcome.raise_on_failure()
        return outcome.results, None
    shared = CachingRelatedness(_make_relatedness(measure))
    runner = BatchRunner(
        pipeline_factory=lambda: _fresh_pipeline(measure, shared),
        config=BatchConfig(workers=workers, executor="thread"),
    )
    outcome = runner.run(documents)
    outcome.raise_on_failure()
    return outcome.results, shared.cache_stats().as_dict()


class _ProcessFactory:
    """Picklable per-process pipeline builder (rebuilds the bench KB from
    its seeds; each process keeps its own relatedness cache)."""

    def __init__(self, measure: str):
        self.measure = measure

    def __call__(self) -> AidaDisambiguator:
        return _fresh_pipeline(
            self.measure, CachingRelatedness(_make_relatedness(self.measure))
        )


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_modes(
    documents: List[Document],
    measure: str = "kore",
    workers: int = DEFAULT_WORKERS,
    executor: str = "thread",
) -> List[Dict[str, object]]:
    """Time every mode on the same documents; mark output identity."""
    modes = [
        ("serial", lambda: run_serial(documents, measure)),
        ("shared-pipeline", lambda: run_shared_pipeline(documents, measure)),
        ("cached", lambda: run_cached(documents, measure)),
        (
            f"parallel-{executor}-{workers}",
            lambda: run_parallel(documents, measure, workers, executor),
        ),
    ]
    cases: List[Dict[str, object]] = []
    reference_signature = None
    serial_seconds = 0.0
    for name, runner in modes:
        start = time.perf_counter()
        results, cache_stats = runner()
        elapsed = time.perf_counter() - start
        signature = _signature(results)
        if reference_signature is None:
            reference_signature = signature
            serial_seconds = elapsed
        cases.append(
            {
                "mode": name,
                "documents": len(documents),
                "seconds": elapsed,
                "docs_per_second": (
                    len(documents) / elapsed if elapsed > 0 else 0.0
                ),
                "speedup_vs_serial": (
                    serial_seconds / elapsed if elapsed > 0 else 0.0
                ),
                "identical": signature == reference_signature,
                "cache": cache_stats,
            }
        )
    return cases


def _render(cases: List[Dict[str, object]]) -> Tuple[List[str], List[List[str]]]:
    headers = [
        "mode",
        "docs",
        "seconds",
        "docs/s",
        "speedup",
        "identical",
        "cache hit rate",
    ]
    rows = []
    for case in cases:
        cache = case["cache"]
        rows.append(
            [
                str(case["mode"]),
                str(case["documents"]),
                f"{case['seconds']:.3f}",
                f"{case['docs_per_second']:.1f}",
                f"{case['speedup_vs_serial']:.2f}x",
                "yes" if case["identical"] else "NO",
                f"{100 * cache['hit_rate']:.1f}%" if cache else "-",
            ]
        )
    return headers, rows


def test_batch_throughput(benchmark):
    """Pytest smoke: all modes bit-identical on a scaled-down corpus.

    Wall-clock assertions live in the scripted ``--check`` run only —
    shared CI runners are too noisy for a hard 2x gate here; identity is
    what must never regress.
    """
    from benchmarks.common import render_table
    from benchmarks.conftest import report

    documents = _documents(limit=40)
    cases = benchmark.pedantic(
        lambda: run_modes(documents, workers=2),
        rounds=1,
        iterations=1,
    )
    headers, rows = _render(cases)
    report(
        "Batch corpus runner - serial vs cached vs parallel",
        render_table(headers, rows),
    )
    assert all(case["identical"] for case in cases)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--measure", choices=("kore", "mw"), default="kore",
        help="relatedness measure for the coherence edges",
    )
    parser.add_argument(
        "--workers", type=int, default=DEFAULT_WORKERS,
        help="worker count of the parallel mode",
    )
    parser.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="pool kind of the parallel mode (threads share the cache; "
        "processes scale across cores)",
    )
    parser.add_argument(
        "--limit", type=int, default=0,
        help="cap the corpus at N documents (0 = full corpus)",
    )
    parser.add_argument(
        "--out", default="BENCH_batch.json", help="JSON output path"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless all modes are bit-identical and the "
        f"parallel mode clears a {CHECK_SPEEDUP}x speedup over serial",
    )
    args = parser.parse_args(argv)
    documents = _documents(args.limit or None)
    cases = run_modes(
        documents,
        measure=args.measure,
        workers=args.workers,
        executor=args.executor,
    )
    headers, rows = _render(cases)
    widths = [
        max(len(h), *(len(row[i]) for row in rows))
        for i, h in enumerate(headers)
    ]
    print("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rows:
        print("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    record = {
        "benchmark": "batch_corpus_runner",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "measure": args.measure,
        "workers": args.workers,
        "executor": args.executor,
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "0.5"),
        "cases": cases,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    if args.check:
        if not all(case["identical"] for case in cases):
            print("FAIL: batch modes disagree", file=sys.stderr)
            return 1
        parallel = cases[-1]
        if parallel["speedup_vs_serial"] < CHECK_SPEEDUP:
            print(
                f"FAIL: parallel speedup {parallel['speedup_vs_serial']:.2f}x "
                f"< {CHECK_SPEEDUP}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
