"""Keyphrase scoring throughput: reference vs the compiled layer.

Measures the mention-entity similarity hot path (Eq. 3.4/3.6) and the
KORE relatedness measure (Eq. 4.3/4.4) on the synthetic CoNLL-style
benchmark corpus, three ways:

* ``reference`` — the string/dict scorers of
  :mod:`repro.similarity.keyphrase_match` / :mod:`repro.relatedness.kore`;
* ``compiled-python`` — the :mod:`repro.compiled` integer-array layer
  with the pure-Python cover sweep;
* ``compiled-auto`` — the same layer with the numpy fast path enabled
  (falls back to pure Python when numpy is absent).

Every variant must agree with the reference within 1e-9; the interesting
numbers are mention-contexts/second (simscore) and pairs/second (KORE),
plus an end-to-end pipeline documents/second with the compiled layer on
vs off.  Runs two ways:

* under pytest with the rest of the benchmark suite (a scaled-down
  smoke that checks agreement, not wall-clock);
* as a script writing ``BENCH_similarity.json``::

      PYTHONPATH=src:. python benchmarks/bench_similarity.py \
          --out BENCH_similarity.json --check

  ``--check`` exits non-zero unless all variants agree within 1e-9, the
  best compiled simscore variant clears a 3x speedup over the reference,
  and the compiled pipeline beats the reference pipeline's docs/s (the
  CI similarity smoke gate).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional, Tuple

from benchmarks.common import (
    bench_kb,
    bench_weights,
    conll_corpus,
    render_table,
)
from repro.compiled import CompiledKeyphrases, HAVE_NUMPY
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.relatedness.kore import KoreRelatedness
from repro.similarity.context import DocumentContext
from repro.similarity.keyphrase_match import KeyphraseSimilarity

CHECK_SPEEDUP = 3.0
TOLERANCE = 1e-9


# ----------------------------------------------------------------------
# Workload extraction
# ----------------------------------------------------------------------
def simscore_workload(
    doc_limit: Optional[int],
) -> List[Tuple[DocumentContext, List[str]]]:
    """(mention context, candidate entities) pairs from the bench corpus."""
    kb = bench_kb()
    documents = [
        annotated.document for annotated in conll_corpus().all_documents()
    ]
    if doc_limit:
        documents = documents[:doc_limit]
    workload = []
    for document in documents:
        for mention in document.mentions:
            candidates = sorted(kb.candidates(mention.surface))
            if candidates:
                workload.append(
                    (
                        DocumentContext(
                            document, exclude_mention=mention
                        ),
                        candidates,
                    )
                )
    return workload


def kore_workload(limit: int) -> List[Tuple[str, str]]:
    """Entity pairs drawn from candidate sets sharing a document."""
    kb = bench_kb()
    pairs = []
    seen = set()
    for annotated in conll_corpus().all_documents():
        entities = sorted(
            {
                entity
                for mention in annotated.document.mentions
                for entity in kb.candidates(mention.surface)
            }
        )
        for i, a in enumerate(entities):
            for b in entities[i + 1 :]:
                if (a, b) not in seen:
                    seen.add((a, b))
                    pairs.append((a, b))
                    if len(pairs) >= limit:
                        return pairs
    return pairs


# ----------------------------------------------------------------------
# The timed variants
# ----------------------------------------------------------------------
def _sim_scorers() -> Dict[str, KeyphraseSimilarity]:
    kb = bench_kb()
    weights = bench_weights()
    store = kb.keyphrases
    scorers = {
        "reference": KeyphraseSimilarity(store, weights),
        "compiled-python": KeyphraseSimilarity(
            store,
            weights,
            compiled=CompiledKeyphrases(store, weights, backend="python"),
        ),
    }
    if HAVE_NUMPY:
        scorers["compiled-auto"] = KeyphraseSimilarity(
            store,
            weights,
            compiled=CompiledKeyphrases(store, weights, backend="auto"),
        )
    return scorers


def run_simscore(
    workload, repeats: int
) -> Tuple[List[Dict[str, object]], float]:
    """Time every simscore variant on the same workload."""
    cases: List[Dict[str, object]] = []
    reference_scores: Optional[List[Dict[str, float]]] = None
    reference_seconds = 0.0
    max_diff = 0.0
    for name, scorer in _sim_scorers().items():
        build_seconds = 0.0
        if scorer.compiled is not None:
            start = time.perf_counter()
            scorer.compiled.precompile()
            build_seconds = time.perf_counter() - start
        # One warm pass outside the clock: the weight model memoizes its
        # per-entity keyword weights, and both paths should be timed in
        # the steady state the batch runner actually sees.
        scores = [
            scorer.simscores(context, candidates)
            for context, candidates in workload
        ]
        start = time.perf_counter()
        for _ in range(repeats):
            for context, candidates in workload:
                scorer.simscores(context, candidates)
        elapsed = time.perf_counter() - start
        if reference_scores is None:
            reference_scores = scores
            reference_seconds = elapsed
        diff = max(
            (
                abs(got[eid] - want[eid])
                for got, want in zip(scores, reference_scores)
                for eid in want
            ),
            default=0.0,
        )
        max_diff = max(max_diff, diff)
        contexts = len(workload) * repeats
        cases.append(
            {
                "variant": name,
                "contexts": contexts,
                "candidates": sum(len(c) for _, c in workload) * repeats,
                "seconds": elapsed,
                "build_seconds": build_seconds,
                "contexts_per_second": (
                    contexts / elapsed if elapsed > 0 else 0.0
                ),
                "speedup_vs_reference": (
                    reference_seconds / elapsed if elapsed > 0 else 0.0
                ),
                "max_abs_diff": diff,
            }
        )
    return cases, max_diff


def run_kore(pairs, repeats: int) -> Tuple[List[Dict[str, object]], float]:
    """Time KORE pair scoring, reference vs compiled (uncached pairs)."""
    kb = bench_kb()
    weights = bench_weights()
    store = kb.keyphrases
    variants = {
        "reference": KoreRelatedness(store, weights),
        "compiled": KoreRelatedness(
            store,
            weights,
            compiled=CompiledKeyphrases(store, weights),
        ),
    }
    cases: List[Dict[str, object]] = []
    reference_values: Optional[List[float]] = None
    reference_seconds = 0.0
    max_diff = 0.0
    for name, measure in variants.items():
        values = [measure.compute_pair(a, b) for a, b in pairs]
        start = time.perf_counter()
        for _ in range(repeats):
            for a, b in pairs:
                measure.compute_pair(a, b)
        elapsed = time.perf_counter() - start
        if reference_values is None:
            reference_values = values
            reference_seconds = elapsed
        diff = max(
            (
                abs(got - want)
                for got, want in zip(values, reference_values)
            ),
            default=0.0,
        )
        max_diff = max(max_diff, diff)
        scored = len(pairs) * repeats
        cases.append(
            {
                "variant": name,
                "pairs": scored,
                "seconds": elapsed,
                "pairs_per_second": (
                    scored / elapsed if elapsed > 0 else 0.0
                ),
                "speedup_vs_reference": (
                    reference_seconds / elapsed if elapsed > 0 else 0.0
                ),
                "max_abs_diff": diff,
            }
        )
    return cases, max_diff


def run_pipeline(doc_limit: Optional[int]) -> List[Dict[str, object]]:
    """End-to-end documents/second, compiled layer off vs on."""
    documents = [
        annotated.document for annotated in conll_corpus().all_documents()
    ]
    if doc_limit:
        documents = documents[:doc_limit]
    cases: List[Dict[str, object]] = []
    reference_seconds = 0.0
    for name, use_compiled in (("reference", False), ("compiled", True)):
        config = AidaConfig.full()
        config.use_compiled = use_compiled
        pipeline = AidaDisambiguator(bench_kb(), config=config)
        start = time.perf_counter()
        for document in documents:
            pipeline.disambiguate(document)
        elapsed = time.perf_counter() - start
        if not cases:
            reference_seconds = elapsed
        cases.append(
            {
                "variant": name,
                "documents": len(documents),
                "seconds": elapsed,
                "docs_per_second": (
                    len(documents) / elapsed if elapsed > 0 else 0.0
                ),
                "speedup_vs_reference": (
                    reference_seconds / elapsed if elapsed > 0 else 0.0
                ),
            }
        )
    return cases


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _render_sim(cases) -> str:
    headers = [
        "variant",
        "contexts",
        "seconds",
        "ctx/s",
        "speedup",
        "max |diff|",
    ]
    rows = [
        [
            str(c["variant"]),
            str(c["contexts"]),
            f"{c['seconds']:.3f}",
            f"{c['contexts_per_second']:.0f}",
            f"{c['speedup_vs_reference']:.2f}x",
            f"{c['max_abs_diff']:.2e}",
        ]
        for c in cases
    ]
    return render_table(headers, rows, title="simscore (Eq. 3.6)")


def _render_kore(cases) -> str:
    headers = ["variant", "pairs", "seconds", "pairs/s", "speedup", "max |diff|"]
    rows = [
        [
            str(c["variant"]),
            str(c["pairs"]),
            f"{c['seconds']:.3f}",
            f"{c['pairs_per_second']:.0f}",
            f"{c['speedup_vs_reference']:.2f}x",
            f"{c['max_abs_diff']:.2e}",
        ]
        for c in cases
    ]
    return render_table(headers, rows, title="KORE (Eq. 4.4)")


def _render_pipeline(cases) -> str:
    headers = ["variant", "docs", "seconds", "docs/s", "speedup"]
    rows = [
        [
            str(c["variant"]),
            str(c["documents"]),
            f"{c['seconds']:.3f}",
            f"{c['docs_per_second']:.2f}",
            f"{c['speedup_vs_reference']:.2f}x",
        ]
        for c in cases
    ]
    return render_table(headers, rows, title="full pipeline (AIDA full)")


def test_similarity_smoke(benchmark):
    """Pytest smoke: compiled and reference agree on a scaled-down
    workload.  Wall-clock gates live in the scripted ``--check`` run only
    — agreement is what must never regress."""
    from benchmarks.conftest import report

    workload = simscore_workload(doc_limit=12)
    pairs = kore_workload(limit=40)

    def run():
        sim_cases, sim_diff = run_simscore(workload, repeats=1)
        kore_cases, kore_diff = run_kore(pairs, repeats=1)
        return sim_cases, sim_diff, kore_cases, kore_diff

    sim_cases, sim_diff, kore_cases, kore_diff = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report(
        "Compiled keyphrase scoring - reference vs compiled",
        _render_sim(sim_cases) + "\n" + _render_kore(kore_cases),
    )
    assert sim_diff <= TOLERANCE
    assert kore_diff <= TOLERANCE


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--doc-limit", type=int, default=0,
        help="cap the simscore workload at mentions of N documents "
        "(0 = full corpus)",
    )
    parser.add_argument(
        "--pipeline-docs", type=int, default=40,
        help="documents for the end-to-end pipeline comparison",
    )
    parser.add_argument(
        "--kore-pairs", type=int, default=300,
        help="entity pairs for the KORE micro-benchmark",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="timed passes over the workload",
    )
    parser.add_argument(
        "--out", default="BENCH_similarity.json", help="JSON output path"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless every variant agrees within "
        f"{TOLERANCE:g} and the best compiled simscore variant clears "
        f"a {CHECK_SPEEDUP}x speedup over the reference",
    )
    args = parser.parse_args(argv)

    workload = simscore_workload(args.doc_limit or None)
    sim_cases, sim_diff = run_simscore(workload, args.repeats)
    print(_render_sim(sim_cases))
    pairs = kore_workload(args.kore_pairs)
    kore_cases, kore_diff = run_kore(pairs, args.repeats)
    print()
    print(_render_kore(kore_cases))
    pipeline_cases = run_pipeline(args.pipeline_docs or None)
    print()
    print(_render_pipeline(pipeline_cases))

    record = {
        "benchmark": "compiled_similarity",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "numpy": HAVE_NUMPY,
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "0.5"),
        "tolerance": TOLERANCE,
        "simscore": sim_cases,
        "kore": kore_cases,
        "pipeline": pipeline_cases,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.out}")

    if args.check:
        failed = False
        if max(sim_diff, kore_diff) > TOLERANCE:
            print(
                f"FAIL: compiled scores diverge by "
                f"{max(sim_diff, kore_diff):.3e} > {TOLERANCE:g}",
                file=sys.stderr,
            )
            failed = True
        best = max(
            case["speedup_vs_reference"]
            for case in sim_cases
            if case["variant"] != "reference"
        )
        if best < CHECK_SPEEDUP:
            print(
                f"FAIL: best compiled simscore speedup {best:.2f}x "
                f"< {CHECK_SPEEDUP}x",
                file=sys.stderr,
            )
            failed = True
        if (
            pipeline_cases[1]["docs_per_second"]
            <= pipeline_cases[0]["docs_per_second"]
        ):
            print(
                "FAIL: compiled pipeline is not faster than reference "
                f"({pipeline_cases[1]['docs_per_second']:.2f} vs "
                f"{pipeline_cases[0]['docs_per_second']:.2f} docs/s)",
                file=sys.stderr,
            )
            failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
