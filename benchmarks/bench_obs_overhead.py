"""Observability overhead: the disabled path must be near-free.

The pipeline is permanently instrumented (spans, metrics, structured
logging hooks) but defaults to the no-op tracer/registry singletons.
This benchmark quantifies what that costs and what enabling everything
costs, on the synthetic CoNLL-style benchmark corpus:

* ``disabled`` — the default null observability (what every production
  run that didn't opt in pays), repeated to expose run-to-run noise;
* ``enabled`` — a live :class:`~repro.obs.Tracer` plus
  :class:`~repro.obs.MetricsRegistry` collecting every span and metric;
* a **null-op micro-benchmark** — the per-call cost of the no-op span
  and the disabled-path guard checks, multiplied by the observed span
  volume per document, yields the *projected* disabled overhead as a
  fraction of per-document run-time.  This is the ≤2% gate: unlike a
  direct A/B against a de-instrumented build (which no longer exists),
  the projection is stable on noisy shared CI runners.

Both modes must produce bit-identical assignments, and the enabled run
must export a Chrome ``trace_event`` file that round-trips ``json.load``
with matched B/E pairs, monotonic ``ts``, and spans for all six pipeline
stages.  Runs two ways::

    PYTHONPATH=src:. python benchmarks/bench_obs_overhead.py \
        --out BENCH_obs.json --check

or under pytest with the rest of the benchmark suite (identity + trace
schema smoke, no wall-clock assertions).
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import platform
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from benchmarks.common import bench_kb, conll_corpus
from repro.core.pipeline import AidaDisambiguator
from repro.obs import (
    MetricsRegistry,
    NULL_METRICS,
    NULL_TRACER,
    Tracer,
    set_metrics,
    set_tracer,
)
from repro.types import DisambiguationResult, Document

#: The six pipeline stages every full-config document passes through.
PIPELINE_STAGES = (
    "candidate_retrieval",
    "feature_computation",
    "coherence_test",
    "graph_build",
    "solve",
    "post_process",
)

MAX_DISABLED_OVERHEAD_PCT = 2.0
MAX_SERVING_OVERHEAD_PCT = 2.0
DEFAULT_LIMIT = 40
DEFAULT_REPEATS = 3
DEFAULT_SERVING_DOCS = 12

_LOG = logging.getLogger("repro.pipeline")


def _documents(limit: Optional[int]) -> List[Document]:
    documents = [
        annotated.document
        for annotated in conll_corpus().all_documents()
    ]
    return documents[:limit] if limit else documents


def _signature(results: List[DisambiguationResult]):
    """Bit-exact comparison key: every mention, entity, and score."""
    return [
        [(a.mention, a.entity, a.score) for a in result.assignments]
        for result in results
    ]


def _run_corpus(documents: List[Document]) -> Tuple[List, float]:
    pipeline = AidaDisambiguator(bench_kb())
    start = time.perf_counter()
    results = [pipeline.disambiguate(d) for d in documents]
    return results, time.perf_counter() - start


def time_null_ops(iterations: int = 200_000) -> float:
    """Seconds per disabled-path observation point.

    One iteration deliberately over-counts a single instrumentation
    site: a no-op span enter/exit *plus* the registry-enabled guard
    *plus* a logger level check (real sites pay only one or two of
    these).
    """
    null_span = NULL_TRACER.span
    start = time.perf_counter()
    for _ in range(iterations):
        with null_span("x"):
            pass
        if NULL_METRICS.enabled:  # pragma: no cover - never true
            raise AssertionError
        _LOG.isEnabledFor(logging.DEBUG)
    return (time.perf_counter() - start) / iterations


def validate_chrome_trace(
    path: str, require_stages: Tuple[str, ...] = PIPELINE_STAGES
) -> Dict[str, object]:
    """``json.load`` the trace and verify the event stream invariants.

    Raises ``ValueError`` on malformed traces; returns summary facts.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    events = payload["traceEvents"]
    last_ts = float("-inf")
    stacks: Dict[int, List[str]] = {}
    begin_names = set()
    for event in events:
        if event["ph"] not in ("B", "E"):
            raise ValueError(f"unexpected phase {event['ph']!r}")
        if event["ts"] < last_ts:
            raise ValueError(
                f"ts went backwards: {event['ts']} after {last_ts}"
            )
        last_ts = event["ts"]
        stack = stacks.setdefault(event["tid"], [])
        if event["ph"] == "B":
            begin_names.add(event["name"])
            stack.append(event["name"])
        else:
            if not stack or stack[-1] != event["name"]:
                raise ValueError(
                    f"unmatched E event {event['name']!r} "
                    f"(stack: {stack})"
                )
            stack.pop()
    for tid, stack in stacks.items():
        if stack:
            raise ValueError(f"unclosed spans on tid {tid}: {stack}")
    missing = [s for s in require_stages if s not in begin_names]
    if missing:
        raise ValueError(f"stages missing from trace: {missing}")
    return {
        "events": len(events),
        "spans": len(events) // 2,
        "distinct_names": len(begin_names),
    }


def run_benchmark(
    documents: List[Document],
    repeats: int = DEFAULT_REPEATS,
    trace_path: Optional[str] = None,
) -> Dict[str, object]:
    """Measure both modes; return the record ``BENCH_obs.json`` stores."""
    # Disabled (default) runs — min over repeats suppresses noise.
    set_tracer(None)
    set_metrics(None)
    disabled_runs: List[float] = []
    reference = None
    for _ in range(max(1, repeats)):
        results, seconds = _run_corpus(documents)
        disabled_runs.append(seconds)
        if reference is None:
            reference = _signature(results)
    disabled_seconds = min(disabled_runs)

    # Enabled run: live tracer + registry.
    tracer = Tracer()
    registry = MetricsRegistry()
    set_tracer(tracer)
    set_metrics(registry)
    try:
        enabled_results, enabled_seconds = _run_corpus(documents)
        enabled_signature = _signature(enabled_results)
        span_records = tracer.records()
        snapshot = registry.snapshot()
        if trace_path is None:
            handle = tempfile.NamedTemporaryFile(
                suffix=".json", delete=False
            )
            handle.close()
            trace_path = handle.name
        tracer.export_chrome(trace_path)
        trace_facts = validate_chrome_trace(trace_path)
    finally:
        set_tracer(None)
        set_metrics(None)

    spans_per_doc = len(span_records) / max(1, len(documents))
    null_op_seconds = time_null_ops()
    seconds_per_doc = disabled_seconds / max(1, len(documents))
    projected_disabled_overhead_pct = (
        100.0 * spans_per_doc * null_op_seconds / seconds_per_doc
        if seconds_per_doc > 0
        else 0.0
    )
    return {
        "documents": len(documents),
        "disabled_seconds": disabled_seconds,
        "disabled_runs": disabled_runs,
        "disabled_noise_pct": (
            100.0 * (max(disabled_runs) - disabled_seconds)
            / disabled_seconds
            if disabled_seconds > 0
            else 0.0
        ),
        "enabled_seconds": enabled_seconds,
        "enabled_overhead_pct": (
            100.0 * (enabled_seconds - disabled_seconds)
            / disabled_seconds
            if disabled_seconds > 0
            else 0.0
        ),
        "spans_per_document": spans_per_doc,
        "null_op_nanoseconds": null_op_seconds * 1e9,
        "projected_disabled_overhead_pct":
            projected_disabled_overhead_pct,
        "identical": enabled_signature == reference,
        "trace_path": trace_path,
        "trace": trace_facts,
        "metric_counters": snapshot["counters"],
    }


def time_enabled_span(iterations: int = 20_000) -> float:
    """Seconds per *enabled* span enter/exit on a live tracer."""
    tracer = Tracer(max_spans=iterations + 1)
    span = tracer.span
    start = time.perf_counter()
    for _ in range(iterations):
        with span("x"):
            pass
    return (time.perf_counter() - start) / iterations


def run_serving_benchmark(documents: List[Document]) -> Dict[str, object]:
    """Serving-path telemetry overhead: traced vs untraced submit loop.

    Runs the same documents through two loopback servers (no TCP — the
    submit path is identical), one with null observability and one with
    a live tracer + registry + trace sink.  The identity assertion is
    exact; the ≤2% gate is a *projection* (per-request span volume ×
    measured enabled-span cost over per-request serving time), which is
    stable on shared CI runners where a direct wall-clock A/B is not.
    """
    import asyncio

    from repro.faults.resilient import RobustnessConfig
    from repro.serving import DisambiguationServer, ServingConfig

    def serve(traced: bool, trace_path: Optional[str] = None):
        if traced:
            set_tracer(Tracer())
            set_metrics(MetricsRegistry())
        else:
            set_tracer(None)
            set_metrics(None)
        try:
            server = DisambiguationServer(
                AidaDisambiguator(bench_kb()),
                ServingConfig(
                    port=0,
                    slo_ms=600_000.0,
                    batch_window_ms=5.0,
                    batch_max_docs=8,
                    workers=4,
                    trace_export=trace_path,
                ),
                robustness=RobustnessConfig(degrade=True),
            )

            async def main():
                await server.start(listen=False)
                try:
                    start = time.perf_counter()
                    responses = await server.process(
                        documents, concurrency=8
                    )
                    return responses, time.perf_counter() - start
                finally:
                    await server.stop()

            responses, seconds = asyncio.run(main())
            sink = server._trace_sink
            return responses, seconds, sink.stats() if sink else None
        finally:
            set_tracer(None)
            set_metrics(None)

    untraced, untraced_seconds, _ = serve(traced=False)
    handle = tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False)
    handle.close()
    try:
        traced, traced_seconds, sink_stats = serve(
            traced=True, trace_path=handle.name
        )
    finally:
        os.unlink(handle.name)

    identical = _signature(
        [response.result for response in untraced]
    ) == _signature([response.result for response in traced])
    requests = max(1, len(documents))
    spans_per_request = sink_stats["spans_written"] / requests
    span_seconds = time_enabled_span()
    request_seconds = untraced_seconds / requests
    projected_pct = (
        100.0 * spans_per_request * span_seconds / request_seconds
        if request_seconds > 0
        else 0.0
    )
    return {
        "requests": requests,
        "untraced_seconds": untraced_seconds,
        "traced_seconds": traced_seconds,
        "traced_overhead_pct": (
            100.0 * (traced_seconds - untraced_seconds)
            / untraced_seconds
            if untraced_seconds > 0
            else 0.0
        ),
        "spans_per_request": spans_per_request,
        "enabled_span_nanoseconds": span_seconds * 1e9,
        "projected_serving_overhead_pct": projected_pct,
        "identical": identical,
        "traces_written": sink_stats["traces_written"],
    }


def _render(record: Dict[str, object]) -> List[str]:
    return [
        f"documents:                {record['documents']}",
        f"disabled corpus seconds:  {record['disabled_seconds']:.3f} "
        f"(noise {record['disabled_noise_pct']:.1f}%)",
        f"enabled corpus seconds:   {record['enabled_seconds']:.3f} "
        f"({record['enabled_overhead_pct']:+.1f}%)",
        f"spans per document:       {record['spans_per_document']:.1f}",
        f"null-op cost:             "
        f"{record['null_op_nanoseconds']:.0f} ns",
        f"projected disabled ovh:   "
        f"{record['projected_disabled_overhead_pct']:.4f}% "
        f"(gate {MAX_DISABLED_OVERHEAD_PCT}%)",
        f"bit-identical:            "
        f"{'yes' if record['identical'] else 'NO'}",
        f"trace spans:              {record['trace']['spans']} "
        f"({record['trace']['distinct_names']} names)",
    ]


def _render_serving(record: Dict[str, object]) -> List[str]:
    return [
        f"serving requests:         {record['requests']}",
        f"untraced serving seconds: {record['untraced_seconds']:.3f}",
        f"traced serving seconds:   {record['traced_seconds']:.3f} "
        f"({record['traced_overhead_pct']:+.1f}%)",
        f"spans per request:        {record['spans_per_request']:.1f} "
        f"({record['traces_written']} traces spooled)",
        f"enabled span cost:        "
        f"{record['enabled_span_nanoseconds']:.0f} ns",
        f"projected serving ovh:    "
        f"{record['projected_serving_overhead_pct']:.4f}% "
        f"(gate {MAX_SERVING_OVERHEAD_PCT}%)",
        f"bit-identical:            "
        f"{'yes' if record['identical'] else 'NO'}",
    ]


def check(
    record: Dict[str, object],
    serving: Optional[Dict[str, object]] = None,
) -> List[str]:
    """The ``--check`` gate; returns a list of failure messages."""
    failures = []
    if not record["identical"]:
        failures.append(
            "traced and untraced runs produced different assignments"
        )
    if (
        record["projected_disabled_overhead_pct"]
        > MAX_DISABLED_OVERHEAD_PCT
    ):
        failures.append(
            "projected disabled-observability overhead "
            f"{record['projected_disabled_overhead_pct']:.3f}% exceeds "
            f"{MAX_DISABLED_OVERHEAD_PCT}%"
        )
    if serving is not None:
        if not serving["identical"]:
            failures.append(
                "traced and untraced serving runs produced different "
                "assignments"
            )
        if (
            serving["projected_serving_overhead_pct"]
            > MAX_SERVING_OVERHEAD_PCT
        ):
            failures.append(
                "projected serving-telemetry overhead "
                f"{serving['projected_serving_overhead_pct']:.3f}% "
                f"exceeds {MAX_SERVING_OVERHEAD_PCT}%"
            )
    return failures


def test_obs_overhead_smoke(benchmark):
    """Pytest smoke: identity + valid trace on a tiny corpus (no
    wall-clock assertions — those live in the scripted ``--check``)."""
    from benchmarks.common import render_table
    from benchmarks.conftest import report

    documents = _documents(limit=8)
    record = benchmark.pedantic(
        lambda: run_benchmark(documents, repeats=1),
        rounds=1,
        iterations=1,
    )
    report(
        "Observability overhead - disabled vs enabled",
        "\n".join(_render(record)),
    )
    os.unlink(record["trace_path"])
    assert record["identical"]
    assert record["trace"]["spans"] > 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--limit", type=int, default=DEFAULT_LIMIT,
        help="cap the corpus at N documents (0 = full corpus)",
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS,
        help="disabled-mode repetitions (min is reported)",
    )
    parser.add_argument(
        "--trace-out", default=None,
        help="where to write the enabled run's Chrome trace "
        "(default: a temp file)",
    )
    parser.add_argument(
        "--out", default="BENCH_obs.json", help="JSON output path"
    )
    parser.add_argument(
        "--serving-docs", type=int, default=DEFAULT_SERVING_DOCS,
        help="documents of the serving-telemetry section (0 skips it)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless traced ≡ untraced (pipeline and "
        "serving), the trace file is schema-valid with all six stages, "
        "and the projected disabled/serving overheads are "
        f"≤{MAX_DISABLED_OVERHEAD_PCT}%%",
    )
    args = parser.parse_args(argv)
    documents = _documents(args.limit or None)
    record = run_benchmark(
        documents, repeats=args.repeats, trace_path=args.trace_out
    )
    for line in _render(record):
        print(line)
    serving = None
    if args.serving_docs > 0:
        serving = run_serving_benchmark(documents[: args.serving_docs])
        print()
        for line in _render_serving(serving):
            print(line)
    payload = {
        "benchmark": "obs_overhead",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "0.5"),
        "max_disabled_overhead_pct": MAX_DISABLED_OVERHEAD_PCT,
        "max_serving_overhead_pct": MAX_SERVING_OVERHEAD_PCT,
        **{k: v for k, v in record.items() if k != "trace_path"},
    }
    if serving is not None:
        payload["serving"] = serving
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    if args.trace_out is None:
        os.unlink(record["trace_path"])
    if args.check:
        failures = check(record, serving)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
