"""Table 4.4 / Figures 4.4–4.5 — efficiency of relatedness computation.

Runs AIDA's coherence stage over the CoNLL collection with MW, exact KORE,
and the two LSH accelerations, measuring per-document running time and the
number of exact pairwise relatedness computations (mean, standard
deviation, 0.9-quantile) — the quantities Table 4.4 reports.

Expected shape (paper): KORE_LSH-G reduces comparisons well below the
exact measures and KORE_LSH-F by an order of magnitude; running time
follows the comparison counts.
"""

from __future__ import annotations

import time
from typing import Dict

from benchmarks.common import (
    bench_kb,
    conll_corpus,
    make_relatedness,
    render_table,
)
from benchmarks.conftest import report
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.utils.timing import TimingStats

MEASURES = ("MW", "KORE", "KORE_LSH-G", "KORE_LSH-F")


def _run():
    kb = bench_kb()
    docs = conll_corpus().testb
    results: Dict[str, Dict[str, float]] = {}
    series: Dict[str, list] = {}
    for name in MEASURES:
        measure = make_relatedness(name)
        pipeline = AidaDisambiguator(
            kb,
            relatedness=measure,
            config=AidaConfig.robust_prior_sim_coherence(),
        )
        times = TimingStats()
        comparisons = TimingStats()
        per_doc = []
        for annotated in docs:
            candidate_count = sum(
                len(kb.candidates(m.surface))
                for m in annotated.document.mentions
            )
            before = measure.comparisons
            start = time.perf_counter()
            pipeline.disambiguate(annotated.document)
            elapsed = time.perf_counter() - start
            delta = measure.comparisons - before
            times.add(elapsed)
            comparisons.add(delta)
            per_doc.append((candidate_count, elapsed, delta))
        results[name] = {
            "cmp_mean": comparisons.mean,
            "cmp_std": comparisons.stddev,
            "cmp_q90": comparisons.quantile(0.9),
            "time_mean": times.mean,
            "time_std": times.stddev,
            "time_q90": times.quantile(0.9),
        }
        series[name] = sorted(per_doc)
    return results, series


def _decile_series(per_doc, value_index: int, buckets: int = 5):
    """Average (candidate count, value) per documents-sorted bucket —
    the Figure 4.4/4.5 series with documents ordered by candidate count."""
    if not per_doc:
        return []
    points = []
    size = max(1, len(per_doc) // buckets)
    for start in range(0, len(per_doc), size):
        chunk = per_doc[start : start + size]
        avg_candidates = sum(c for c, *_ in chunk) / len(chunk)
        avg_value = sum(item[value_index] for item in chunk) / len(chunk)
        points.append((avg_candidates, avg_value))
    return points[:buckets]


def test_table_4_4(benchmark):
    results, series = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                f"{r['cmp_mean']:.1f}",
                f"{r['cmp_std']:.1f}",
                f"{r['cmp_q90']:.1f}",
                f"{1000 * r['time_mean']:.2f}",
                f"{1000 * r['time_std']:.2f}",
                f"{1000 * r['time_q90']:.2f}",
            ]
        )
    report(
        "Table 4.4 - relatedness efficiency (per document)",
        render_table(
            [
                "method",
                "cmp mean",
                "cmp stddev",
                "cmp q90",
                "ms mean",
                "ms stddev",
                "ms q90",
            ],
            rows,
        ),
    )
    # Figures 4.4 / 4.5: runtime and comparison counts over documents
    # ordered by candidate-entity count.
    for title, value_index, scale in (
        ("Figure 4.4 - running time vs candidate count", 1, 1000.0),
        ("Figure 4.5 - comparisons vs candidate count", 2, 1.0),
    ):
        fig_rows = []
        bucket_labels = None
        for name in MEASURES:
            points = _decile_series(series[name], value_index)
            if bucket_labels is None:
                bucket_labels = [f"~{c:.0f} cands" for c, _v in points]
            fig_rows.append(
                [name] + [f"{scale * v:.2f}" for _c, v in points]
            )
        report(
            title,
            render_table(["method"] + (bucket_labels or []), fig_rows),
        )
    # Shape: the LSH pre-clustering prunes comparisons; F prunes more
    # than G.
    assert results["KORE_LSH-G"]["cmp_mean"] <= results["KORE"]["cmp_mean"]
    assert (
        results["KORE_LSH-F"]["cmp_mean"]
        <= results["KORE_LSH-G"]["cmp_mean"]
    )
    # MW and exact KORE compute the same pair set.
    assert abs(
        results["MW"]["cmp_mean"] - results["KORE"]["cmp_mean"]
    ) < 1e-6
