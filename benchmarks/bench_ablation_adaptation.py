"""Ablation — domain-adaptive disambiguation (outlook, Section 7.2.3).

Compares plain full AIDA against the domain-adaptive wrapper (a mild
per-document domain prior realized through the entity-edge-factor hook)
on CoNLL testb, sweeping the boost strength.

Expected: a mild boost is neutral-to-positive on mostly single-domain
news documents; an aggressive boost starts hurting heterogeneous
documents — the trade-off the paper's outlook anticipates.
"""

from __future__ import annotations

from benchmarks.common import bench_kb, conll_corpus, pct, render_table
from benchmarks.conftest import report
from repro.core.adaptation import DomainAdaptiveDisambiguator
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.eval.runner import run_disambiguator

BOOSTS = (0.0, 0.25, 0.5, 1.0)


def _run():
    kb = bench_kb()
    testb = conll_corpus().testb
    results = {}
    plain = run_disambiguator(
        AidaDisambiguator(kb, config=AidaConfig.full()), testb, kb=kb
    )
    results["plain AIDA"] = plain.micro
    for boost in BOOSTS[1:]:
        adaptive = DomainAdaptiveDisambiguator(
            kb, config=AidaConfig.full(), boost=boost
        )
        run = run_disambiguator(adaptive, testb, kb=kb)
        results[f"adaptive (boost={boost})"] = run.micro
    return results


def test_ablation_adaptation(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [[name, pct(micro)] for name, micro in results.items()]
    report(
        "Ablation - domain-adaptive disambiguation (Section 7.2.3)",
        render_table(["configuration", "MicA"], rows),
    )
    # A mild boost must not hurt materially.
    assert results["adaptive (boost=0.25)"] >= results["plain AIDA"] - 0.01
