"""Extra — the TAC KBP single-mention protocol (Section 2.2.4).

The paper observes that TAC's one-mention-per-document evaluation "makes
the task less appealing for joint-inference methods, where all mentions in
a text are deemed relevant".  This bench quantifies that: the similarity-
only pipeline and the coherence pipeline are compared under both the
CoNLL-style all-mentions protocol and the TAC-style single-mention
protocol (where the restricted problem strips the joint structure).

Also reports NIL accuracy and the B³ clustering scores over NIL queries.
"""

from __future__ import annotations

from benchmarks.common import bench_kb, conll_corpus, pct, render_table
from benchmarks.conftest import report
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.eval.runner import run_disambiguator
from repro.eval.tac import evaluate_tac, queries_from_corpus


def _run():
    kb = bench_kb()
    docs = conll_corpus().testb[:60]
    queries = queries_from_corpus(docs)
    pipelines = {
        "sim-k": AidaDisambiguator(kb, config=AidaConfig.sim_only()),
        "AIDA (coherence)": AidaDisambiguator(
            kb, config=AidaConfig.full()
        ),
    }
    results = {}
    for name, pipeline in pipelines.items():
        full_run = run_disambiguator(pipeline, docs, kb=kb)
        tac = evaluate_tac(pipeline, queries)
        results[name] = {
            "full_micro": full_run.micro,
            "tac_in_kb": tac.in_kb_accuracy,
            "tac_nil": tac.nil_accuracy,
            "tac_overall": tac.accuracy,
            "b3_f1": tac.b3_f1,
        }
    return results


def test_tac_protocol(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                pct(r["full_micro"]),
                pct(r["tac_in_kb"]),
                pct(r["tac_nil"]),
                pct(r["tac_overall"]),
                pct(r["b3_f1"]),
            ]
        )
    report(
        "Extra - TAC KBP single-mention protocol",
        render_table(
            [
                "method",
                "all-mentions MicA",
                "TAC in-KB",
                "TAC NIL",
                "TAC overall",
                "NIL B3 F1",
            ],
            rows,
        ),
    )
    sim = results["sim-k"]
    coh = results["AIDA (coherence)"]
    # The joint method's edge shrinks (or flips) under the single-mention
    # protocol relative to the all-mentions protocol.
    full_gap = coh["full_micro"] - sim["full_micro"]
    tac_gap = coh["tac_in_kb"] - sim["tac_in_kb"]
    assert tac_gap <= full_gap + 0.02
