"""Figure 5.4 — EE discovery quality over the harvest-window length.

Sweeps the number of news days the emerging-entity model is harvested
from, with and without keyphrase enrichment of existing entities.

Expected shape (paper): without enrichment, EE precision degrades as the
window grows (the placeholder accumulates existing entities' vocabulary
and starts dominating them) while recall rises; harvesting keyphrases for
existing entities counteracts the domination and stabilizes precision.
"""

from __future__ import annotations

from typing import Dict, Tuple

from benchmarks.common import bench_kb, news_stream, render_table
from benchmarks.conftest import report
from benchmarks.ee_common import evaluate_pipeline, stream_documents
from repro.emerging.discovery import EeConfig, EmergingEntityPipeline

DAY_GRID = (1, 2, 4, 8, 14)
GAMMA = 0.3


def _run():
    kb = bench_kb()
    docs = stream_documents()
    test_docs = news_stream().test_docs()
    shared_enrichment: Dict[int, object] = {}
    curves: Dict[Tuple[bool, int], Tuple[float, float]] = {}
    for enrich in (False, True):
        for days in DAY_GRID:
            pipeline = EmergingEntityPipeline(
                kb,
                docs,
                EeConfig(
                    enrich_existing=enrich,
                    ee_edge_factor=GAMMA,
                    harvest_days=days,
                    confidence_rounds=4,
                ),
                enriched_stores=shared_enrichment if enrich else None,
            )
            result = evaluate_pipeline(pipeline, test_docs)
            curves[(enrich, days)] = (result.precision, result.recall)
    return curves


def test_fig_5_4(benchmark):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)
    headers = ["series"] + [f"{d} days" for d in DAY_GRID]
    rows = []
    for enrich, label in ((False, "EE Prec."), (True, "EE Prec. (exist)")):
        rows.append(
            [label]
            + [f"{curves[(enrich, d)][0]:.3f}" for d in DAY_GRID]
        )
    for enrich, label in ((False, "EE Rec."), (True, "EE Rec. (exist)")):
        rows.append(
            [label]
            + [f"{curves[(enrich, d)][1]:.3f}" for d in DAY_GRID]
        )
    report(
        "Figure 5.4 - EE discovery over harvest-window days",
        render_table(headers, rows),
    )
    short = DAY_GRID[1]
    long = DAY_GRID[-1]
    # Shape: precision degrades with window length without enrichment...
    assert curves[(False, short)][0] > curves[(False, long)][0]
    # ...and enrichment stabilizes it at long windows.
    assert curves[(True, long)][0] >= curves[(False, long)][0]
    # Recall grows with the window.
    assert curves[(False, long)][1] >= curves[(False, short)][1] - 0.05
