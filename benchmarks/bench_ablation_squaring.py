"""Ablation — squaring of the partial-match factor.

Both Eq. 3.4 (the mention-entity cover score) and Eq. 4.4 (KORE's PO²)
square their partial-match ratio to penalize weakly overlapping phrases
super-linearly.  This ablation removes the squaring from KORE and measures
the effect on the relatedness gold ranking and on KORE50 disambiguation.

Expected: squaring helps (or at least does not hurt) by suppressing the
long tail of weak accidental overlaps.
"""

from __future__ import annotations

from benchmarks.common import (
    bench_kb,
    bench_weights,
    kore50_corpus,
    pct,
    relatedness_gold,
    render_table,
)
from benchmarks.conftest import report
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.eval.ranking import spearman
from repro.eval.runner import run_disambiguator
from repro.relatedness.kore import KoreRelatedness


def _spearman_for(measure):
    gold = relatedness_gold()
    values = []
    for seed in gold.seeds:
        candidates = list(seed.ranked_candidates)
        ranked = measure.rank_candidates(seed.seed, candidates)
        values.append(spearman(candidates, ranked))
    return sum(values) / len(values)


def _run():
    kb = bench_kb()
    weights = bench_weights()
    results = {}
    for squared in (True, False):
        measure = KoreRelatedness(kb.keyphrases, weights, squared=squared)
        rho = _spearman_for(measure)
        pipeline = AidaDisambiguator(
            kb,
            relatedness=KoreRelatedness(
                kb.keyphrases, weights, squared=squared
            ),
            config=AidaConfig.full(),
        )
        run = run_disambiguator(pipeline, kore50_corpus(), kb=kb)
        results["PO^2" if squared else "PO"] = (rho, run.micro)
    return results


def test_ablation_squaring(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [name, f"{rho:.3f}", pct(micro)]
        for name, (rho, micro) in results.items()
    ]
    report(
        "Ablation - PO squaring in KORE (Eq. 4.4)",
        render_table(
            ["variant", "Spearman (gold)", "KORE50 MicA"], rows
        ),
    )
    # Squaring must not hurt the gold ranking materially.
    assert results["PO^2"][0] >= results["PO"][0] - 0.05
