"""Performance of the incremental dense-subgraph solver.

Times Algorithm 1's Phase-2 main loop — the O(E log V) lazy-deletion heap
implementation against the original O(V²·M log V) full-rescan reference
loop (``DenseSubgraphConfig(exact_reference=True)``) — on seeded synthetic
candidate graphs of growing size, and verifies that both paths produce
identical assignments on every case.

Runs two ways:

* under pytest with the rest of the benchmark suite
  (``PYTHONPATH=src:. python -m pytest benchmarks/bench_perf_solver.py``);
* as a script writing a JSON record to seed the perf trajectory::

      PYTHONPATH=src:. python benchmarks/bench_perf_solver.py \
          --sizes 10x5,20x10,50x20 --out BENCH_solver.json --check

  ``--check`` exits non-zero if the incremental solver is not faster than
  the reference loop on the largest case (used by the CI perf smoke job).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List, Tuple

from repro.graph.dense_subgraph import (
    DenseSubgraphConfig,
    GreedyDenseSubgraph,
)
from repro.graph.synthetic import SyntheticGraphSpec, synthetic_graph

#: (mentions, candidates per mention) grid; the 50×20 point is the
#: acceptance case (≥ 5× speedup required).
DEFAULT_SIZES: Tuple[Tuple[int, int], ...] = (
    (10, 5),
    (20, 10),
    (30, 15),
    (50, 20),
)
EE_NEIGHBORS = 6
SEED = 11


def _spec(mentions: int, candidates: int) -> SyntheticGraphSpec:
    return SyntheticGraphSpec(
        mentions=mentions,
        candidates_per_mention=candidates,
        ee_neighbors=EE_NEIGHBORS,
        shared_fraction=0.1,
        seed=SEED,
    )


def _config(candidates: int, exact_reference: bool) -> DenseSubgraphConfig:
    # A prune factor equal to the candidate count keeps pre-processing
    # from shrinking the problem, so the timing isolates the main loop.
    return DenseSubgraphConfig(
        prune_factor=candidates,
        exact_reference=exact_reference,
    )


def _time_solve(
    mentions: int, candidates: int, exact_reference: bool, repeats: int
) -> Tuple[float, Dict[int, str], Dict[str, object]]:
    # Best-of-N: the min is the least noise-contaminated estimate.
    best = float("inf")
    assignment: Dict[int, str] = {}
    stats: Dict[str, object] = {}
    for _round in range(repeats):
        graph = synthetic_graph(_spec(mentions, candidates))
        solver = GreedyDenseSubgraph(_config(candidates, exact_reference))
        start = time.perf_counter()
        assignment = solver.solve(graph)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            stats = solver.last_stats.as_dict()
    return best, assignment, stats


def run_case(
    mentions: int, candidates: int, repeats: int = 3
) -> Dict[str, object]:
    """Time both solver paths on one graph size; assert identical output."""
    fast_seconds, fast_assignment, fast_stats = _time_solve(
        mentions, candidates, exact_reference=False, repeats=repeats
    )
    reference_seconds, reference_assignment, _ref_stats = _time_solve(
        mentions, candidates, exact_reference=True, repeats=repeats
    )
    return {
        "mentions": mentions,
        "candidates_per_mention": candidates,
        "entities": fast_stats["initial_entities"],
        "iterations": fast_stats["iterations"],
        "heap_pops": fast_stats["heap_pops"],
        "fast_seconds": fast_seconds,
        "reference_seconds": reference_seconds,
        "speedup": (
            reference_seconds / fast_seconds if fast_seconds > 0 else 0.0
        ),
        "identical": fast_assignment == reference_assignment,
    }


def run_grid(
    sizes: Tuple[Tuple[int, int], ...] = DEFAULT_SIZES,
    repeats: int = 3,
) -> List[Dict[str, object]]:
    return [
        run_case(mentions, candidates, repeats=repeats)
        for mentions, candidates in sizes
    ]


def _render(cases: List[Dict[str, object]]) -> Tuple[List[str], List[List[str]]]:
    headers = [
        "graph",
        "entities",
        "reference (s)",
        "incremental (s)",
        "speedup",
        "identical",
    ]
    rows = [
        [
            f"{case['mentions']}x{case['candidates_per_mention']}",
            str(case["entities"]),
            f"{case['reference_seconds']:.4f}",
            f"{case['fast_seconds']:.4f}",
            f"{case['speedup']:.1f}x",
            "yes" if case["identical"] else "NO",
        ]
        for case in cases
    ]
    return headers, rows


def test_perf_solver(benchmark):
    from benchmarks.common import render_table
    from benchmarks.conftest import report

    cases = benchmark.pedantic(
        lambda: run_grid(((10, 5), (20, 10), (30, 15))),
        rounds=1,
        iterations=1,
    )
    headers, rows = _render(cases)
    report(
        "Solver perf - incremental heap vs reference scan",
        render_table(headers, rows),
    )
    assert all(case["identical"] for case in cases)
    largest = cases[-1]
    assert largest["fast_seconds"] <= largest["reference_seconds"]


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes",
        default=",".join(f"{m}x{c}" for m, c in DEFAULT_SIZES),
        help="comma-separated MxC grid, e.g. 10x5,50x20",
    )
    parser.add_argument(
        "--out", default="BENCH_solver.json", help="JSON output path"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the incremental solver beats the "
        "reference loop on the largest case (and outputs match)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing rounds per case (best-of-N)",
    )
    args = parser.parse_args(argv)
    sizes = tuple(
        (int(m), int(c))
        for m, c in (size.split("x") for size in args.sizes.split(","))
    )
    cases = run_grid(sizes, repeats=args.repeats)
    headers, rows = _render(cases)
    widths = [
        max(len(h), *(len(row[i]) for row in rows))
        for i, h in enumerate(headers)
    ]
    print("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rows:
        print("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    record = {
        "benchmark": "dense_subgraph_solver",
        "python": platform.python_version(),
        "seed": SEED,
        "ee_neighbors": EE_NEIGHBORS,
        "cases": cases,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    if args.check:
        largest = cases[-1]
        if not all(case["identical"] for case in cases):
            print("FAIL: solver paths disagree", file=sys.stderr)
            return 1
        if largest["fast_seconds"] > largest["reference_seconds"]:
            print(
                "FAIL: incremental solver slower than reference on "
                f"{largest['mentions']}x{largest['candidates_per_mention']}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
