"""Benchmark-suite plumbing.

Benchmarks produce *tables* (the paper's tables and figures), not just
timings.  pytest captures stdout, so each bench registers its rendered
table through :func:`report`; a terminal-summary hook prints everything at
the end of the run (terminal summary is never captured), and a copy is
written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from typing import List, Tuple

_REPORTS: List[Tuple[str, str]] = []

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(title: str, body: str) -> None:
    """Register a rendered table for end-of-run display and persistence."""
    _REPORTS.append((title, body))
    os.makedirs(RESULTS_DIR, exist_ok=True)
    safe = title.lower().replace(" ", "_").replace("/", "-")
    path = os.path.join(RESULTS_DIR, f"{safe}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"{title}\n{'=' * len(title)}\n{body}\n")


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduction tables")
    for title, body in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(title)
        terminalreporter.write_line("-" * len(title))
        for line in body.splitlines():
            terminalreporter.write_line(line)
