"""Ablation — graph pre-pruning size (Section 3.4.2).

The dense-subgraph algorithm first restricts the graph to
``prune_factor × #mentions`` entities closest (by squared shortest-path
distance) to the mention nodes; the paper's experimentally determined
choice is 5.  This ablation sweeps the factor and reports accuracy and
running time on CoNLL testb.

Expected: very aggressive pruning costs accuracy; beyond the paper's
choice, extra candidates only cost time.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

from benchmarks.common import bench_kb, conll_corpus, pct, render_table
from benchmarks.conftest import report
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.eval.runner import run_disambiguator
from repro.graph.dense_subgraph import DenseSubgraphConfig

FACTORS = (1, 2, 5, 10)


def _run():
    kb = bench_kb()
    testb = conll_corpus().testb
    results: Dict[int, Tuple[float, float]] = {}
    for factor in FACTORS:
        config = AidaConfig.full()
        config.graph = DenseSubgraphConfig(prune_factor=factor)
        pipeline = AidaDisambiguator(kb, config=config)
        start = time.perf_counter()
        run = run_disambiguator(pipeline, testb, kb=kb)
        elapsed = time.perf_counter() - start
        results[factor] = (run.micro, elapsed)
    return results


def test_ablation_pruning(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [f"{factor}x mentions", pct(micro), f"{elapsed:.2f}s"]
        for factor, (micro, elapsed) in results.items()
    ]
    report(
        "Ablation - dense-subgraph pre-pruning factor",
        render_table(["kept entities", "MicA", "runtime"], rows),
    )
    # The paper's factor-5 setting must be at least as accurate as the
    # most aggressive pruning.
    assert results[5][0] >= results[1][0] - 0.01
