"""Table 3.2 / Figure 3.3 — NED accuracy of AIDA variants vs. competitors.

Runs the full method grid of Section 3.6.2 on the CoNLL testb split:
AIDA's feature ablations (prior, sim-k, prior+sim-k, robust-prior+sim-k,
plus graph coherence with and without the coherence robustness test)
against the re-implemented competitors (Cucerzan; Kulkarni s / sp / CI).
Reports macro/micro accuracy and MAP, as in Figure 3.3.

Expected shape (paper): r-prior sim-k r-coh best among AIDA variants,
unconditional prior+sim below sim alone, AIDA above Kul CI above Cuc, and
the popularity prior far below everything.
"""

from __future__ import annotations

from benchmarks.common import bench_kb, conll_corpus, pct, render_table
from benchmarks.conftest import report
from repro.baselines.cucerzan import CucerzanDisambiguator
from repro.baselines.kulkarni import KulkarniDisambiguator, KulkarniMode
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.eval.runner import run_disambiguator
from repro.eval.significance import document_accuracies, paired_t_test


def _method_grid():
    kb = bench_kb()
    return [
        ("prior", AidaDisambiguator(kb, config=AidaConfig.prior_only())),
        ("sim-k", AidaDisambiguator(kb, config=AidaConfig.sim_only())),
        ("prior sim-k", AidaDisambiguator(kb, config=AidaConfig.prior_sim())),
        (
            "r-prior sim-k",
            AidaDisambiguator(kb, config=AidaConfig.robust_prior_sim()),
        ),
        (
            "r-prior sim-k coh",
            AidaDisambiguator(
                kb, config=AidaConfig.robust_prior_sim_coherence()
            ),
        ),
        (
            "r-prior sim-k r-coh",
            AidaDisambiguator(kb, config=AidaConfig.full()),
        ),
        ("Cuc", CucerzanDisambiguator(kb)),
        (
            "Kul s",
            KulkarniDisambiguator(kb, mode=KulkarniMode.SIMILARITY),
        ),
        (
            "Kul sp",
            KulkarniDisambiguator(kb, mode=KulkarniMode.SIMILARITY_PRIOR),
        ),
        (
            "Kul CI",
            KulkarniDisambiguator(kb, mode=KulkarniMode.COLLECTIVE),
        ),
    ]


def _run_grid():
    kb = bench_kb()
    testb = conll_corpus().testb
    results = {}
    per_doc = {}
    for name, pipeline in _method_grid():
        run = run_disambiguator(pipeline, testb, kb=kb)
        results[name] = (run.macro, run.micro, run.map)
        per_doc[name] = document_accuracies(run.evaluation)
    return results, per_doc


def test_table_3_2(benchmark):
    results, per_doc = benchmark.pedantic(
        _run_grid, rounds=1, iterations=1
    )
    rows = [
        [name, pct(macro), pct(micro), pct(map_)]
        for name, (macro, micro, map_) in results.items()
    ]
    report(
        "Table 3.2 - NED accuracy on CoNLL testb",
        render_table(["method", "MacA", "MicA", "MAP"], rows),
    )
    # Paired t-tests on per-document accuracies, as in Section 3.6.2.
    aida = "r-prior sim-k r-coh"
    significance_rows = []
    for competitor in ("prior", "Cuc", "Kul sp", "Kul CI"):
        test = paired_t_test(per_doc[aida], per_doc[competitor])
        significance_rows.append(
            [
                f"AIDA vs {competitor}",
                f"{test.mean_difference:+.4f}",
                f"{test.p_value:.4g}",
                "yes" if test.significant(0.05) else "no",
            ]
        )
    report(
        "Table 3.2 - paired t-tests (per-document accuracy)",
        render_table(
            ["comparison", "mean diff", "p-value", "significant@5%"],
            significance_rows,
        ),
    )
    micro = {name: values[1] for name, values in results.items()}
    # Shape assertions mirroring the paper's findings.
    assert micro["prior"] < micro["sim-k"]
    assert micro["prior sim-k"] < micro["sim-k"]
    assert micro["r-prior sim-k"] > micro["prior sim-k"]
    assert micro["r-prior sim-k r-coh"] >= micro["r-prior sim-k"]
    assert micro["r-prior sim-k r-coh"] > micro["Kul CI"] - 0.005
    assert micro["r-prior sim-k r-coh"] > micro["Cuc"]
    assert micro["Kul CI"] >= micro["Kul sp"] - 0.005
