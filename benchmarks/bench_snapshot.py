"""Snapshot scale-out: worker attach time and memory vs fork/pickle.

Builds a stress-world KB (:mod:`repro.datagen.stress`, 100k entities by
default), compiles it into one mmap snapshot image, and measures what it
costs to stand up an extra serving worker two ways:

* **baseline** — the fork/pickle path (`repro.cli._PipelineFactory`):
  each spawned worker re-loads the TSV KB directory and rebuilds its
  models in memory;
* **snapshot** — `SnapshotPipelineFactory`: each spawned worker maps the
  read-only image by path; models are typed windows over shared pages.

Per worker kind it reports attach wall-time, first-request latency, and
the *extra anonymous memory* the worker holds beyond a bare interpreter
(anonymous pages are the per-worker cost that cannot be shared through
the page cache; the mmap'd image itself is file-backed and shared).

Runs two ways:

* under pytest as a small smoke (2k entities, shape checks only);
* as a script writing ``BENCH_snapshot.json``::

      PYTHONPATH=src:. python benchmarks/bench_snapshot.py \
          --out BENCH_snapshot.json --check

  ``--check`` exits non-zero unless snapshot attach is >= 10x faster
  than fork/pickle and the per-extra-worker anonymous memory is <= 10%
  of the baseline's (the CI ``snapshot-smoke`` gate).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import platform
import sys
import tempfile
import time
from typing import Dict, List, Optional

#: The ``--check`` gates (acceptance criteria of the snapshot work).
CHECK_ATTACH_SPEEDUP = 10.0
CHECK_MEMORY_RATIO = 0.10

_SMAPS = "/proc/self/smaps_rollup"
_STATUS = "/proc/self/status"


def _memory_kb() -> Dict[str, int]:
    """Resident/anonymous memory of this process, in KiB.

    ``anonymous_kb`` (heap + anonymous mappings) is the per-worker cost:
    file-backed pages — the mmap'd snapshot — are shared across workers
    through the page cache and evictable, anonymous pages are not.
    Falls back to VmRSS-only on kernels without ``smaps_rollup``.
    """
    fields = {"Rss:": 0, "Anonymous:": 0, "Private_Dirty:": 0}
    try:
        with open(_SMAPS, "r", encoding="ascii") as handle:
            for line in handle:
                for key in fields:
                    if line.startswith(key):
                        fields[key] = int(line.split()[1])
    except OSError:
        try:
            with open(_STATUS, "r", encoding="ascii") as handle:
                for line in handle:
                    if line.startswith("VmRSS:"):
                        fields["Rss:"] = int(line.split()[1])
                        fields["Anonymous:"] = fields["Rss:"]
        except OSError:
            pass
    return {
        "rss_kb": fields["Rss:"],
        "anonymous_kb": fields["Anonymous:"],
        "private_dirty_kb": fields["Private_Dirty:"],
    }


class _NullFactory:
    """Builds nothing: measures the bare-interpreter memory floor."""

    def __call__(self):
        return None


def _worker_probe(factory, text: Optional[str], conn) -> None:
    """Runs in a spawned process: attach, serve one request, report."""
    from repro.ner.recognizer import NamedEntityRecognizer
    from repro.text.tokenizer import tokenize
    from repro.types import Document

    start = time.perf_counter()
    pipeline = factory()
    attach_s = time.perf_counter() - start
    first_request_s = 0.0
    assignments = []
    if pipeline is not None and text:
        start = time.perf_counter()
        recognizer = NamedEntityRecognizer(pipeline.kb.dictionary)
        document = recognizer.recognize(
            Document(doc_id="bench", tokens=tuple(tokenize(text)))
        )
        result = pipeline.disambiguate(document)
        first_request_s = time.perf_counter() - start
        assignments = [
            (a.mention.surface, a.entity) for a in result.assignments
        ]
    payload = {
        "attach_s": attach_s,
        "first_request_s": first_request_s,
        "assignments": assignments,
    }
    payload.update(_memory_kb())
    conn.send(payload)
    conn.close()


def _spawn_probe(factory, text: Optional[str]) -> Dict[str, object]:
    """One worker measurement in a fresh spawned process."""
    ctx = multiprocessing.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_worker_probe, args=(factory, text, child_conn)
    )
    process.start()
    child_conn.close()
    payload = parent_conn.recv()
    process.join()
    return payload


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def run_benchmark(
    entities: int, workers: int, keep_dir: Optional[str] = None
) -> Dict[str, object]:
    """Build the stress KB + snapshot and probe both worker kinds."""
    from repro.cli import _PipelineFactory
    from repro.datagen.stress import StressConfig, generate_stress_kb
    from repro.kb.io import kb_fingerprint, save_knowledge_base
    from repro.kb.snapshot import (
        SnapshotPipelineFactory,
        build_snapshot,
        load_snapshot,
    )

    record: Dict[str, object] = {"entities": entities, "workers": workers}
    with tempfile.TemporaryDirectory(dir=keep_dir) as workdir:
        start = time.perf_counter()
        kb = generate_stress_kb(StressConfig(entities=entities))
        record["generate_s"] = time.perf_counter() - start

        kb_dir = os.path.join(workdir, "kb")
        start = time.perf_counter()
        save_knowledge_base(kb, kb_dir)
        record["save_tsv_s"] = time.perf_counter() - start

        snap_path = os.path.join(workdir, "kb.snap")
        start = time.perf_counter()
        build_snapshot(
            kb, snap_path, source_fingerprint=kb_fingerprint(kb_dir)
        )
        record["snapshot_build_s"] = time.perf_counter() - start
        record["snapshot_bytes"] = os.path.getsize(snap_path)

        start = time.perf_counter()
        snapshot = load_snapshot(snap_path)
        record["snapshot_load_verify_s"] = time.perf_counter() - start

        # A two-mention request over mid-popularity entities.
        ids = sorted(kb.entity_ids())
        names = [
            kb.entity(ids[len(ids) // 3]).canonical_name,
            kb.entity(ids[len(ids) // 2]).canonical_name,
        ]
        text = f"{names[0]} met {names[1]}"
        snapshot.close()
        del kb  # the probes must not inherit the parent's KB memory

        floor = _spawn_probe(_NullFactory(), None)
        record["interpreter_floor"] = floor

        kinds = {
            "baseline_fork_pickle": _PipelineFactory(kb_dir, "full"),
            "snapshot_mmap": SnapshotPipelineFactory(snap_path),
        }
        for kind, factory in kinds.items():
            probes = [_spawn_probe(factory, text) for _ in range(workers)]
            answers = {tuple(p["assignments"]) for p in probes}
            record[kind] = {
                "attach_s": _mean([p["attach_s"] for p in probes]),
                "first_request_s": _mean(
                    [p["first_request_s"] for p in probes]
                ),
                "extra_anonymous_kb": _mean(
                    [
                        p["anonymous_kb"] - floor["anonymous_kb"]
                        for p in probes
                    ]
                ),
                "rss_kb": _mean([p["rss_kb"] for p in probes]),
                "consistent_answers": len(answers) == 1,
                "assignments": probes[0]["assignments"],
            }

    baseline = record["baseline_fork_pickle"]
    snap = record["snapshot_mmap"]
    record["attach_speedup"] = (
        baseline["attach_s"] / snap["attach_s"]
        if snap["attach_s"] > 0
        else float("inf")
    )
    record["memory_ratio"] = (
        snap["extra_anonymous_kb"] / baseline["extra_anonymous_kb"]
        if baseline["extra_anonymous_kb"] > 0
        else 0.0
    )
    record["answers_match"] = (
        baseline["consistent_answers"]
        and snap["consistent_answers"]
        and baseline["assignments"] == snap["assignments"]
    )
    return record


def check_gates(record: Dict[str, object]) -> List[str]:
    """The snapshot-smoke CI gates; empty list = all pass."""
    failures: List[str] = []
    if record["attach_speedup"] < CHECK_ATTACH_SPEEDUP:
        failures.append(
            f"snapshot attach is only {record['attach_speedup']:.1f}x "
            f"faster than fork/pickle (need >= {CHECK_ATTACH_SPEEDUP}x)"
        )
    if record["memory_ratio"] > CHECK_MEMORY_RATIO:
        failures.append(
            f"per-extra-worker anonymous memory is "
            f"{100 * record['memory_ratio']:.1f}% of baseline "
            f"(need <= {100 * CHECK_MEMORY_RATIO:.0f}%)"
        )
    if not record["answers_match"]:
        failures.append(
            "snapshot workers answered differently from fork/pickle "
            "workers on the probe request"
        )
    return failures


def _render(record: Dict[str, object]) -> str:
    from benchmarks.common import render_table

    rows = []
    for kind in ("baseline_fork_pickle", "snapshot_mmap"):
        data = record[kind]
        rows.append(
            [
                kind,
                f"{1000 * data['attach_s']:.1f}",
                f"{1000 * data['first_request_s']:.1f}",
                f"{data['extra_anonymous_kb'] / 1024:.1f}",
                f"{data['rss_kb'] / 1024:.1f}",
            ]
        )
    table = render_table(
        [
            "worker kind",
            "attach ms",
            "1st req ms",
            "extra anon MiB",
            "rss MiB",
        ],
        rows,
    )
    summary = (
        f"\n{record['entities']} entities, {record['workers']} workers "
        f"per kind; snapshot {record['snapshot_bytes'] / 1048576:.1f} MiB "
        f"(build {record['snapshot_build_s']:.1f}s, load+verify "
        f"{1000 * record['snapshot_load_verify_s']:.1f}ms)\n"
        f"attach speedup {record['attach_speedup']:.1f}x, "
        f"memory ratio {100 * record['memory_ratio']:.1f}%, "
        f"answers match: {record['answers_match']}"
    )
    return table + summary


def test_snapshot_smoke():
    """Pytest smoke: tiny stress world, shape checks only.

    Wall-clock gates run in the scripted ``--check`` mode at full scale;
    here only the structural claims are asserted — workers of both kinds
    answer identically and the snapshot worker is no heavier.
    """
    from benchmarks.conftest import report

    record = run_benchmark(entities=2_000, workers=1)
    report("Snapshot scale-out - 2k-entity smoke", _render(record))
    assert record["answers_match"]
    assert record["snapshot_mmap"]["attach_s"] > 0
    snap_kb = record["snapshot_mmap"]["extra_anonymous_kb"]
    base_kb = record["baseline_fork_pickle"]["extra_anonymous_kb"]
    assert snap_kb <= base_kb


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--entities", type=int, default=100_000,
        help="stress-world size (the committed record uses 100k)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="spawned worker probes per kind (sequential)",
    )
    parser.add_argument(
        "--out", default="BENCH_snapshot.json", help="JSON output path"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless snapshot attach is >= 10x faster than "
        "fork/pickle with per-extra-worker anonymous memory <= 10% of "
        "baseline and identical answers",
    )
    args = parser.parse_args(argv)

    record = run_benchmark(args.entities, args.workers)
    print(_render(record))

    record = {
        "benchmark": "snapshot_scale_out",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "check_attach_speedup": CHECK_ATTACH_SPEEDUP,
        "check_memory_ratio": CHECK_MEMORY_RATIO,
        **record,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.out}")

    if args.check:
        failures = check_gates(record)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
