"""Table 5.4 — NED-EE as a preprocessing step for full NED.

Each EE-identification method runs first; mentions it labels as emerging
are fixed to out-of-KB, and the remaining mentions are disambiguated by
the plain full-AIDA configuration (the paper's best non-EE variant without
thresholding).  Reports overall accuracy plus the (unchanged) EE precision
of the preprocessing method.

Expected shape (paper): pre-identifying emerging entities with the
explicit EE model improves the overall NED accuracy over the thresholding
treatments, and AIDA-EEsim achieves the best quality.
"""

from __future__ import annotations

from typing import Dict

from benchmarks.common import bench_kb, news_stream, pct, render_table
from benchmarks.conftest import report
from benchmarks.ee_common import (
    aida_coh_thresholded,
    aida_sim_thresholded,
    ee_pipeline,
    evaluate_pipeline,
    filtered_gold,
    iw_thresholded,
)
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.eval.ee_measures import evaluate_emerging
from repro.types import OUT_OF_KB


class _PreprocessedNed:
    """EE pre-pass followed by plain AIDA on the non-EE mentions."""

    def __init__(self, ee_method, ned):
        self._ee = ee_method
        self._ned = ned

    def disambiguate(self, document):
        first = self._ee.disambiguate(document)
        keep = [
            index
            for index, assignment in enumerate(first.assignments)
            if not assignment.is_out_of_kb
        ]
        second = self._ned.disambiguate(document, restrict_to=keep)
        merged = second.as_map()
        for assignment in first.assignments:
            if assignment.is_out_of_kb:
                merged[assignment.mention] = OUT_OF_KB
        # Rebuild as a result-like mapping via the first result's order.
        from repro.types import DisambiguationResult, MentionAssignment

        assignments = [
            MentionAssignment(
                mention=a.mention,
                entity=merged.get(a.mention, OUT_OF_KB),
            )
            for a in first.assignments
        ]
        return DisambiguationResult(
            doc_id=document.doc_id, assignments=assignments
        )


def _run():
    kb = bench_kb()
    test_docs = news_stream().test_docs()
    ned = AidaDisambiguator(kb, config=AidaConfig.full())
    methods = [
        ("AIDAsim (threshold)", aida_sim_thresholded()),
        ("AIDAcoh (threshold)", aida_coh_thresholded()),
        ("IW (threshold)", iw_thresholded()),
        ("AIDA-EEsim", ee_pipeline(use_coherence=False)),
        ("AIDA-EEcoh", ee_pipeline(use_coherence=True)),
    ]
    results: Dict[str, Dict[str, float]] = {}
    for name, ee_method in methods:
        combined = _PreprocessedNed(ee_method, ned)
        outcome = evaluate_pipeline(combined, test_docs)
        results[name] = {
            "micro": outcome.micro_accuracy,
            "macro": outcome.macro_accuracy,
            "ee_prec": outcome.precision,
        }
    return results


def test_table_5_4(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [name, pct(r["micro"]), pct(r["macro"]), pct(r["ee_prec"])]
        for name, r in results.items()
    ]
    report(
        "Table 5.4 - NED-EE as preprocessing + full NED",
        render_table(
            ["method", "Micro Acc.", "Macro Acc.", "EE Prec."], rows
        ),
    )
    # Shape: the explicit-EE preprocessing gives the best overall NED.
    ee_micro = results["AIDA-EEsim"]["micro"]
    for name in (
        "AIDAsim (threshold)",
        "AIDAcoh (threshold)",
        "IW (threshold)",
    ):
        assert ee_micro >= results[name]["micro"] - 0.01
    assert results["AIDA-EEsim"]["ee_prec"] >= 0.8
