"""Table 4.3 / Figure 4.2 — NED accuracy with each relatedness measure.

AIDA is run with each coherence measure (KWCS, KPCS, MW, KORE and the two
LSH accelerations) on the three corpora of Section 4.6.1:

* CoNLL testb (news-wire),
* WP (music-domain article sentences, family names only, prior disabled),
* KORE50 (short, mention-dense, long-tail stress sentences).

Reports micro/macro and link-averaged accuracy.

Expected shape (paper): measures are close on CoNLL; KORE and KORE_LSH-G
lead on KORE50 (long-tail entities), where the link-based MW measure has
too little signal; KORE_LSH-F trades quality for speed.
"""

from __future__ import annotations

from typing import Dict

from benchmarks.common import (
    RELATEDNESS_NAMES,
    bench_kb,
    conll_corpus,
    kore50_corpus,
    make_relatedness,
    pct,
    render_table,
    wp_corpus,
)
from benchmarks.conftest import report
from repro.core.config import AidaConfig, PriorMode
from repro.core.pipeline import AidaDisambiguator
from repro.eval.ranking import link_averaged_accuracy
from repro.eval.runner import run_disambiguator


def _wp_config() -> AidaConfig:
    """WP protocol: popularity prior disabled for all methods."""
    return AidaConfig(
        prior_mode=PriorMode.NEVER,
        use_coherence=True,
        use_coherence_test=True,
    )


def _run():
    kb = bench_kb()
    corpora = [
        ("CoNLL", conll_corpus().testb, AidaConfig.full()),
        ("WP", wp_corpus(), _wp_config()),
        ("KORE50", kore50_corpus(), AidaConfig.full()),
    ]
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for corpus_name, docs, config in corpora:
        results[corpus_name] = {}
        for measure_name in RELATEDNESS_NAMES:
            pipeline = AidaDisambiguator(
                kb, relatedness=make_relatedness(measure_name), config=config
            )
            run = run_disambiguator(pipeline, docs, kb=kb)
            results[corpus_name][measure_name] = {
                "micro": run.micro,
                "macro": run.macro,
                "link_avg": link_averaged_accuracy(run.link_records),
            }
    return results


def test_table_4_3(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    for corpus_name, measures in results.items():
        rows = [
            [
                name,
                pct(values["micro"]),
                pct(values["macro"]),
                pct(values["link_avg"]),
            ]
            for name, values in measures.items()
        ]
        report(
            f"Table 4.3 - disambiguation accuracy on {corpus_name}",
            render_table(
                ["measure", "Micro Avg.", "Macro Avg.", "Link Avg."], rows
            ),
        )
    kore50 = results["KORE50"]
    # Shape: keyphrase relatedness at least matches MW on the long-tail
    # stress corpus, and the recall-geared LSH stays close to exact KORE.
    assert kore50["KORE"]["micro"] >= kore50["MW"]["micro"] - 0.005
    assert (
        kore50["KORE_LSH-G"]["micro"] >= kore50["KORE_LSH-F"]["micro"] - 0.01
    )
    for corpus_name in ("CoNLL", "WP"):
        values = [m["micro"] for m in results[corpus_name].values()]
        assert max(values) - min(values) < 0.2  # measures are comparable
