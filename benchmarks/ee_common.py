"""Shared infrastructure for the Chapter 5 (emerging entity) benchmarks.

Implements the evaluation protocol of Section 5.7.2: mentions that are not
in the dictionary are removed (trivially out-of-KB), as are mentions
without sufficient recent news support (the paper's "at least 10 distinct
articles over the last 3 days", scaled to the synthetic stream's density);
thresholds and the EE balance factor γ are tuned on the annotated training
day and evaluated on the test day.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from benchmarks.common import bench_kb, news_stream
from repro.baselines.threshold_ee import ThresholdEeWrapper, tune_threshold
from repro.baselines.wikifier import WikifierDisambiguator
from repro.confidence.combined import ConfAssessor
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.emerging.discovery import EeConfig, EmergingEntityPipeline
from repro.emerging.stream import docs_in_window, name_document_support
from repro.eval.ee_measures import EeResult, evaluate_emerging
from repro.types import AnnotatedDocument, Document, EntityId, Mention

#: Support filter: a mention must occur in at least this many distinct
#: documents over the preceding 3 days (scaled from the paper's 10 to the
#: synthetic stream's ~10 docs/day density).
MIN_SUPPORT = 4
SUPPORT_WINDOW_DAYS = 3

_cache: Dict[str, object] = {}


def stream_documents() -> List[Document]:
    if "docs" not in _cache:
        _cache["docs"] = [
            d.document for d in news_stream().documents
        ]
    return _cache["docs"]


def filtered_gold(
    annotated: AnnotatedDocument,
) -> Dict[Mention, EntityId]:
    """The evaluation mentions of one document under the protocol."""
    kb = bench_kb()
    docs = stream_documents()
    day = annotated.document.timestamp
    window = docs_in_window(
        docs, day - SUPPORT_WINDOW_DAYS, day - 1
    )
    gold: Dict[Mention, EntityId] = {}
    for annotation in annotated.gold:
        if not kb.candidates(annotation.mention.surface):
            continue  # not in dictionary: trivially out-of-KB
        support = name_document_support(window, annotation.mention.surface)
        if support < MIN_SUPPORT:
            continue
        gold[annotation.mention] = annotation.entity
    return gold


def evaluate_pipeline(
    pipeline, documents: Sequence[AnnotatedDocument]
) -> EeResult:
    predictions = [
        pipeline.disambiguate(doc.document).as_map() for doc in documents
    ]
    golds = [(doc.doc_id, filtered_gold(doc)) for doc in documents]
    return evaluate_emerging(golds, predictions)


# ----------------------------------------------------------------------
# Competitor pipelines (thresholding)
# ----------------------------------------------------------------------
def aida_sim_thresholded() -> ThresholdEeWrapper:
    if "aida_sim_th" not in _cache:
        kb = bench_kb()
        base = AidaDisambiguator(kb, config=AidaConfig.robust_prior_sim())
        threshold = tune_threshold(base, news_stream().train_docs())
        _cache["aida_sim_th"] = ThresholdEeWrapper(base, threshold)
    return _cache["aida_sim_th"]


def aida_coh_thresholded() -> ThresholdEeWrapper:
    """Full AIDA ranked by CONF confidence, thresholded."""
    if "aida_coh_th" not in _cache:
        kb = bench_kb()
        base = AidaDisambiguator(kb, config=AidaConfig.full())
        assessor = ConfAssessor(base, rounds=6, seed=51)

        class ConfPipe:
            def disambiguate(self, document, **kwargs):
                return assessor.disambiguate_with_confidence(document)

        pipe = ConfPipe()
        threshold = tune_threshold(
            pipe,
            news_stream().train_docs(),
            score_fn=lambda a: a.confidence or 0.0,
        )
        _cache["aida_coh_th"] = ThresholdEeWrapper(
            pipe, threshold, score_fn=lambda a: a.confidence or 0.0
        )
    return _cache["aida_coh_th"]


def iw_thresholded() -> ThresholdEeWrapper:
    if "iw_th" not in _cache:
        kb = bench_kb()
        iw = WikifierDisambiguator(kb)
        threshold = tune_threshold(
            iw, news_stream().train_docs(), score_fn=iw.linker_score
        )
        _cache["iw_th"] = ThresholdEeWrapper(
            iw, threshold, score_fn=iw.linker_score
        )
    return _cache["iw_th"]


# ----------------------------------------------------------------------
# NED-EE pipelines with the γ factor tuned on the training day
# ----------------------------------------------------------------------
GAMMA_GRID = (0.1, 0.2, 0.3, 0.5, 0.7)


def _shared_enrichment(enrich: bool) -> Dict[int, object]:
    """Enriched keyphrase stores are γ/coherence-independent: build them
    once and share across all pipelines of the grid."""
    key = f"enrichment_{enrich}"
    if key not in _cache:
        _cache[key] = {}
    return _cache[key]


def _make_pipeline(
    use_coherence: bool, enrich: bool, gamma: float
) -> EmergingEntityPipeline:
    return EmergingEntityPipeline(
        bench_kb(),
        stream_documents(),
        EeConfig(
            enrich_existing=enrich,
            use_coherence=use_coherence,
            ee_edge_factor=gamma,
            confidence_rounds=4,
        ),
        enriched_stores=_shared_enrichment(enrich),
    )


def _tune_gamma(use_coherence: bool, enrich: bool) -> float:
    stream = news_stream()
    best_gamma = GAMMA_GRID[0]
    best_f1 = -1.0
    for gamma in GAMMA_GRID:
        pipeline = _make_pipeline(use_coherence, enrich, gamma)
        result = evaluate_pipeline(pipeline, stream.train_docs())
        if result.f1 > best_f1:
            best_f1 = result.f1
            best_gamma = gamma
    return best_gamma


def ee_pipeline(
    use_coherence: bool, enrich: bool = True
) -> EmergingEntityPipeline:
    key = f"ee_{use_coherence}_{enrich}"
    if key not in _cache:
        gamma = _tune_gamma(use_coherence, enrich)
        _cache[key] = _make_pipeline(use_coherence, enrich, gamma)
    return _cache[key]
