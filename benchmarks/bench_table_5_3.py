"""Table 5.3 — emerging-entity identification quality.

The thresholding competitors (AIDAsim by normalized score, AIDAcoh by CONF
confidence, IW by linker score — thresholds tuned on the training day)
against the explicit-EE methods (EEsim / EEcoh with the γ balance tuned on
the training day, including harvested keyphrases for existing entities).
Evaluated on the annotated test day with the support-filtered mention set.

Expected shape (paper): the EE methods dominate on EE precision (the
paper's EEsim reaches ~98%) and F1, trading away some recall; the
competitors over-flag EEs (higher recall, far lower precision).
"""

from __future__ import annotations

from benchmarks.common import news_stream, pct, render_table
from benchmarks.conftest import report
from benchmarks.ee_common import (
    aida_coh_thresholded,
    aida_sim_thresholded,
    ee_pipeline,
    evaluate_pipeline,
    iw_thresholded,
)


def _run():
    test_docs = news_stream().test_docs()
    methods = [
        ("AIDAsim (threshold)", aida_sim_thresholded()),
        ("AIDAcoh (threshold)", aida_coh_thresholded()),
        ("IW (threshold)", iw_thresholded()),
        ("EEsim", ee_pipeline(use_coherence=False)),
        ("EEcoh", ee_pipeline(use_coherence=True)),
    ]
    results = {}
    for name, pipeline in methods:
        results[name] = evaluate_pipeline(pipeline, test_docs)
    return results


def test_table_5_3(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                pct(r.micro_accuracy),
                pct(r.macro_accuracy),
                pct(r.precision),
                pct(r.recall),
                pct(r.f1),
            ]
        )
    report(
        "Table 5.3 - emerging entity identification",
        render_table(
            ["method", "Micro Acc.", "Macro Acc.", "EE Prec.", "EE Rec.",
             "EE F1"],
            rows,
        ),
    )
    ee_sim = results["EEsim"]
    best_threshold_prec = max(
        results[name].precision
        for name in (
            "AIDAsim (threshold)",
            "AIDAcoh (threshold)",
            "IW (threshold)",
        )
    )
    # Shape: explicit EE modeling yields far higher EE precision than any
    # thresholding competitor, with usable recall.
    assert ee_sim.precision > best_threshold_prec
    assert ee_sim.precision > 0.8
    assert ee_sim.recall > 0.3
    assert results["EEcoh"].precision > 0.6
