"""Table 5.2 — AIDA-EE GigaWord dataset properties.

Regenerates the dataset-property rows of Table 5.2 over the two annotated
days of the synthetic news stream: documents, mentions, mentions with
emerging entities, words and mentions per article, candidates per mention.
"""

from __future__ import annotations

from benchmarks.common import bench_kb, news_stream, render_table
from benchmarks.conftest import report


def _run():
    stream = news_stream()
    kb = bench_kb()
    props = stream.properties()
    annotated = stream.train_docs() + stream.test_docs()
    candidate_total = 0
    candidate_mentions = 0
    for doc in annotated:
        for annotation in doc.gold:
            count = len(kb.candidates(annotation.mention.surface))
            if count:
                candidate_total += count
                candidate_mentions += 1
    props["entities_per_mention_avg"] = (
        candidate_total / candidate_mentions if candidate_mentions else 0.0
    )
    return props


def test_table_5_2(benchmark):
    props = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        ["documents", f"{props['documents']:.0f}"],
        ["mentions", f"{props['mentions']:.0f}"],
        [
            "mentions with emerging entities",
            f"{props['mentions_with_emerging_entities']:.0f}",
        ],
        [
            "words per article (avg.)",
            f"{props['words_per_article_avg']:.1f}",
        ],
        [
            "mentions per article (avg.)",
            f"{props['mentions_per_article_avg']:.1f}",
        ],
        [
            "entities per mention (avg.)",
            f"{props['entities_per_mention_avg']:.1f}",
        ],
    ]
    report(
        "Table 5.2 - AIDA-EE news-stream dataset properties",
        render_table(["property", "value"], rows),
    )
    assert props["documents"] > 0
    assert props["mentions_with_emerging_entities"] > 0
