"""Closed-loop serving load test: max sustainable docs/s at a p99 SLO.

Drives a real :class:`repro.serving.DisambiguationServer` on a loopback
ephemeral port with N closed-loop HTTP clients (each sends, awaits, and
immediately sends again).  Client count is grown geometrically until the
observed p99 breaches the SLO, then binary-searched to the *knee*: the
largest client count whose p99 still meets the SLO.  The report records
throughput, latency quantiles, and — the serving-specific number — the
admission rung mix at the knee: how much of the sustained throughput was
bought by shedding coherence.

Runs two ways:

* as a script writing ``BENCH_serving.json``::

      PYTHONPATH=src:. python benchmarks/bench_serving.py \
          --out BENCH_serving.json

* with ``--check``: a fast CI smoke that asserts the serving path
  sustains a modest closed-loop load within the SLO, that overload is
  answered by shedding (degraded rungs / 429s), and that no request is
  ever silently dropped.  Exits non-zero on violation.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.core.pipeline import AidaDisambiguator
from repro.datagen.documents import DocumentGenerator, DocumentSpec
from repro.datagen.wikipedia import build_world_kb
from repro.datagen.world import World, WorldConfig
from repro.serving import DisambiguationServer, ServingConfig
from repro.types import Document

WORLD_SEED = 7
KB_SEED = 101
DOC_SEED = 55
NUM_DOCS = 12
MENTIONS_PER_DOC = 5


def corpus() -> Tuple[object, List[Document]]:
    """The small deterministic world and its request documents."""
    world = World.generate(
        WorldConfig(seed=WORLD_SEED, clusters_per_domain=4)
    )
    kb, _wiki = build_world_kb(world, seed=KB_SEED)
    generator = DocumentGenerator(world, seed=DOC_SEED)
    cluster_ids = sorted(world.clusters)
    documents = [
        generator.generate(
            DocumentSpec(
                doc_id=f"bench-{index}",
                cluster_ids=[cluster_ids[index % len(cluster_ids)]],
                num_mentions=MENTIONS_PER_DOC,
            )
        ).document
        for index in range(NUM_DOCS)
    ]
    return kb, documents


def payload_bytes(document: Document) -> bytes:
    payload = {
        "doc_id": document.doc_id,
        "tokens": list(document.tokens),
        "mentions": [
            {
                "surface": mention.surface,
                "start": mention.start,
                "end": mention.end,
            }
            for mention in document.mentions
        ],
    }
    return json.dumps(payload).encode("utf-8")


async def one_request(port: int, body: bytes) -> Tuple[int, float]:
    """One closed-loop HTTP exchange; returns (status, latency_ms)."""
    started = time.perf_counter()
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        head = (
            "POST /disambiguate HTTP/1.1\r\n"
            "Host: 127.0.0.1\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass
    status = int(raw.split(b" ", 2)[1])
    return status, (time.perf_counter() - started) * 1000.0


def quantile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered)) - 1))
    return ordered[rank] if q > 0 else ordered[0]


async def run_trial(
    kb,
    documents: List[Document],
    clients: int,
    duration_s: float,
    slo_ms: float,
    max_queue: int,
) -> Dict:
    """One closed-loop trial at a fixed client count."""
    bodies = [payload_bytes(document) for document in documents]
    server = DisambiguationServer(
        AidaDisambiguator(kb),
        ServingConfig(
            port=0,
            max_queue=max_queue,
            slo_ms=slo_ms,
            batch_window_ms=2.0,
            batch_max_docs=8,
            workers=4,
        ),
        kb=kb,
    )
    await server.start()
    latencies: List[float] = []
    statuses: Dict[int, int] = {}
    deadline = time.perf_counter() + duration_s

    async def client(index: int) -> None:
        sent = index
        while time.perf_counter() < deadline:
            body = bodies[sent % len(bodies)]
            sent += clients
            try:
                status, latency_ms = await one_request(server.port, body)
            except (ConnectionError, asyncio.IncompleteReadError):
                statuses[-1] = statuses.get(-1, 0) + 1
                continue
            statuses[status] = statuses.get(status, 0) + 1
            if status == 200:
                latencies.append(latency_ms)

    try:
        await asyncio.gather(*(client(i) for i in range(clients)))
    finally:
        rung_mix = dict(server.admission.rung_mix)
        stats = server.admission.stats()
        await server.stop()
    completed = statuses.get(200, 0)
    return {
        "clients": clients,
        "duration_s": duration_s,
        "completed": completed,
        "docs_per_second": completed / duration_s,
        "p50_ms": quantile(latencies, 0.50),
        "p99_ms": quantile(latencies, 0.99),
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "rung_mix": rung_mix,
        "shed": stats["shed"],
        "rejected": stats["rejected"],
        "met_slo": bool(latencies) and quantile(latencies, 0.99) <= slo_ms,
    }


async def find_knee(
    kb,
    documents: List[Document],
    slo_ms: float,
    duration_s: float,
    max_clients: int,
    max_queue: int,
) -> Tuple[List[Dict], Optional[Dict]]:
    """Geometric growth to bracket the SLO breach, then binary search."""
    trials: List[Dict] = []

    async def measure(clients: int) -> Dict:
        trial = await run_trial(
            kb, documents, clients, duration_s, slo_ms, max_queue
        )
        trials.append(trial)
        print(
            f"  clients={clients:3d}  "
            f"{trial['docs_per_second']:8.1f} docs/s  "
            f"p99={trial['p99_ms']:7.1f} ms  "
            f"rungs={trial['rung_mix']}",
            file=sys.stderr,
        )
        return trial

    good: Optional[Dict] = None
    clients = 1
    while clients <= max_clients:
        trial = await measure(clients)
        if not trial["met_slo"]:
            break
        good = trial
        clients *= 2
    else:
        return trials, good  # never breached within max_clients
    if good is None:
        return trials, None  # unsustainable even at 1 client
    lo, hi = good["clients"], clients  # met_slo at lo, breached at hi
    while hi - lo > 1:
        mid = (lo + hi) // 2
        trial = await measure(mid)
        if trial["met_slo"]:
            good, lo = trial, mid
        else:
            hi = mid
    return trials, good


def run_check(kb, documents: List[Document], duration_s: float) -> int:
    """CI smoke gates; returns a process exit code."""
    failures: List[str] = []

    # Gate 1: a modest closed-loop load is sustained within a lenient SLO.
    steady = asyncio.run(
        run_trial(
            kb,
            documents,
            clients=2,
            duration_s=duration_s,
            slo_ms=5000.0,
            max_queue=32,
        )
    )
    if steady["completed"] < 4:
        failures.append(
            f"steady trial served only {steady['completed']} documents"
        )
    if not steady["met_slo"]:
        failures.append(
            f"steady p99 {steady['p99_ms']:.1f} ms blew a 5000 ms SLO"
        )
    if steady["statuses"].get("-1", 0) or steady["statuses"].get("500", 0):
        failures.append(f"steady trial errors: {steady['statuses']}")

    # Gate 2: overload (clients >> queue) is answered by shedding —
    # degraded rungs and/or 429s — never by dropped connections or 500s.
    overload = asyncio.run(
        run_trial(
            kb,
            documents,
            clients=16,
            duration_s=duration_s,
            slo_ms=5.0,  # unmeetable: forces the latency shed signal
            max_queue=4,
        )
    )
    answered = sum(
        count
        for status, count in overload["statuses"].items()
        if status in ("200", "429")
    )
    total = sum(overload["statuses"].values())
    if answered != total:
        failures.append(
            f"overload had non-200/429 outcomes: {overload['statuses']}"
        )
    degraded = sum(
        count
        for rung, count in overload["rung_mix"].items()
        if rung != "full"
    )
    if degraded + overload["rejected"] == 0:
        failures.append(
            "overload triggered neither rung shedding nor rejection"
        )
    for line in failures:
        print(f"CHECK FAIL: {line}", file=sys.stderr)
    if not failures:
        print(
            f"serving check ok: steady {steady['docs_per_second']:.1f} "
            f"docs/s (p99 {steady['p99_ms']:.1f} ms); overload shed "
            f"{degraded} requests by rung, rejected "
            f"{overload['rejected']}, zero drops",
            file=sys.stderr,
        )
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="JSON report path")
    parser.add_argument("--slo-ms", type=float, default=250.0)
    parser.add_argument("--duration-s", type=float, default=2.0)
    parser.add_argument("--max-clients", type=int, default=64)
    parser.add_argument("--max-queue", type=int, default=64)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fast CI smoke: sustain + shed gates, no knee search",
    )
    args = parser.parse_args(argv)

    kb, documents = corpus()
    if args.check:
        return run_check(kb, documents, min(args.duration_s, 1.0))

    print(
        f"binary-searching the knee at p99 <= {args.slo_ms} ms",
        file=sys.stderr,
    )
    trials, knee = asyncio.run(
        find_knee(
            kb,
            documents,
            slo_ms=args.slo_ms,
            duration_s=args.duration_s,
            max_clients=args.max_clients,
            max_queue=args.max_queue,
        )
    )
    report = {
        "benchmark": "serving_closed_loop",
        "python": platform.python_version(),
        "slo_ms": args.slo_ms,
        "duration_s": args.duration_s,
        "max_clients": args.max_clients,
        "max_queue": args.max_queue,
        "corpus_documents": len(documents),
        "trials": trials,
        "knee": knee,
    }
    if knee is not None:
        print(
            f"knee: {knee['clients']} clients, "
            f"{knee['docs_per_second']:.1f} docs/s, "
            f"p99 {knee['p99_ms']:.1f} ms, rung mix {knee['rung_mix']}",
            file=sys.stderr,
        )
    else:
        print("no sustainable operating point found", file=sys.stderr)
    text = json.dumps(report, indent=2, sort_keys=False)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
