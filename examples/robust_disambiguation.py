"""AIDA's robustness machinery on hard cases (Chapter 3).

Shows, on generated stress documents, how the three feature classes
interact:

* the popularity prior alone picks the prominent-but-wrong entity,
* keyphrase similarity fixes mentions with own context,
* graph coherence resolves mentions with *no* own context through the
  other mentions (the paper's "Kashmir written by Page" case),
* metonymy (a team referred to by its city's name) is resolved by
  coherence with the other sports entities.

Run:  python examples/robust_disambiguation.py
"""

from __future__ import annotations

from repro import (
    AidaConfig,
    AidaDisambiguator,
    DocumentGenerator,
    DocumentSpec,
    World,
    WorldConfig,
    build_world_kb,
)


def evaluate(pipeline, annotated) -> float:
    result = pipeline.disambiguate(annotated.document)
    gold = annotated.gold_map()
    predicted = result.as_map()
    hits = sum(
        1
        for mention, entity in gold.items()
        if predicted.get(mention) == entity
    )
    return hits / len(gold)


def main() -> None:
    world = World.generate(
        WorldConfig(
            seed=7,
            clusters_per_domain=6,
            family_sharing=0.7,
            topic_vocabulary_size=30,
        )
    )
    kb, _wiki = build_world_kb(world, seed=101)
    generator = DocumentGenerator(world, seed=99)

    variants = [
        ("prior only", AidaConfig.prior_only()),
        ("similarity only (sim-k)", AidaConfig.sim_only()),
        ("robust prior + sim", AidaConfig.robust_prior_sim()),
        ("full AIDA (r-prior sim-k r-coh)", AidaConfig.full()),
    ]

    # Stress documents: every mention ambiguous, only one mention per
    # document gets its own context — the rest must be resolved jointly.
    documents = [
        generator.generate(
            DocumentSpec(
                doc_id=f"stress-{index}",
                cluster_ids=[index % len(world.clusters)],
                num_mentions=4,
                ambiguous_prob=1.0,
                context_prob=1.0,
                context_limit=1,
                distractor_prob=0.0,
            )
        )
        for index in range(30)
    ]

    print("accuracy on 30 coherence-stress documents:")
    for name, config in variants:
        pipeline = AidaDisambiguator(kb, config=config)
        accuracy = sum(evaluate(pipeline, d) for d in documents) / len(
            documents
        )
        print(f"  {name:34s} {accuracy:.3f}")

    # Peek inside one document with the full configuration.
    sample = documents[0]
    aida = AidaDisambiguator(kb, config=AidaConfig.full())
    result = aida.disambiguate(sample.document)
    print(f"\nexample document: {sample.document.text[:200]} ...")
    for assignment in result.assignments:
        scores = sorted(
            assignment.candidate_scores.items(),
            key=lambda kv: -kv[1],
        )[:3]
        pretty = ", ".join(f"{eid}:{score:.2f}" for eid, score in scores)
        print(
            f"  {assignment.mention.surface!r:24s} -> "
            f"{assignment.entity}  (top candidates: {pretty})"
        )


if __name__ == "__main__":
    main()
