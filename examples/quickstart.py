"""Quickstart: build a knowledge base and disambiguate a document.

Generates the synthetic world and its encyclopedia, constructs the
knowledge base, runs the full AIDA configuration on a generated news
document, and prints the mention-to-entity mapping next to the gold
standard.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AidaConfig,
    AidaDisambiguator,
    DocumentGenerator,
    DocumentSpec,
    OUT_OF_KB,
    World,
    WorldConfig,
    build_world_kb,
)


def main() -> None:
    # 1. A seeded synthetic world stands in for Wikipedia/YAGO.
    world = World.generate(WorldConfig(seed=7, clusters_per_domain=4))
    kb, _wikipedia = build_world_kb(world, seed=101)
    print(f"knowledge base: {kb.describe()}")

    # 2. Generate a topical news document with gold annotations.
    generator = DocumentGenerator(world, seed=42)
    annotated = generator.generate(
        DocumentSpec(doc_id="quickstart", cluster_ids=[0], num_mentions=6)
    )
    document = annotated.document
    print(f"\ndocument ({len(document.tokens)} tokens):")
    print("  " + document.text[:240] + " ...")

    # 3. Disambiguate with the full AIDA configuration: robust prior use,
    #    keyphrase cover-matching similarity, graph coherence.
    aida = AidaDisambiguator(kb, config=AidaConfig.full())
    result = aida.disambiguate(document)

    # 4. Compare against the gold standard.
    gold = annotated.gold_map()
    print("\nmention -> predicted entity (gold)")
    correct = 0
    for assignment in result.assignments:
        gold_entity = gold[assignment.mention]
        marker = "OK " if assignment.entity == gold_entity else "ERR"
        if assignment.entity == gold_entity:
            correct += 1
        predicted = (
            "<out of KB>" if assignment.is_out_of_kb else assignment.entity
        )
        gold_label = "<out of KB>" if gold_entity == OUT_OF_KB else gold_entity
        print(
            f"  [{marker}] {assignment.mention.surface!r:28s} "
            f"-> {predicted}  (gold: {gold_label})"
        )
    print(f"\naccuracy: {correct}/{len(result.assignments)}")


if __name__ == "__main__":
    main()
