"""Discovering emerging entities in a news stream (Chapter 5).

Generates a timestamped news stream in which out-of-KB entities emerge
under names that already have knowledge-base candidates (the
hurricane-"Sandy" pattern), then runs the NED-EE pipeline: for every
mention an explicit placeholder entity is built by harvesting recent news
and subtracting the in-KB candidates' models (Algorithm 2), and the
disambiguation decides between existing entities and the placeholder.

Run:  python examples/emerging_entities.py
"""

from __future__ import annotations

from repro import (
    EeConfig,
    EmergingEntityPipeline,
    World,
    WorldConfig,
    build_world_kb,
)
from repro.datagen.gigaword import GigawordConfig, generate_gigaword
from repro.eval.ee_measures import evaluate_emerging


def main() -> None:
    world = World.generate(WorldConfig(seed=7, clusters_per_domain=4))
    kb, _wiki = build_world_kb(world, seed=101)

    # The stream spawns emerging entities into the world AFTER the KB was
    # built, so they share names with in-KB entities but are unknown to it.
    stream = generate_gigaword(
        world,
        GigawordConfig(num_days=40, docs_per_day=6, emerging_count=6),
    )
    print("emerging entities in the stream:")
    for entity_id in stream.emerging_ids:
        entity = world.entity(entity_id)
        donors = kb.candidates(entity.names.canonical)
        print(
            f"  {entity.names.canonical!r} (day {entity.emerging_day}) — "
            f"name collides with {len(donors)} in-KB candidates"
        )

    pipeline = EmergingEntityPipeline(
        kb,
        [d.document for d in stream.documents],
        EeConfig(enrich_existing=False, ee_edge_factor=0.3),
    )

    test_docs = stream.test_docs()[:10]
    predictions = [
        pipeline.disambiguate(doc.document).as_map() for doc in test_docs
    ]
    golds = [(doc.doc_id, doc.gold_map()) for doc in test_docs]
    result = evaluate_emerging(golds, predictions)
    print(
        f"\nEE discovery on {len(test_docs)} test documents: "
        f"precision={result.precision:.3f} recall={result.recall:.3f} "
        f"F1={result.f1:.3f}"
    )

    # Show one document's decisions.
    sample = test_docs[0]
    mapping = predictions[0]
    print(f"\nsample document (day {sample.document.timestamp}):")
    for annotation in sample.gold:
        predicted = mapping.get(annotation.mention)
        gold = annotation.entity
        print(
            f"  {annotation.mention.surface!r:24s} "
            f"pred={'EE' if predicted == '--OOE--' else predicted}  "
            f"gold={'EE' if annotation.is_out_of_kb else gold}"
        )

    # Peek at a harvested placeholder model.
    name = world.entity(stream.emerging_ids[0]).names.canonical
    model = pipeline.ee_model_for(
        name,
        stream.config.test_day,
        pipeline.enriched_store_for(stream.config.test_day),
    )
    print(f"\nplaceholder model for {name!r}: top phrases")
    for phrase, count in model.top_phrases(5):
        print(f"  {' '.join(phrase)!r}: {count}")


if __name__ == "__main__":
    main()
