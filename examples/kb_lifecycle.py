"""The knowledge-base maintenance life-cycle (Figure 5.2).

End to end: emerging entities are discovered in the news stream (NED-EE),
their mentions are grouped into per-entity clusters, mature groups are
registered as provisional knowledge-base entries with their harvested
keyphrase models — and a later document links straight to the new entry.

Run:  python examples/kb_lifecycle.py
"""

from __future__ import annotations

from repro import (
    AidaConfig,
    AidaDisambiguator,
    EeConfig,
    EmergingEntityPipeline,
    World,
    WorldConfig,
    build_world_kb,
)
from repro.datagen.gigaword import GigawordConfig, generate_gigaword
from repro.emerging.registration import (
    EmergingEntityGrouper,
    EmergingEntityRegistrar,
)
from repro.weights.model import WeightModel


def main() -> None:
    world = World.generate(WorldConfig(seed=7, clusters_per_domain=4))
    kb, _wiki = build_world_kb(world, seed=101)
    stream = generate_gigaword(
        world,
        GigawordConfig(num_days=40, docs_per_day=6, emerging_count=6),
    )
    documents = [d.document for d in stream.documents]

    # Step 1 — discover: NED-EE labels mentions as emerging over a few
    # late stream days.
    pipeline = EmergingEntityPipeline(
        kb, documents, EeConfig(enrich_existing=False, ee_edge_factor=0.3)
    )
    grouper = EmergingEntityGrouper()
    discovery_days = range(
        stream.config.emerging_last_day + 2, stream.config.train_day
    )
    flagged = 0
    for day in discovery_days:
        for annotated in stream.docs_on(day):
            result = pipeline.disambiguate(annotated.document)
            for assignment in result.assignments:
                if assignment.is_out_of_kb:
                    grouper.add_occurrence(
                        annotated.document, assignment.mention
                    )
                    flagged += 1
    print(f"flagged {flagged} emerging-entity mentions")

    # Step 2 — group: mentions believed to denote the same new thing.
    groups = grouper.groups(min_support=3)
    print(f"\n{len(groups)} mature groups (>=3 supporting documents):")
    for group in groups[:5]:
        top = ", ".join(
            " ".join(phrase) for phrase, _c in group.top_phrases(3)
        )
        print(
            f"  {group.name!r}: {group.support} docs — key phrases: {top}"
        )

    # Step 3 — register: provisional entities enter a staged KB view.
    registrar = EmergingEntityRegistrar(kb, min_support=3)
    staged_kb, registered = registrar.register(grouper)
    print(f"\nregistered {len(registered)} provisional entities:")
    for entity_id in registered[:5]:
        print(f"  {entity_id}")

    # Step 4 — link: a later document resolves directly to the new entry.
    if registered:
        weights = WeightModel(staged_kb.keyphrases, staged_kb.links)
        aida = AidaDisambiguator(
            staged_kb,
            config=AidaConfig.sim_only(),
            keyphrase_store=staged_kb.keyphrases,
            weight_model=weights,
        )
        test_day = stream.config.test_day
        hits = 0
        for annotated in stream.docs_on(test_day):
            result = aida.disambiguate(annotated.document)
            for assignment in result.assignments:
                if assignment.entity in set(registered):
                    hits += 1
        print(
            f"\nday-{test_day} documents link to the provisional entries "
            f"{hits} times"
        )


if __name__ == "__main__":
    main()
