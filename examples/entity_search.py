"""Searching for strings, things, and cats (Section 6.1).

Indexes an entity-annotated document collection along three dimensions —
plain words, canonical entities, and taxonomy categories — and runs mixed
queries: "documents about this specific entity", "documents mentioning any
musician", and word+category conjunctions.

Run:  python examples/entity_search.py
"""

from __future__ import annotations

from repro import (
    AidaConfig,
    AidaDisambiguator,
    DocumentGenerator,
    DocumentSpec,
    World,
    WorldConfig,
    build_world_kb,
)
from repro.apps.search.index import EntitySearchIndex
from repro.apps.search.query import Query, execute


def main() -> None:
    world = World.generate(WorldConfig(seed=7, clusters_per_domain=4))
    kb, _wiki = build_world_kb(world, seed=101)
    generator = DocumentGenerator(world, seed=5)
    aida = AidaDisambiguator(kb, config=AidaConfig.robust_prior_sim())

    # Build and annotate a small collection, then index it.
    index = EntitySearchIndex(kb)
    for number in range(24):
        annotated = generator.generate(
            DocumentSpec(
                doc_id=f"doc-{number:02d}",
                cluster_ids=[number % len(world.clusters)],
                num_mentions=5,
            )
        )
        result = aida.disambiguate(annotated.document)
        index.add_document(annotated.document, result)
    print(f"indexed {len(index)} documents")

    # Things: documents about one specific entity.
    frequencies = index.entity_frequencies()
    top_entity = max(sorted(frequencies), key=lambda e: frequencies[e])
    name = kb.entity(top_entity).canonical_name
    hits = execute(index, Query.of(entities=[top_entity]), limit=5)
    print(f"\nquery [thing: {name}] -> {len(hits)} hits")
    for hit in hits:
        print(f"  {hit.doc_id}  score={hit.score:.1f}")

    # Cats: documents mentioning any musician — matched through the
    # taxonomy even though the word "musician" never occurs in the text.
    hits = execute(index, Query.of(categories=["musician"]), limit=5)
    print(f"\nquery [cat: musician] -> {len(hits)} hits")
    for hit in hits:
        print(f"  {hit.doc_id}  score={hit.score:.1f}")

    # Strings + cats combined.
    some_doc = index.document(hits[0].doc_id) if hits else None
    if some_doc is not None:
        word = next(
            tok.lower() for tok in some_doc.tokens if tok.islower()
        )
        combined = execute(
            index,
            Query.of(words=[word], categories=["musician"]),
            limit=5,
        )
        print(
            f"\nquery [string: {word!r} AND cat: musician] -> "
            f"{len(combined)} hits"
        )
        for hit in combined:
            print(f"  {hit.doc_id}  score={hit.score:.1f}")

    # Entity autocompletion.
    prefix = name[:2]
    print(f"\nautocomplete {prefix!r}:")
    for entity_id in index.autocomplete_entity(prefix, limit=5):
        print(f"  {kb.entity(entity_id).canonical_name}")


if __name__ == "__main__":
    main()
