"""Entity relatedness with KORE vs. Milne–Witten (Chapter 4).

For a popular seed entity, ranks candidate entities by four relatedness
measures and compares the rankings against the world's latent ground
truth; then demonstrates the two-stage LSH acceleration by counting the
exact pairwise computations it avoids.

Run:  python examples/entity_relatedness.py
"""

from __future__ import annotations

from repro import (
    KoreLshRelatedness,
    KoreRelatedness,
    LshSettings,
    MilneWittenRelatedness,
    World,
    WorldConfig,
    build_world_kb,
)
from repro.weights.model import WeightModel


def main() -> None:
    world = World.generate(WorldConfig(seed=7, clusters_per_domain=6))
    kb, _wiki = build_world_kb(world, seed=101)
    weights = WeightModel(kb.keyphrases, kb.links)

    # Seed: the most popular music entity; candidates: cluster co-members
    # plus remote entities.
    music = [
        eid
        for eid in world.in_kb_ids()
        if world.entity(eid).domain == "music"
    ]
    seed = max(music, key=lambda eid: world.entity(eid).popularity)
    cluster = world.cluster_of(seed)
    in_kb = set(world.in_kb_ids())
    close = [m for m in cluster.members if m != seed and m in in_kb][:5]
    far = [
        eid
        for eid in world.in_kb_ids()
        if world.entity(eid).domain != "music"
    ][:5]
    candidates = close + far

    seed_name = world.entity(seed).names.canonical
    print(f"seed entity: {seed_name} ({seed})")
    print(f"candidates: {len(close)} cluster co-members + {len(far)} remote")

    mw = MilneWittenRelatedness(kb.links, kb.entity_count)
    kore = KoreRelatedness(kb.keyphrases, weights)
    print("\nrelatedness to the seed (MW vs KORE vs latent truth):")
    for candidate in candidates:
        name = world.entity(candidate).names.canonical
        latent = world.latent_relatedness(seed, candidate)
        print(
            f"  {name:28s} MW={mw.relatedness(seed, candidate):.3f}  "
            f"KORE={kore.relatedness(seed, candidate):.3f}  "
            f"latent={latent:.1f}"
        )

    # LSH acceleration: how many exact computations does pre-clustering
    # avoid over a larger entity pool?
    pool = world.in_kb_ids()[:120]
    exact = KoreRelatedness(kb.keyphrases, weights)
    for settings, label in (
        (LshSettings.recall_geared(), "KORE_LSH-G"),
        (LshSettings.fast(), "KORE_LSH-F"),
    ):
        inner = KoreRelatedness(kb.keyphrases, weights)
        lsh = KoreLshRelatedness(kb.keyphrases, inner, settings, name=label)
        lsh.prepare(pool)
        total_pairs = len(pool) * (len(pool) - 1) // 2
        print(
            f"\n{label}: {lsh.allowed_pair_count} of {total_pairs} pairs "
            f"survive pre-clustering "
            f"({100 * lsh.allowed_pair_count / total_pairs:.1f}%)"
        )


if __name__ == "__main__":
    main()
