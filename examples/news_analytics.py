"""Entity-level news analytics (Section 6.2).

Feeds an entity-annotated news stream into the analytics store and runs
the use cases of the paper's analytics application: entity frequency time
lines, bursting ("trending") entities, category roll-ups through the
taxonomy, and co-occurrence profiles.

Run:  python examples/news_analytics.py
"""

from __future__ import annotations

from repro import (
    AidaConfig,
    AidaDisambiguator,
    World,
    WorldConfig,
    build_world_kb,
)
from repro.apps.analytics.store import AnalyticsStore
from repro.apps.analytics.trends import TrendAnalyzer
from repro.datagen.gigaword import GigawordConfig, generate_gigaword


def main() -> None:
    world = World.generate(WorldConfig(seed=7, clusters_per_domain=4))
    kb, _wiki = build_world_kb(world, seed=101)
    stream = generate_gigaword(
        world,
        GigawordConfig(num_days=20, docs_per_day=8, emerging_count=4,
                       emerging_first_day=5, emerging_last_day=12,
                       train_day=15, test_day=18),
    )

    aida = AidaDisambiguator(kb, config=AidaConfig.robust_prior_sim())
    store = AnalyticsStore()
    for annotated in stream.documents:
        result = aida.disambiguate(annotated.document)
        store.ingest(annotated.document, result)
    print(
        f"ingested {store.document_count()} documents over "
        f"{len(store.days())} days"
    )

    analyzer = TrendAnalyzer(store, kb)

    # Most covered entities of the whole period.
    print("\ntop entities (all days):")
    for entity_id, count in analyzer.top_entities(0, 19, limit=5):
        print(f"  {kb.entity(entity_id).canonical_name:30s} {count} docs")

    # Trending on a late day: entities spiking over their trailing week.
    day = 18
    print(f"\ntrending on day {day} (burst over 7-day baseline):")
    for entity_id, score in analyzer.trending(day, baseline_days=7, limit=5):
        print(
            f"  {kb.entity(entity_id).canonical_name:30s} "
            f"burst={score:.2f}"
        )

    # Category roll-up: what kinds of entities were in the news?
    print(f"\ncategory mix on day {day}:")
    for category, count in sorted(
        analyzer.category_counts(day).items(), key=lambda kv: -kv[1]
    ):
        print(f"  {category:15s} {count}")

    # Co-occurrence profile of the most covered entity.
    top_id, _count = analyzer.top_entities(0, 19, limit=1)[0]
    print(
        f"\nentities co-occurring with "
        f"{kb.entity(top_id).canonical_name!r}:"
    )
    for name, count in analyzer.co_occurrence_profile(top_id, limit=5):
        print(f"  {name:30s} {count} shared docs")


if __name__ == "__main__":
    main()
