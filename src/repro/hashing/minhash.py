"""Min-hash sketches.

A min-hash sketch of a set is the vector of minima of the set's element ids
under k independent hash permutations.  The probability that two sketches
agree in one coordinate equals the Jaccard similarity of the underlying sets
(Broder et al.), making sketches an unbiased Jaccard estimator and the
substrate for LSH banding.

Permutations are the standard universal family ``h(x) = (a*x + b) mod p``
with a large prime p, seeded deterministically.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Sequence, Tuple

_MERSENNE_61 = (1 << 61) - 1


def element_id(element: str) -> int:
    """Stable 60-bit integer id for a string element.

    Public so callers that hash the same elements repeatedly (the LSH
    stage-one word hashing) can memoize ids — e.g. in a flat array over a
    :class:`repro.compiled.vocabulary.Vocabulary` — and sketch via
    :meth:`MinHasher.sketch_ids`.
    """
    digest = hashlib.blake2b(
        element.encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % _MERSENNE_61


#: Backwards-compatible private alias.
_element_id = element_id


def _coefficients(num_hashes: int, seed: int) -> List[Tuple[int, int]]:
    coeffs: List[Tuple[int, int]] = []
    for index in range(num_hashes):
        material = hashlib.sha256(
            f"minhash:{seed}:{index}".encode("utf-8")
        ).digest()
        a = int.from_bytes(material[:8], "big") % (_MERSENNE_61 - 1) + 1
        b = int.from_bytes(material[8:16], "big") % _MERSENNE_61
        coeffs.append((a, b))
    return coeffs


class MinHasher:
    """Computes fixed-length min-hash sketches of string sets."""

    def __init__(self, num_hashes: int, seed: int = 0):
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        self.num_hashes = num_hashes
        self.seed = seed
        self._coeffs = _coefficients(num_hashes, seed)

    def sketch(self, elements: Iterable[str]) -> Tuple[int, ...]:
        """Min-hash sketch of a set of string elements.

        An empty set yields a sketch of sentinel maxima (never collides
        with a non-empty sketch coordinate except astronomically rarely).
        """
        return self.sketch_ids(element_id(el) for el in set(elements))

    def sketch_ids(self, ids: Iterable[int]) -> Tuple[int, ...]:
        """Sketch a set already mapped to :func:`element_id` integers.

        The fast path for callers that cache element ids across many
        sketches; duplicates among *ids* do not change the minima, so the
        caller need not deduplicate.
        """
        pool = list(ids)
        if not pool:
            return tuple([_MERSENNE_61] * self.num_hashes)
        sketch: List[int] = []
        for a, b in self._coeffs:
            sketch.append(min((a * x + b) % _MERSENNE_61 for x in pool))
        return tuple(sketch)


def jaccard_estimate(
    sketch_a: Sequence[int], sketch_b: Sequence[int]
) -> float:
    """Fraction of agreeing coordinates — estimates Jaccard similarity."""
    if len(sketch_a) != len(sketch_b):
        raise ValueError("sketches must have the same length")
    if not sketch_a:
        return 0.0
    agree = sum(1 for x, y in zip(sketch_a, sketch_b) if x == y)
    return agree / len(sketch_a)
