"""Locality-sensitive hashing by banding min-hash sketches.

A sketch of length ``bands * rows`` is split into bands of ``rows``
coordinates each; items sharing any band signature land in the same bucket.
Following Section 4.4.2, coordinates within a band are combined by summing
(losing their order), which is how the paper's stage-one keyphrase grouping
combines the two ids of a band.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set, Tuple, TypeVar

Item = TypeVar("Item", bound=Hashable)


def _canonical(first: Item, second: Item) -> Tuple[Item, Item]:
    """The unique ``(a, b) with a <= b`` form of an unordered pair."""
    try:
        ordered = first <= second
    except TypeError:  # unorderable items: fall back to repr order
        ordered = repr(first) <= repr(second)
    return (first, second) if ordered else (second, first)


def band_signature(
    sketch: Sequence[int], bands: int, rows: int
) -> Tuple[Tuple[int, int], ...]:
    """Per-band bucket keys of a sketch: (band index, sum of band coords).

    Requires ``len(sketch) == bands * rows``.
    """
    if len(sketch) != bands * rows:
        raise ValueError(
            f"sketch length {len(sketch)} != bands*rows = {bands * rows}"
        )
    keys: List[Tuple[int, int]] = []
    for band in range(bands):
        chunk = sketch[band * rows : (band + 1) * rows]
        keys.append((band, sum(chunk)))
    return tuple(keys)


class LshIndex:
    """Buckets items by banded min-hash signatures.

    Built at task run-time over a set of items (entities, keyphrases); then
    ``candidate_pairs`` yields exactly the pairs sharing at least one bucket.
    """

    def __init__(self, bands: int, rows: int):
        if bands < 1 or rows < 1:
            raise ValueError("bands and rows must be >= 1")
        self.bands = bands
        self.rows = rows
        self._buckets: Dict[Tuple[int, int], List[Item]] = {}
        self._items: Set[Item] = set()

    @property
    def sketch_length(self) -> int:
        """Required sketch length (bands x rows)."""
        return self.bands * self.rows

    def add(self, item: Item, sketch: Sequence[int]) -> None:
        """Index an item under its banded sketch signature."""
        if item in self._items:
            return
        self._items.add(item)
        for key in band_signature(sketch, self.bands, self.rows):
            self._buckets.setdefault(key, []).append(item)

    def __len__(self) -> int:
        return len(self._items)

    def buckets(self) -> List[List[Item]]:
        """All non-singleton buckets (sorted for determinism)."""
        result = [
            sorted(items, key=repr)
            for items in self._buckets.values()
            if len(items) > 1
        ]
        result.sort(key=repr)
        return result

    def candidate_pairs(self) -> Set[Tuple[Item, Item]]:
        """All unordered item pairs co-located in at least one bucket.

        Each pair is emitted in canonical ``(a, b) with a <= b`` order —
        the same orientation
        :meth:`repro.relatedness.base.EntityRelatedness.canonical_pair`
        produces — so membership tests against this set need no
        re-normalization.  Items without a natural ordering fall back to
        ``repr`` order.
        """
        pairs: Set[Tuple[Item, Item]] = set()
        for items in self._buckets.values():
            if len(items) < 2:
                continue
            for i, first in enumerate(items):
                for second in items[i + 1 :]:
                    pairs.add(_canonical(first, second))
        return pairs

    def bucket_keys_of(
        self, sketch: Sequence[int]
    ) -> Tuple[Tuple[int, int], ...]:
        """The band bucket keys a sketch maps to."""
        return band_signature(sketch, self.bands, self.rows)
