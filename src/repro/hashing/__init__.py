"""Min-hash sketches and locality-sensitive hashing (Section 4.4)."""

from repro.hashing.minhash import MinHasher, jaccard_estimate
from repro.hashing.lsh import LshIndex, band_signature

__all__ = ["MinHasher", "jaccard_estimate", "LshIndex", "band_signature"]
