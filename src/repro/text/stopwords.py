"""Stopword list and helpers.

The mention context used by AIDA's similarity (Section 3.3.4) is "all tokens
in the entire input text except stopwords and the mention itself".
"""

from __future__ import annotations

from typing import Iterable, List

STOPWORDS = frozenset(
    """
    a an the this that these those some any each every no
    i you he she it we they me him her us them my your his its our their
    am is are was were be been being have has had do does did will would
    shall should may might must can could
    and or but nor so yet if then else when while because although though
    of in on at by for with from to into onto over under between among
    about against during before after above below up down out off again
    as not only also very too more most less least much many few such own
    same other another both all
    there here where why how what which who whom whose
    said says say new two three first last
    's . , ; : ! ? ( ) [ ] " “ ”
    """.split()
)


def is_stopword(token: str) -> bool:
    """Whether the token is a stopword (case-insensitive)."""
    return token.lower() in STOPWORDS


def content_words(tokens: Iterable[str]) -> List[str]:
    """Lower-cased tokens with stopwords and punctuation removed."""
    return [
        tok.lower()
        for tok in tokens
        if tok.lower() not in STOPWORDS and any(ch.isalnum() for ch in tok)
    ]
