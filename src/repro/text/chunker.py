"""Keyphrase candidate extraction by part-of-speech patterns (Appendix A).

Section 5.5.1 extracts keyphrase candidates from news sentences by matching
pre-defined POS-tag patterns: maximal proper-noun sequences, and the
Justeson–Katz technical-term pattern ``(JJ|NN)+ NN`` optionally extended with
a prepositional attachment ``(JJ|NN)* NN IN (JJ|NN)* NN``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.text.pos import PosTagger, TaggedToken

_NOMINAL = frozenset({"NN", "JJ"})


class KeyphraseChunker:
    """Extracts keyphrase candidate spans from token sequences."""

    def __init__(self, max_phrase_len: int = 5, tagger: PosTagger = None):
        if max_phrase_len < 1:
            raise ValueError("max_phrase_len must be >= 1")
        self.max_phrase_len = max_phrase_len
        self._tagger = tagger if tagger is not None else PosTagger()

    def extract(self, tokens: Sequence[str]) -> List[Tuple[str, ...]]:
        """Keyphrase candidates as tuples of lower-cased tokens."""
        tagged = self._tagger.tag(tokens)
        spans = self.extract_spans(tagged)
        phrases = [
            tuple(tok.lower() for tok in tokens[start:end])
            for start, end in spans
        ]
        # Distinct phrases, first occurrence order.
        return list(dict.fromkeys(phrases))

    def extract_spans(
        self, tagged: Sequence[TaggedToken]
    ) -> List[Tuple[int, int]]:
        """(start, end) spans of keyphrase candidates over tagged tokens."""
        spans: List[Tuple[int, int]] = []
        spans.extend(self._proper_noun_spans(tagged))
        spans.extend(self._technical_term_spans(tagged))
        # Deduplicate while preserving order.
        seen = set()
        unique: List[Tuple[int, int]] = []
        for span in spans:
            if span not in seen:
                seen.add(span)
                unique.append(span)
        return unique

    def _proper_noun_spans(
        self, tagged: Sequence[TaggedToken]
    ) -> List[Tuple[int, int]]:
        """Maximal runs of NNP tokens (proper names)."""
        spans: List[Tuple[int, int]] = []
        start = None
        for index, item in enumerate(tagged):
            if item.tag == "NNP":
                if start is None:
                    start = index
            else:
                if start is not None:
                    self._append_clipped(spans, start, index)
                    start = None
        if start is not None:
            self._append_clipped(spans, start, len(tagged))
        return spans

    def _technical_term_spans(
        self, tagged: Sequence[TaggedToken]
    ) -> List[Tuple[int, int]]:
        """Justeson–Katz pattern: (JJ|NN)* NN, length >= 2, ending in NN.

        Matches maximal nominal runs and emits the run when it ends in a
        common noun and contains at least two tokens (single common nouns
        are too noisy to serve as keyphrases).
        """
        spans: List[Tuple[int, int]] = []
        start = None
        for index, item in enumerate(tagged):
            if item.tag in _NOMINAL:
                if start is None:
                    start = index
            else:
                if start is not None:
                    self._maybe_append_nominal(spans, tagged, start, index)
                    start = None
        if start is not None:
            self._maybe_append_nominal(spans, tagged, start, len(tagged))
        return spans

    def _maybe_append_nominal(
        self,
        spans: List[Tuple[int, int]],
        tagged: Sequence[TaggedToken],
        start: int,
        end: int,
    ) -> None:
        if end - start < 2:
            return
        if tagged[end - 1].tag != "NN":
            # Trim trailing adjectives so the phrase ends in a noun.
            while end > start and tagged[end - 1].tag != "NN":
                end -= 1
            if end - start < 2:
                return
        self._append_clipped(spans, start, end)

    def _append_clipped(
        self, spans: List[Tuple[int, int]], start: int, end: int
    ) -> None:
        """Append the span, clipping over-long phrases to max_phrase_len
        (keeping the head-final suffix, which carries the head noun)."""
        if end - start > self.max_phrase_len:
            start = end - self.max_phrase_len
        spans.append((start, end))
