"""Sentence boundary detection over token sequences."""

from __future__ import annotations

from typing import List, Sequence, Tuple

_TERMINATORS = frozenset({".", "!", "?"})


def split_sentences(tokens: Sequence[str]) -> List[Tuple[int, int]]:
    """Split a token sequence into sentence spans.

    Returns (start, end) token-offset pairs; each span includes its
    terminating punctuation token.  A trailing fragment without terminator
    forms its own sentence.
    """
    spans: List[Tuple[int, int]] = []
    start = 0
    for index, token in enumerate(tokens):
        if token in _TERMINATORS:
            spans.append((start, index + 1))
            start = index + 1
    if start < len(tokens):
        spans.append((start, len(tokens)))
    return spans


def sentence_containing(
    spans: Sequence[Tuple[int, int]], token_index: int
) -> Tuple[int, int]:
    """The sentence span covering *token_index* (or the last span)."""
    for span in spans:
        if span[0] <= token_index < span[1]:
            return span
    if spans:
        return spans[-1]
    return (0, 0)
