"""Whitespace-and-punctuation tokenizer.

Splits text into word tokens, separating trailing/leading punctuation into
their own tokens (so "Dylan's 1976 record Desire." yields "Dylan", "'s",
"1976", "record", "Desire", ".").  Sufficient for the synthetic corpora,
whose generators emit space-separated tokens anyway.
"""

from __future__ import annotations

import re
from typing import List

_TOKEN_RE = re.compile(
    r"""
    [A-Za-z]+(?:-[A-Za-z]+|'(?!s\b)[A-Za-z]+)*   # words, incl. hyphenated
                                  # and O'Brien, but not the 's clitic
    | \d+(?:[.,]\d+)*             # numbers
    | 's                          # possessive clitic
    | [.,;:!?()\[\]"“”]           # punctuation as single tokens
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[str]:
    """Tokenize *text* into a list of word/number/punctuation tokens."""
    return _TOKEN_RE.findall(text)
