"""Lexicon-plus-heuristics part-of-speech tagger.

A lightweight stand-in for the Stanford POS tagger used in Section 5.5.1.
It assigns a reduced Penn-style tagset sufficient for the keyphrase chunking
patterns of Appendix A:

``NNP`` proper noun, ``NN`` common noun, ``JJ`` adjective, ``VB`` verb,
``IN`` preposition, ``DT`` determiner, ``CD`` number, ``CC`` conjunction,
``PUNCT`` punctuation, ``PRP`` pronoun, ``RB`` adverb.

Strategy: closed-class lexicon lookup first, then capitalization (non
sentence-initial capitalized word -> NNP), then suffix heuristics, falling
back to NN — the standard most-frequent-tag baseline that is adequate for
noun-phrase chunking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.text.sentences import split_sentences

_DETERMINERS = frozenset(
    "a an the this that these those some any each every no".split()
)
_PREPOSITIONS = frozenset(
    """of in on at by for with from to into onto over under between among
    about against during before after above below up down out off as""".split()
)
_CONJUNCTIONS = frozenset("and or but nor so yet".split())
_PRONOUNS = frozenset(
    """i you he she it we they me him her us them my your his its our
    their who whom whose which what""".split()
)
_VERBS = frozenset(
    """is are was were be been being am have has had do does did will
    would shall should may might must can could said says say made make
    played plays play performed performs perform recorded records record
    released releases release won wins win signed signs sign announced
    announces announce revealed reveals reveal wrote writes write founded
    founds found scored scores score defeated defeats defeat joined joins
    join visited visits visit opened opens open launched launches launch
    became becomes become led leads lead held holds hold met meets meet
    began begins begin ended ends end""".split()
)
_ADVERBS = frozenset(
    """very too also only just not never always often again still here
    there now then soon already yesterday today tomorrow""".split()
)
_ADJ_SUFFIXES = ("ous", "ful", "ive", "able", "ible", "al", "ic", "ish")
_VERB_SUFFIXES = ("ing", "ize", "ise")


@dataclass(frozen=True)
class TaggedToken:
    """A token paired with its POS tag."""
    token: str
    tag: str


class PosTagger:
    """Deterministic rule-based tagger over token sequences."""

    def tag(self, tokens: Sequence[str]) -> List[TaggedToken]:
        """Tag every token; sentence starts are detected internally so that
        sentence-initial capitalization does not force NNP."""
        sentence_starts = {span[0] for span in split_sentences(tokens)}
        tagged: List[TaggedToken] = []
        for index, token in enumerate(tokens):
            tag = self._tag_one(token, index in sentence_starts)
            tagged.append(TaggedToken(token, tag))
        return tagged

    def _tag_one(self, token: str, sentence_initial: bool) -> str:
        if not any(ch.isalnum() for ch in token):
            return "PUNCT"
        if token[0].isdigit():
            return "CD"
        lower = token.lower()
        if lower in _DETERMINERS:
            return "DT"
        if lower in _PREPOSITIONS:
            return "IN"
        if lower in _CONJUNCTIONS:
            return "CC"
        if lower in _PRONOUNS:
            return "PRP"
        if lower in _VERBS:
            return "VB"
        if lower in _ADVERBS:
            return "RB"
        if token[0].isupper():
            if not sentence_initial or token.isupper():
                return "NNP"
            # Sentence-initial capitalized word: fall through to suffix
            # rules on the lower-cased form, defaulting to NNP only if it
            # looks like nothing else (common for names starting sentences).
            if lower.endswith(_VERB_SUFFIXES):
                return "VB"
            if lower.endswith(_ADJ_SUFFIXES):
                return "JJ"
            return "NNP"
        if lower.endswith(_VERB_SUFFIXES):
            return "VB"
        if lower.endswith("ly"):
            return "RB"
        if lower.endswith(_ADJ_SUFFIXES):
            return "JJ"
        return "NN"
