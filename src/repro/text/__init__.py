"""Lightweight text processing: tokenization, sentences, POS, chunking.

Stands in for the Stanford toolchain the paper uses.  The POS tagger is a
lexicon-plus-suffix tagger; the chunker implements the keyphrase
part-of-speech patterns of Appendix A (proper-noun sequences and the
technical-term pattern of Justeson & Katz).
"""

from repro.text.tokenizer import tokenize
from repro.text.sentences import split_sentences
from repro.text.stopwords import STOPWORDS, is_stopword, content_words
from repro.text.pos import PosTagger, TaggedToken
from repro.text.chunker import KeyphraseChunker

__all__ = [
    "tokenize",
    "split_sentences",
    "STOPWORDS",
    "is_stopword",
    "content_words",
    "PosTagger",
    "TaggedToken",
    "KeyphraseChunker",
]
