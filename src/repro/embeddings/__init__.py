"""Joint word/entity embeddings: training, pre-ranking, and measures.

The embedding subsystem adds a dense third measure family to the
pipeline (alongside keyphrase cover-matching and Milne–Witten) and — its
main production role — the :class:`DensePreRanker` that truncates
candidate pools by vectorized cosine before keyphrase scoring and
coherence ever see them.
"""

from repro.embeddings.measures import (
    EmbeddingRelatedness,
    EmbeddingSimilarity,
)
from repro.embeddings.model import EmbeddingModel
from repro.embeddings.prerank import DensePreRanker
from repro.embeddings.training import (
    EmbeddingConfig,
    build_corpus,
    shared_model,
    train_embeddings,
)

__all__ = [
    "DensePreRanker",
    "EmbeddingConfig",
    "EmbeddingModel",
    "EmbeddingRelatedness",
    "EmbeddingSimilarity",
    "build_corpus",
    "shared_model",
    "train_embeddings",
]
