"""Dense candidate pre-ranking: vectorized pruning ahead of the pipeline.

With compiled scoring and LSH-pruned KORE in place, the remaining
hot-path cost is proportional to raw candidate-pool size: every
surviving candidate pays keyphrase cover-matching, and the coherence
graph grows quadratically in pool size.  The pre-ranker embeds the
document context **once**, scores every candidate of every mention in
one matmul against the entity matrix, and truncates each pool to the
top-K by cosine — so both the per-candidate scoring work and the O(k²)
coherence pair count shrink with K.

Safety rails: the prior-top candidate of every mention always survives
(the popularity prior is the strongest single signal — pruning its
winner would change prior-only degradation rungs), as do pinned/extra
candidates injected by the perturbation and emerging-entity hooks.
Pools already within K are passed through untouched, which makes
``K >= pool size`` (and ``prerank_topk=None``, which skips the stage
entirely) bit-identical to the unpruned pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Set, Tuple

from repro.similarity.context import DocumentContext
from repro.types import Document, EntityId

from repro.embeddings.model import EmbeddingModel


class DensePreRanker:
    """Top-K candidate truncation by dense dot-product score."""

    def __init__(self, model: EmbeddingModel, topk: int):
        if topk < 1:
            raise ValueError("prerank topk must be >= 1")
        self.model = model
        self.topk = topk

    def prune(
        self,
        document: Document,
        candidates: Mapping[int, List[EntityId]],
        protected: Mapping[int, Set[EntityId]],
    ) -> Tuple[Dict[int, List[EntityId]], int, int]:
        """Truncate each mention's pool to top-K plus its protected set.

        Returns ``(pruned_candidates, pruned_count, survived_count)``.
        Pool order (sorted by entity id) is preserved so downstream
        stages see exactly the shape candidate retrieval produces.
        """
        needs_scores = any(
            len(pool) > self.topk for pool in candidates.values()
        )
        scores: Dict[EntityId, float] = {}
        if needs_scores:
            context = DocumentContext(document)
            query = self.model.context_vector(context.term_counts())
            union = sorted(
                {eid for pool in candidates.values() for eid in pool}
            )
            values = self.model.entity_scores(union, query)
            scores = {eid: float(v) for eid, v in zip(union, values)}
        pruned_total = 0
        survived_total = 0
        result: Dict[int, List[EntityId]] = {}
        for index, pool in candidates.items():
            if len(pool) <= self.topk:
                result[index] = list(pool)
                survived_total += len(pool)
                continue
            ranked = sorted(
                pool, key=lambda eid: (-scores.get(eid, 0.0), eid)
            )
            keep = set(ranked[: self.topk])
            keep.update(set(protected.get(index, ())) & set(pool))
            result[index] = [eid for eid in pool if eid in keep]
            survived_total += len(result[index])
            pruned_total += len(pool) - len(result[index])
        return result, pruned_total, survived_total

    @staticmethod
    def protected_sets(
        kb,
        mentions: Sequence,
        candidates: Mapping[int, List[EntityId]],
        extra: Mapping[int, Sequence[EntityId]],
    ) -> Dict[int, Set[EntityId]]:
        """Per-mention candidates the pre-ranker must never drop.

        The prior-top candidate (highest ``P(e|m)``, ties by id) plus any
        injected extra candidates — the emerging-entity placeholders,
        whose whole point is to survive into scoring.
        """
        protected: Dict[int, Set[EntityId]] = {}
        for index, pool in candidates.items():
            if not pool:
                continue
            keep: Set[EntityId] = set(extra.get(index, ()))
            surface = mentions[index].surface
            keep.add(
                max(pool, key=lambda eid: (kb.prior(surface, eid), eid))
            )
            protected[index] = keep
        return protected
