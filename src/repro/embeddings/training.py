"""Offline skip-gram training of the joint word/entity embedding space.

Follows the construction of Yamada et al. (2016): one corpus mixing

* **article text** — each entity's keyphrases, emitted as short
  "sentences" of the entity token followed by the phrase words, repeated
  log-proportionally to the phrase's occurrence count;
* **anchor contexts** — each dictionary name of the entity (anchor texts
  and titles), as the entity token followed by the normalized name words;
* **link neighborhoods** — the entity token followed by the entity tokens
  of its out-links, so entities that link to each other land nearby.

over which a pure-numpy skip-gram with negative sampling (SGNS) runs.
Everything is deterministic given :class:`EmbeddingConfig.seed`: entity
and vocabulary orders are sorted, the only RNG is a seeded PCG64
generator, and the scatter-add updates (``np.add.at``) accumulate in
array order — the same seed reproduces byte-identical matrices.

Training cost is deliberately bounded: synthetic worlds and stress KBs
have a few thousand entities and a bounded vocabulary, so a full run is
a few hundred vectorized minibatches.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.kb.knowledge_base import KnowledgeBase
from repro.utils.text import normalize_token

from repro.embeddings.model import EmbeddingModel, unit_rows

#: Token kinds in the mixed corpus.
_WORD = "w"
_ENTITY = "e"

Token = Tuple[str, str]


@dataclass(frozen=True)
class EmbeddingConfig:
    """Hyperparameters of the SGNS trainer.

    Defaults are sized for the synthetic worlds: small dimension, few
    epochs — enough signal to rank candidates, cheap enough to train
    inside a pipeline constructor when no pre-trained model is supplied.
    """

    dim: int = 48
    window: int = 4
    negatives: int = 5
    epochs: int = 3
    learning_rate: float = 0.05
    batch_size: int = 2048
    seed: int = 13
    #: Cap on log-scaled keyphrase repetitions (a count-c phrase is
    #: emitted ``min(1 + floor(log2 c), cap)`` times).
    max_phrase_repeats: int = 3
    #: Cap on out-link neighbors per link-neighborhood sentence.
    max_link_neighbors: int = 16

    def __post_init__(self) -> None:
        if self.dim < 2:
            raise ConfigurationError("embedding dim must be >= 2")
        if self.window < 1:
            raise ConfigurationError("window must be >= 1")
        if self.negatives < 1:
            raise ConfigurationError("negatives must be >= 1")
        if self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        if self.learning_rate <= 0.0:
            raise ConfigurationError("learning_rate must be positive")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.max_phrase_repeats < 1:
            raise ConfigurationError("max_phrase_repeats must be >= 1")
        if self.max_link_neighbors < 0:
            raise ConfigurationError("max_link_neighbors must be >= 0")


def build_corpus(
    kb: KnowledgeBase, config: Optional[EmbeddingConfig] = None
) -> List[List[Token]]:
    """The mixed training corpus, in deterministic (sorted-entity) order.

    Keyphrase words enter as-is (the store holds them normalized, exactly
    as :class:`~repro.similarity.context.DocumentContext` indexes them);
    dictionary names are tokenized and normalized the same way documents
    are, so anchor-context sentences share the document vocabulary.
    """
    config = config if config is not None else EmbeddingConfig()
    sentences: List[List[Token]] = []
    for eid in kb.entity_ids():
        head: Token = (_ENTITY, eid)
        counts = kb.keyphrases.keyphrase_counts(eid)
        for phrase, count in sorted(counts.items()):
            words = [(_WORD, word) for word in phrase if word]
            if not words:
                continue
            repeats = min(
                config.max_phrase_repeats, 1 + int(math.log2(max(count, 1)))
            )
            sentence = [head] + words
            for _ in range(repeats):
                sentences.append(sentence)
        for name in sorted(set(kb.dictionary.names_of(eid))):
            words = [
                (_WORD, norm)
                for norm in (normalize_token(t) for t in name.split())
                if norm
            ]
            if words:
                sentences.append([head] + words)
        if config.max_link_neighbors:
            neighbors = sorted(kb.links.outlinks(eid))
            neighbors = neighbors[: config.max_link_neighbors]
            if neighbors:
                sentences.append(
                    [head] + [(_ENTITY, n) for n in neighbors]
                )
    return sentences


def _skipgram_pairs(
    sentences: List[List[int]], window: int, n_tokens: int
) -> Tuple[np.ndarray, np.ndarray]:
    """All (center, context) id pairs plus per-token occurrence counts."""
    centers: List[int] = []
    contexts: List[int] = []
    counts = np.zeros(n_tokens, dtype=np.int64)
    for sentence in sentences:
        length = len(sentence)
        for i in range(length):
            counts[sentence[i]] += 1
            lo = max(0, i - window)
            hi = min(length, i + window + 1)
            for j in range(lo, hi):
                if j != i:
                    centers.append(sentence[i])
                    contexts.append(sentence[j])
    pairs = np.array([centers, contexts], dtype=np.int64).T
    return pairs, counts


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def _train_sgns(
    pairs: np.ndarray, counts: np.ndarray, config: EmbeddingConfig
) -> np.ndarray:
    """Minibatch SGNS over the pair array; returns the input matrix.

    The whole batch updates through ``np.add.at`` so repeated indices
    accumulate (unbuffered, array-ordered — deterministic), and negatives
    draw from the unigram^0.75 table via inverse-CDF sampling.
    """
    n_tokens = len(counts)
    dim = config.dim
    rng = np.random.default_rng(config.seed)
    w_in = ((rng.random((n_tokens, dim)) - 0.5) / dim).astype(np.float32)
    w_out = np.zeros((n_tokens, dim), dtype=np.float32)
    if len(pairs) == 0:
        return w_in
    noise = counts.astype(np.float64) ** 0.75
    total = noise.sum()
    if total <= 0.0:
        return w_in
    cdf = np.cumsum(noise / total)
    cdf[-1] = 1.0  # guard against float drift at the top
    n_pairs = len(pairs)
    batches_per_epoch = (n_pairs + config.batch_size - 1) // config.batch_size
    total_steps = max(config.epochs * batches_per_epoch, 1)
    step = 0
    for _epoch in range(config.epochs):
        order = rng.permutation(n_pairs)
        for start in range(0, n_pairs, config.batch_size):
            idx = order[start : start + config.batch_size]
            centers = pairs[idx, 0]
            contexts = pairs[idx, 1]
            lr = config.learning_rate * max(
                1.0 - step / total_steps, 1e-4
            )
            step += 1
            negatives = np.searchsorted(
                cdf, rng.random((len(idx), config.negatives))
            ).astype(np.int64)
            center_vecs = w_in[centers]  # (B, d)
            # Positive pairs: pull context outputs toward the center.
            out_pos = w_out[contexts]
            g_pos = (
                (1.0 - _sigmoid(np.sum(center_vecs * out_pos, axis=1))) * lr
            ).astype(np.float32)
            center_grad = g_pos[:, None] * out_pos
            np.add.at(w_out, contexts, g_pos[:, None] * center_vecs)
            # Negative samples: push sampled outputs away.
            out_neg = w_out[negatives]  # (B, k, d)
            g_neg = (
                -_sigmoid(np.einsum("bd,bkd->bk", center_vecs, out_neg)) * lr
            ).astype(np.float32)
            center_grad += np.einsum("bk,bkd->bd", g_neg, out_neg)
            np.add.at(
                w_out,
                negatives.reshape(-1),
                (g_neg[..., None] * center_vecs[:, None, :]).reshape(
                    -1, dim
                ),
            )
            np.add.at(w_in, centers, center_grad)
    return w_in


def train_embeddings(
    kb: KnowledgeBase, config: Optional[EmbeddingConfig] = None
) -> EmbeddingModel:
    """Train the joint space over *kb*; deterministic for a given config."""
    config = config if config is not None else EmbeddingConfig()
    sentences = build_corpus(kb, config)
    words = sorted(
        {text for sentence in sentences for kind, text in sentence
         if kind == _WORD}
    )
    entity_ids = sorted(
        {text for sentence in sentences for kind, text in sentence
         if kind == _ENTITY}
    )
    word_id = {word: i for i, word in enumerate(words)}
    entity_id = {
        eid: len(words) + i for i, eid in enumerate(entity_ids)
    }
    id_sentences = [
        [
            word_id[text] if kind == _WORD else entity_id[text]
            for kind, text in sentence
        ]
        for sentence in sentences
    ]
    n_tokens = len(words) + len(entity_ids)
    pairs, counts = _skipgram_pairs(id_sentences, config.window, n_tokens)
    matrix = _train_sgns(pairs, counts, config)
    normalized = unit_rows(matrix)
    return EmbeddingModel(
        words=words,
        entity_ids=entity_ids,
        word_vectors=normalized[: len(words)],
        entity_vectors=normalized[len(words):],
        meta={
            "config": asdict(config),
            "sentences": len(sentences),
            "pairs": int(len(pairs)),
        },
    )


#: Per-KB model cache: pipelines built over the same KB object (thread
#: pools, repeated test constructions) share one trained model per
#: config.  Weak keys — dropping the KB drops its models.
_SHARED: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def shared_model(
    kb: KnowledgeBase, config: Optional[EmbeddingConfig] = None
) -> EmbeddingModel:
    """``train_embeddings`` memoized on (kb identity, config)."""
    config = config if config is not None else EmbeddingConfig()
    try:
        per_kb: Dict[EmbeddingConfig, EmbeddingModel] = _SHARED.setdefault(
            kb, {}
        )
    except TypeError:  # un-weakref-able KB stand-in: train uncached
        return train_embeddings(kb, config)
    model = per_kb.get(config)
    if model is None:
        model = train_embeddings(kb, config)
        per_kb[config] = model
    return model
