"""The trained joint word/entity embedding space.

An :class:`EmbeddingModel` is two row-aligned float32 matrices — one row
per vocabulary word, one per entity — L2-normalized so that a dot product
is a cosine.  Everything downstream (the dense pre-ranker, the embedding
similarity/relatedness measures, snapshot export) consumes this one
object; training lives in :mod:`repro.embeddings.training`.

The model is deliberately dumb: plain lists, plain dicts, two ndarrays.
That keeps it picklable for process pools, serializable with ``np.savez``
for the CLI, and zero-copy reconstructible from snapshot sections.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.types import EntityId


def unit_rows(matrix: np.ndarray) -> np.ndarray:
    """Rows scaled to unit L2 norm; all-zero rows stay zero (no NaN)."""
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    np.maximum(norms, 1e-12, out=norms)
    return (matrix / norms).astype(np.float32)


class EmbeddingModel:
    """Joint word/entity embeddings with O(1) row lookup.

    Parameters
    ----------
    words / entity_ids:
        Row labels, in matrix row order (the trainer emits both sorted).
    word_vectors / entity_vectors:
        float32 ``(len(words), dim)`` / ``(len(entity_ids), dim)``
        matrices with unit-L2 rows.
    meta:
        Provenance: the training config as a dict, corpus statistics —
        carried through save/load and snapshot export verbatim.
    """

    def __init__(
        self,
        words: Sequence[str],
        entity_ids: Sequence[EntityId],
        word_vectors: np.ndarray,
        entity_vectors: np.ndarray,
        meta: Optional[Dict] = None,
    ):
        if word_vectors.shape[0] != len(words):
            raise ValueError("word matrix row count != len(words)")
        if entity_vectors.shape[0] != len(entity_ids):
            raise ValueError("entity matrix row count != len(entity_ids)")
        if word_vectors.shape[1] != entity_vectors.shape[1]:
            raise ValueError("word and entity dimensions differ")
        self.words: List[str] = list(words)
        self.entity_ids: List[EntityId] = list(entity_ids)
        self.word_vectors = np.ascontiguousarray(
            word_vectors, dtype=np.float32
        )
        self.entity_vectors = np.ascontiguousarray(
            entity_vectors, dtype=np.float32
        )
        self.meta: Dict = dict(meta) if meta else {}
        self._word_index: Dict[str, int] = {
            word: row for row, word in enumerate(self.words)
        }
        self._entity_index: Dict[EntityId, int] = {
            eid: row for row, eid in enumerate(self.entity_ids)
        }

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Embedding dimensionality d."""
        return int(self.word_vectors.shape[1])

    def word_row(self, word: str) -> int:
        """Matrix row of a word, or -1 when out of vocabulary."""
        return self._word_index.get(word, -1)

    def entity_row(self, entity_id: EntityId) -> int:
        """Matrix row of an entity, or -1 when unknown."""
        return self._entity_index.get(entity_id, -1)

    def entity_vector(self, entity_id: EntityId) -> Optional[np.ndarray]:
        """The entity's unit vector, or None when unknown."""
        row = self._entity_index.get(entity_id)
        if row is None:
            return None
        return self.entity_vectors[row]

    # ------------------------------------------------------------------
    # Scoring primitives
    # ------------------------------------------------------------------
    def context_vector(self, term_counts: Mapping[str, int]) -> np.ndarray:
        """Unit bag-of-words embedding of a document context.

        Sum of count-weighted word vectors over the in-vocabulary terms;
        the zero vector when no term is known (every dot is then 0.0, so
        ranking degrades to the candidate-id tie-break, never crashes).
        """
        vec = np.zeros(self.dim, dtype=np.float32)
        index = self._word_index
        vectors = self.word_vectors
        for term, count in term_counts.items():
            row = index.get(term)
            if row is not None:
                vec += count * vectors[row]
        norm = float(np.linalg.norm(vec))
        if norm > 1e-12:
            vec /= norm
        return vec

    def entity_scores(
        self, entity_ids: Sequence[EntityId], query: np.ndarray
    ) -> np.ndarray:
        """Cosine of *query* against every given entity, as one matmul.

        Unknown entities score 0.0 (the "no signal" value — the caller's
        protected-candidate rules, not the embedding, decide their fate).
        """
        rows = np.array(
            [self._entity_index.get(eid, -1) for eid in entity_ids],
            dtype=np.intp,
        )
        known = rows >= 0
        scores = np.zeros(len(rows), dtype=np.float32)
        if known.any():
            scores[known] = self.entity_vectors[rows[known]] @ query
        return scores

    # ------------------------------------------------------------------
    # Persistence / identity
    # ------------------------------------------------------------------
    def save(self, path: str) -> str:
        """Write the model as an ``.npz`` archive (CLI artifact format).

        Returns the actual path written (``np.savez`` appends ``.npz``
        when missing, so the caller must not assume its own spelling).
        """
        if not path.endswith(".npz"):
            path += ".npz"
        np.savez(
            path,
            words=np.array(self.words, dtype=object),
            entity_ids=np.array(self.entity_ids, dtype=object),
            word_vectors=self.word_vectors,
            entity_vectors=self.entity_vectors,
            meta=np.array(json.dumps(self.meta, sort_keys=True)),
        )
        return path

    @classmethod
    def load(cls, path: str) -> "EmbeddingModel":
        """Read a model written by :meth:`save`."""
        with np.load(path, allow_pickle=True) as data:
            return cls(
                words=[str(w) for w in data["words"]],
                entity_ids=[str(e) for e in data["entity_ids"]],
                word_vectors=data["word_vectors"],
                entity_vectors=data["entity_vectors"],
                meta=json.loads(str(data["meta"])),
            )

    def fingerprint(self) -> Dict[str, str]:
        """sha256 of each matrix's bytes — the determinism check's unit."""
        return {
            "word_vectors": hashlib.sha256(
                self.word_vectors.tobytes()
            ).hexdigest(),
            "entity_vectors": hashlib.sha256(
                self.entity_vectors.tobytes()
            ).hexdigest(),
        }

    def describe(self) -> Dict:
        """Summary for ``repro embeddings inspect``."""
        return {
            "dim": self.dim,
            "words": len(self.words),
            "entities": len(self.entity_ids),
            "fingerprint": self.fingerprint(),
            "meta": self.meta,
        }
