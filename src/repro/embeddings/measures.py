"""Embedding-backed similarity and relatedness measures.

The third measure family alongside keyphrase cover-matching and
Milne–Witten: both sides of the pipeline's scoring — mention-entity
similarity and entity-entity coherence — as cosines in the joint
word/entity space.  Each class mirrors the interface of its keyphrase
counterpart exactly (``simscore``/``simscores`` for the similarity,
the :class:`~repro.relatedness.base.EntityRelatedness` ABC for the
coherence measure), so the pipeline, relatedness cache, degradation
ladder, batch runner, and serving path work unchanged.

This is the regime keyphrase overlap cannot serve: when an entity's
phrases are sparse or absent from the document, cover-matching scores
collapse to zero, while dense vectors still order candidates by
distributional closeness.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.relatedness.base import EntityRelatedness
from repro.similarity.context import DocumentContext
from repro.types import EntityId

from repro.embeddings.model import EmbeddingModel


class EmbeddingSimilarity:
    """Mention-entity similarity as context/entity cosine.

    Interface-compatible with
    :class:`~repro.similarity.keyphrase_match.KeyphraseSimilarity`:
    ``simscore`` for one candidate, ``simscores`` for a pool (the
    context is embedded once and shared by every candidate).  Scores are
    clamped to [0, 1]; the pipeline's per-mention max-normalization
    applies on top as for any similarity backend.
    """

    def __init__(self, model: EmbeddingModel):
        self.model = model
        #: (context, query vector) of the most recent call;
        #: identity-checked, so a stale entry can only miss (same
        #: atomically-swapped-tuple pattern as the compiled scorer).
        self._query_cache: Optional[
            Tuple[DocumentContext, np.ndarray]
        ] = None

    def _query(self, context: DocumentContext) -> np.ndarray:
        cached = self._query_cache
        if cached is not None and cached[0] is context:
            return cached[1]
        query = self.model.context_vector(context.term_counts())
        self._query_cache = (context, query)
        return query

    def simscore(
        self, context: DocumentContext, entity_id: EntityId
    ) -> float:
        """Cosine of the context against one candidate, clamped to [0,1]."""
        vector = self.model.entity_vector(entity_id)
        if vector is None:
            return 0.0
        return max(float(vector @ self._query(context)), 0.0)

    def simscores(
        self, context: DocumentContext, entity_ids: Sequence[EntityId]
    ) -> Dict[EntityId, float]:
        """simscore for every candidate via one matmul."""
        values = self.model.entity_scores(entity_ids, self._query(context))
        return {
            eid: max(float(v), 0.0) for eid, v in zip(entity_ids, values)
        }


class EmbeddingRelatedness(EntityRelatedness):
    """Entity-entity coherence as embedding cosine, clamped to [0, 1].

    Task-independent (no ``prepare`` state), so every pair is cacheable
    by the cross-document LRU; negative cosines clamp to 0 — "unrelated",
    matching the other measures' floor.
    """

    name = "EMB"

    def __init__(self, model: EmbeddingModel):
        super().__init__()
        self.model = model

    def _compute(self, a: EntityId, b: EntityId) -> float:
        va = self.model.entity_vector(a)
        vb = self.model.entity_vector(b)
        if va is None or vb is None:
            return 0.0
        return float(va @ vb)
