"""Keyterm weight computation.

Implements the weighting formulas of Chapters 3 and 4 over a
:class:`~repro.kb.keyphrases.KeyphraseStore` and the entity link graph:

* **IDF** (Eq. 3.5): ``idf(k) = log2(N / df(k))`` with entity-level document
  frequencies.
* **NPMI** (Eq. 3.1–3.3) for entity-keyword pairs, where the co-occurrence
  event is the keyword appearing in the entity's *superdocument* — the union
  of its own keyphrases with the keyphrases of all entities linking to it
  (Section 4.3.1).
* **µ, normalized mutual information** (Eq. 4.1) for entity-keyphrase pairs:
  ``µ(E,T) = 2 · (H(E) + H(T) − H(E,T)) / (H(E) + H(T))`` over the binary
  occurrence events, which KORE found to work better than NPMI for phrases.

Keywords with non-positive NPMI are discarded for NED (Section 3.3.4), which
``keyword_weights`` honours.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, Optional

from repro.kb.keyphrases import KeyphraseStore, Phrase
from repro.kb.links import LinkGraph
from repro.types import EntityId


def binary_entropy(p: float) -> float:
    """Entropy (nats) of a Bernoulli(p) variable; 0 at p in {0, 1}."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log(p) + (1.0 - p) * math.log(1.0 - p))


def joint_entropy(n11: int, n10: int, n01: int, n00: int) -> float:
    """Entropy (nats) of a 2x2 contingency table of counts."""
    total = n11 + n10 + n01 + n00
    if total <= 0:
        return 0.0
    entropy = 0.0
    for count in (n11, n10, n01, n00):
        if count > 0:
            p = count / total
            entropy -= p * math.log(p)
    return entropy


class WeightModel:
    """Computes and caches keyterm weights for a keyphrase store.

    Parameters
    ----------
    keyphrases:
        The per-entity keyphrase store (counts + document frequencies).
    links:
        Entity link graph; inlinks define the superdocument.  Pass ``None``
        to make every superdocument just the entity's own article (used for
        emerging-entity placeholder models, which have no links).
    collection_size:
        Override for N, the number of "documents" (entities).  Defaults to
        the number of entities in the store.
    """

    def __init__(
        self,
        keyphrases: KeyphraseStore,
        links: Optional[LinkGraph] = None,
        collection_size: Optional[int] = None,
    ):
        self._store = keyphrases
        self._links = links
        explicit = collection_size is not None
        size = collection_size if explicit else keyphrases.entity_count
        self._n = max(int(size), 2)  # avoid degenerate log terms
        self._superdoc_words: Dict[EntityId, Dict[str, int]] = {}
        self._superdoc_phrases: Dict[EntityId, Dict[Phrase, int]] = {}
        self._keyword_weight_cache: Dict[EntityId, Dict[str, float]] = {}
        self._keyphrase_weight_cache: Dict[EntityId, Dict[Phrase, float]] = {}

    @property
    def collection_size(self) -> int:
        """N - the number of documents (entities) behind the statistics."""
        return self._n

    # ------------------------------------------------------------------
    # IDF (Eq. 3.5)
    # ------------------------------------------------------------------
    def idf_word(self, word: str) -> float:
        """Entity-level IDF of a keyword (Eq. 3.5)."""
        df = self._store.word_df(word)
        if df <= 0:
            return 0.0
        return math.log2(self._n / df)

    def idf_phrase(self, phrase: Phrase) -> float:
        """Entity-level IDF of a keyphrase (Eq. 3.5)."""
        df = self._store.phrase_df(phrase)
        if df <= 0:
            return 0.0
        return math.log2(self._n / df)

    # ------------------------------------------------------------------
    # Superdocument counts
    # ------------------------------------------------------------------
    def _sources(self, entity_id: EntityId) -> FrozenSet[EntityId]:
        own = frozenset({entity_id})
        if self._links is None:
            return own
        return own | self._links.inlinks(entity_id)

    def _superdoc_word_counts(self, entity_id: EntityId) -> Dict[str, int]:
        cached = self._superdoc_words.get(entity_id)
        if cached is not None:
            return cached
        counts: Dict[str, int] = {}
        for source in self._sources(entity_id):
            for word in self._store.keyword_counts(source):
                counts[word] = counts.get(word, 0) + 1
        self._superdoc_words[entity_id] = counts
        return counts

    def _superdoc_phrase_counts(
        self, entity_id: EntityId
    ) -> Dict[Phrase, int]:
        cached = self._superdoc_phrases.get(entity_id)
        if cached is not None:
            return cached
        counts: Dict[Phrase, int] = {}
        for source in self._sources(entity_id):
            for phrase in self._store.keyphrase_counts(source):
                counts[phrase] = counts.get(phrase, 0) + 1
        self._superdoc_phrases[entity_id] = counts
        return counts

    def _entity_occurrence(self, entity_id: EntityId) -> int:
        return len(self._sources(entity_id))

    # ------------------------------------------------------------------
    # NPMI for entity-keyword pairs (Eq. 3.1-3.3)
    # ------------------------------------------------------------------
    def npmi_word(self, entity_id: EntityId, word: str) -> float:
        """NPMI of an entity-keyword pair over superdocuments (Eq. 3.1)."""
        joint = self._superdoc_word_counts(entity_id).get(word, 0)
        if joint <= 0:
            return -1.0
        occ_e = self._entity_occurrence(entity_id)
        occ_w = max(self._store.word_df(word), joint)
        p_joint = joint / self._n
        p_e = occ_e / self._n
        p_w = occ_w / self._n
        if p_joint >= 1.0:
            return 1.0
        pmi = math.log(p_joint / (p_e * p_w))
        return pmi / (-math.log(p_joint))

    # ------------------------------------------------------------------
    # Normalized MI µ for entity-keyphrase pairs (Eq. 4.1)
    # ------------------------------------------------------------------
    def mi_phrase(self, entity_id: EntityId, phrase: Phrase) -> float:
        """Normalized MI of an entity-keyphrase pair (Eq. 4.1)."""
        joint = self._superdoc_phrase_counts(entity_id).get(phrase, 0)
        occ_e = self._entity_occurrence(entity_id)
        occ_t = max(self._store.phrase_df(phrase), joint)
        n11 = joint
        n10 = occ_e - joint
        n01 = occ_t - joint
        n00 = max(self._n - n11 - n10 - n01, 0)
        h_e = binary_entropy(occ_e / self._n)
        h_t = binary_entropy(occ_t / self._n)
        if h_e + h_t <= 0.0:
            return 0.0
        h_joint = joint_entropy(n11, n10, n01, n00)
        return 2.0 * (h_e + h_t - h_joint) / (h_e + h_t)

    # ------------------------------------------------------------------
    # Per-entity weight maps
    # ------------------------------------------------------------------
    def keyword_weights(
        self, entity_id: EntityId, scheme: str = "npmi"
    ) -> Dict[str, float]:
        """Weights for all constituent words of the entity's keyphrases.

        ``scheme`` is ``"npmi"`` (entity-specific, non-positive discarded)
        or ``"idf"`` (global).
        """
        if scheme == "idf":
            return {
                word: self.idf_word(word)
                for word in self._store.keywords(entity_id)
            }
        if scheme != "npmi":
            raise ValueError(f"unknown keyword weight scheme: {scheme!r}")
        cached = self._keyword_weight_cache.get(entity_id)
        if cached is not None:
            return cached
        weights: Dict[str, float] = {}
        for word in self._store.keywords(entity_id):
            npmi = self.npmi_word(entity_id, word)
            if npmi > 0.0:
                weights[word] = npmi
        self._keyword_weight_cache[entity_id] = weights
        return weights

    def keyphrase_weights(self, entity_id: EntityId) -> Dict[Phrase, float]:
        """µ weights for all keyphrases of the entity (non-negative)."""
        cached = self._keyphrase_weight_cache.get(entity_id)
        if cached is not None:
            return cached
        weights: Dict[Phrase, float] = {}
        for phrase in self._store.keyphrases(entity_id):
            mi = self.mi_phrase(entity_id, phrase)
            if mi > 0.0:
                weights[phrase] = mi
        self._keyphrase_weight_cache[entity_id] = weights
        return weights

    def invalidate(self, entity_ids: Optional[Iterable[EntityId]] = None):
        """Drop cached weights (after the store gained new keyphrases)."""
        if entity_ids is None:
            self._superdoc_words.clear()
            self._superdoc_phrases.clear()
            self._keyword_weight_cache.clear()
            self._keyphrase_weight_cache.clear()
            return
        for entity_id in entity_ids:
            self._superdoc_words.pop(entity_id, None)
            self._superdoc_phrases.pop(entity_id, None)
            self._keyword_weight_cache.pop(entity_id, None)
            self._keyphrase_weight_cache.pop(entity_id, None)
