"""Statistical keyterm weights: IDF, NPMI, and normalized MI (µ)."""

from repro.weights.model import WeightModel, binary_entropy, joint_entropy

__all__ = ["WeightModel", "binary_entropy", "joint_entropy"]
