"""Graceful degradation: retry, deadline, and the configuration ladder.

A production NED service should degrade, not fail: when the full joint
AIDA inference cannot produce a result for a document — transient backend
faults that outlive the retry budget, a permanent fault, or a blown
per-document deadline — it should fall back to a cheaper, more reliable
configuration, exactly as the dissertation's robustness tests disable
unreliable features per mention.  The ladder, in order:

1. ``full`` — whatever configuration the wrapped pipeline was built with
   (typically full joint AIDA with graph coherence);
2. ``no_coherence`` — the same configuration with the coherence graph and
   solver disabled: per-mention prior+similarity argmax, no relatedness
   computations, no dense-subgraph solve;
3. ``prior_only`` — the popularity-prior baseline: no similarity, no
   coherence, nothing but a dictionary lookup per mention.

:class:`ResilientDisambiguator` wraps any ``AidaDisambiguator``-shaped
pipeline (duck-typed: ``kb``/``config``/``store``/``weights`` attributes
enable the ladder; anything else still gets retry + deadline with a
single rung).  Every result records the rung that produced it and the
total number of attempts on
``DisambiguationResult.degradation_rung``/``.attempts``.

Per attempt, a fresh :class:`~repro.faults.deadline.Budget` is armed: the
soft deadline bounds each *attempt*, so a degraded rung gets its own time
slice after a blown full-inference attempt rather than inheriting an
already-exhausted budget.
"""

from __future__ import annotations

import dataclasses
import logging
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError, classify_error
from repro.faults.deadline import Budget, budget_scope
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.obs import get_metrics, get_tracer, log_event

_LOG = logging.getLogger("repro.robust")

#: The degradation ladder, most capable rung first.
DEGRADATION_LADDER: Tuple[str, ...] = (
    "full",
    "no_coherence",
    "prior_only",
)


@dataclass(frozen=True)
class RobustnessConfig:
    """Knobs of the robustness layer.

    An all-defaults instance is inert (no retries, no deadline, no
    degradation) — :func:`make_resilient` then returns the pipeline
    unwrapped.  The config is picklable, so process-pool factories can
    carry it across the pickle wall (see :class:`ResilientFactory`).
    """

    #: Extra attempts per rung for transient failures.
    retries: int = 0
    #: Soft per-attempt deadline in milliseconds (``None`` = unbounded).
    deadline_ms: Optional[float] = None
    #: Walk the degradation ladder instead of failing the document.
    degrade: bool = False
    #: Backoff shape for the retries.
    backoff: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if self.deadline_ms is not None and self.deadline_ms <= 0.0:
            raise ConfigurationError("deadline_ms must be None or > 0")

    @property
    def inert(self) -> bool:
        """Whether this config changes nothing about execution."""
        return (
            self.retries == 0
            and self.deadline_ms is None
            and not self.degrade
        )


def degrade_config(config, rung: str):
    """The pipeline configuration for a ladder rung, derived from the
    full-rung *config* (an :class:`~repro.core.config.AidaConfig`)."""
    from repro.core.config import PriorMode

    if rung == "full":
        return config
    if rung == "no_coherence":
        return dataclasses.replace(
            config, use_coherence=False, use_coherence_test=False
        )
    if rung == "prior_only":
        return dataclasses.replace(
            config,
            prior_mode=PriorMode.ONLY,
            use_coherence=False,
            use_coherence_test=False,
        )
    raise ConfigurationError(f"unknown degradation rung {rung!r}")


class ResilientDisambiguator:
    """Retry / deadline / degradation wrapper around a pipeline.

    Unknown attributes delegate to the wrapped (full-rung) pipeline, so
    the wrapper is a drop-in anywhere an ``AidaDisambiguator`` is used
    (the batch layer's cache introspection, ``last_stats`` readers, …).
    """

    def __init__(self, pipeline, robustness: RobustnessConfig):
        self._base = pipeline
        self.robustness = robustness
        self._rungs: dict = {"full": pipeline}
        self._can_degrade = robustness.degrade and all(
            hasattr(pipeline, attr)
            for attr in ("kb", "config", "store", "weights")
        )

    # ------------------------------------------------------------------
    # Ladder plumbing
    # ------------------------------------------------------------------
    @property
    def ladder(self) -> Tuple[str, ...]:
        """The rungs this wrapper will walk, most capable first."""
        return DEGRADATION_LADDER if self._can_degrade else ("full",)

    def pipeline_for(self, rung: str):
        """The (lazily built) pipeline of a rung; rungs share the KB,
        keyphrase store, weight model, relatedness measure, and compiled
        keyphrase models of the wrapped pipeline — only the
        configuration differs."""
        pipeline = self._rungs.get(rung)
        if pipeline is None:
            pipeline = type(self._base)(
                self._base.kb,
                relatedness=self._base.relatedness,
                config=degrade_config(self._base.config, rung),
                keyphrase_store=self._base.store,
                weight_model=self._base.weights,
                compiled_keyphrases=getattr(self._base, "compiled", None),
            )
            self._rungs[rung] = pipeline
        return pipeline

    # ------------------------------------------------------------------
    # The resilient call
    # ------------------------------------------------------------------
    def disambiguate(self, document, *, start_rung: Optional[str] = None,
                     **kwargs):
        """Disambiguate with retries, deadline, and the ladder.

        ``start_rung`` slices the ladder: the walk begins at that rung
        instead of ``full`` (the serving layer's load shedding — an
        admission-degraded request reuses the same retry, budget, and
        attempts accounting as a failure-degraded one).  An unknown rung
        or a rung this wrapper cannot build falls back to the full
        ladder.

        Raises the *last* rung's error only after every rung failed.
        """
        attempts = 0
        last_error: Optional[Exception] = None
        ladder = self.ladder
        if start_rung is not None and start_rung in ladder:
            ladder = ladder[ladder.index(start_rung):]
        for position, rung in enumerate(ladder):
            policy = self._policy_for(document, rung)
            # ``on_retry`` fires once per performed retry with the retry
            # count so far — the exact attempt tally whether the rung ends
            # in success or exhaustion.
            retries_done = 0
            log_retry = self._log_retry(document, rung)

            def on_retry(attempt: int, error: BaseException) -> None:
                nonlocal retries_done
                retries_done = attempt
                log_retry(attempt, error)

            try:
                result = call_with_retry(
                    self._attempt(rung, document, kwargs),
                    policy,
                    on_retry=on_retry,
                )
            except Exception as error:
                attempts += 1 + retries_done
                last_error = error
                if position + 1 < len(ladder):
                    self._note_degradation(document, rung, error)
                    continue
                # Let failure recorders (the batch layer) report how much
                # work the document consumed before giving up.
                error.robust_attempts = attempts
                raise
            attempts += 1 + retries_done
            result.degradation_rung = rung
            result.attempts = attempts
            self._publish(rung)
            return result
        raise last_error  # pragma: no cover — loop always returns/raises

    def _attempt(self, rung: str, document, kwargs):
        """One budgeted attempt closure for ``call_with_retry``."""
        robustness = self.robustness

        def run():
            with get_tracer().span(
                f"rung.{rung}",
                category="robust",
                doc_id=getattr(document, "doc_id", ""),
            ):
                with budget_scope(
                    Budget(robustness.deadline_ms)
                    if robustness.deadline_ms is not None
                    else None
                ):
                    return self.pipeline_for(rung).disambiguate(
                        document, **kwargs
                    )

        return run

    def _policy_for(self, document, rung: str) -> RetryPolicy:
        base = self.robustness.backoff
        policy = dataclasses.replace(
            base, retries=self.robustness.retries
        )
        doc_id = getattr(document, "doc_id", "")
        return policy.for_key(f"{doc_id}:{rung}")

    def _log_retry(self, document, rung: str):
        def on_retry(attempt: int, error: BaseException) -> None:
            if _LOG.isEnabledFor(logging.DEBUG):
                log_event(
                    _LOG,
                    "robust.retry",
                    doc_id=getattr(document, "doc_id", ""),
                    rung=rung,
                    attempt=attempt,
                    error=f"{type(error).__name__}: {error}",
                )

        return on_retry

    def _note_degradation(self, document, rung: str, error) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("robust.degradations").inc()
        if _LOG.isEnabledFor(logging.INFO):
            log_event(
                _LOG,
                "robust.degrade",
                _level=logging.INFO,
                doc_id=getattr(document, "doc_id", ""),
                from_rung=rung,
                kind=classify_error(error),
                error=f"{type(error).__name__}: {error}",
            )

    @staticmethod
    def _publish(rung: str) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(f"robust.rung.{rung}").inc()

    def __getattr__(self, name: str):
        return getattr(self._base, name)


def make_resilient(pipeline, robustness: Optional[RobustnessConfig]):
    """Wrap *pipeline* unless the config is absent or inert."""
    if pipeline is None or robustness is None or robustness.inert:
        return pipeline
    return ResilientDisambiguator(pipeline, robustness)


class ResilientFactory:
    """Picklable pipeline factory wrapper for process-pool workers.

    Wraps any picklable factory so each worker process builds its own
    resilient pipeline: ``ResilientFactory(base_factory, robustness)``.
    """

    def __init__(self, factory, robustness: RobustnessConfig):
        self.factory = factory
        self.robustness = robustness

    def __call__(self):
        return make_resilient(self.factory(), self.robustness)
