"""Cooperative per-document soft deadlines.

A :class:`Budget` is armed for one pipeline attempt and *checked* —
never preempted — at natural yield points: every pipeline stage boundary
and every dense-subgraph solver iteration.  When the budget is exhausted
the next check raises :class:`repro.errors.DeadlineExceeded`, which the
robustness layer converts into a degradation step (retrying the same
configuration would time out again).

The active budget rides on a thread-local stack so the pipeline and the
solver need no plumbing: they call :func:`check_budget`, which is a
single thread-local read plus ``None`` check when no deadline is armed.
``Budget`` accepts an injectable ``clock`` (and a virtual
:meth:`Budget.charge_ms`) so tests can exhaust deadlines without real
waiting.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional

from repro.errors import DeadlineExceeded
from repro.obs import get_metrics


class Budget:
    """A soft time budget for one pipeline attempt.

    ``deadline_ms = None`` never expires (checks are free no-ops apart
    from the clock read guard).  ``charge_ms`` adds virtual elapsed time
    on top of the wall clock — used by tests and by callers that account
    for known waits without sleeping.
    """

    __slots__ = ("deadline_ms", "_clock", "_start", "_charged_ms")

    def __init__(
        self,
        deadline_ms: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ):
        if deadline_ms is not None and deadline_ms <= 0.0:
            raise ValueError("deadline_ms must be None or > 0")
        self.deadline_ms = deadline_ms
        self._clock = clock
        self._start = clock()
        self._charged_ms = 0.0

    @property
    def elapsed_ms(self) -> float:
        """Wall-clock milliseconds since arming, plus virtual charges."""
        return (
            (self._clock() - self._start) * 1000.0 + self._charged_ms
        )

    @property
    def remaining_ms(self) -> float:
        """Milliseconds left (``inf`` for an unbounded budget)."""
        if self.deadline_ms is None:
            return float("inf")
        return self.deadline_ms - self.elapsed_ms

    @property
    def expired(self) -> bool:
        """Whether the budget has run out."""
        return (
            self.deadline_ms is not None
            and self.elapsed_ms > self.deadline_ms
        )

    def charge_ms(self, amount: float) -> None:
        """Add *amount* virtual milliseconds of consumption."""
        self._charged_ms += amount

    def check(self, where: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget has run out."""
        if self.deadline_ms is None:
            return
        elapsed = self.elapsed_ms
        if elapsed > self.deadline_ms:
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter("robust.deadline_hits").inc()
            raise DeadlineExceeded(where, elapsed, self.deadline_ms)


# ----------------------------------------------------------------------
# The thread-local budget stack
# ----------------------------------------------------------------------
_active = threading.local()


def _stack() -> List[Budget]:
    stack = getattr(_active, "stack", None)
    if stack is None:
        stack = []
        _active.stack = stack
    return stack


def current_budget() -> Optional[Budget]:
    """The innermost armed budget of this thread, if any."""
    stack = getattr(_active, "stack", None)
    return stack[-1] if stack else None


def check_budget(where: str) -> None:
    """Check the innermost armed budget; no-op when none is armed.

    This is the single call instrumented code uses — one thread-local
    read on the fault-free path.
    """
    stack = getattr(_active, "stack", None)
    if stack:
        stack[-1].check(where)


@contextmanager
def budget_scope(budget: Optional[Budget]) -> Iterator[Optional[Budget]]:
    """Arm *budget* for the dynamic extent of the block.

    ``None`` arms nothing (so callers can pass an optional budget
    straight through).  Scopes nest; the innermost wins.

    Exit removes *this* budget specifically, discarding anything a
    misbehaving callee pushed above it without popping.  The guarantee
    matters for long-lived processes: executor threads are reused across
    requests, so a leaked entry on the thread-local stack would charge a
    later request against an earlier request's spent budget.
    """
    if budget is None:
        yield None
        return
    stack = _stack()
    stack.append(budget)
    try:
        yield budget
    finally:
        while stack:
            if stack.pop() is budget:
                break
