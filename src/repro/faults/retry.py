"""Bounded retry with seeded exponential backoff + jitter.

The schedule is fully determined by the :class:`RetryPolicy` (including
its seed): attempt *k*'s raw delay is ``base_ms * multiplier**k`` capped
at ``max_ms``, then multiplied by a jitter factor drawn uniformly from
``[1 - jitter, 1 + jitter]`` from a seeded stream.  Determinism keeps
chaos runs replayable — the same seed produces the same sleeps — while
jitter still decorrelates retries across documents (each document derives
its own policy seed).

Only **transient** errors (per :func:`repro.errors.is_transient`) are
retried; permanent and deadline errors propagate immediately, as do
``KeyboardInterrupt``/``SystemExit`` (never caught — they derive from
``BaseException``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, TypeVar

from repro.errors import ConfigurationError, is_transient
from repro.obs import get_metrics
from repro.utils.rng import SeededRng, derive_seed

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how often) to retry a transient failure.

    ``retries`` is the number of *additional* attempts after the first,
    so a call runs at most ``retries + 1`` times.  ``base_ms = 0``
    disables sleeping entirely (useful in tests).  ``jitter`` is the
    relative half-width of the jitter interval.
    """

    retries: int = 2
    base_ms: float = 10.0
    multiplier: float = 2.0
    max_ms: float = 2000.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if self.base_ms < 0.0:
            raise ConfigurationError("base_ms must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if self.max_ms < self.base_ms:
            raise ConfigurationError("max_ms must be >= base_ms")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")

    def for_key(self, label: str) -> "RetryPolicy":
        """The same policy with an independent jitter stream for *label*
        (e.g. one stream per document per rung)."""
        return RetryPolicy(
            retries=self.retries,
            base_ms=self.base_ms,
            multiplier=self.multiplier,
            max_ms=self.max_ms,
            jitter=self.jitter,
            seed=derive_seed(self.seed, label),
        )


def backoff_schedule(policy: RetryPolicy) -> List[float]:
    """The full delay schedule (ms), one entry per retry.

    Deterministic in the policy: entry *k* is
    ``min(base_ms * multiplier**k, max_ms)`` times a seeded jitter factor
    in ``[1 - jitter, 1 + jitter]``.
    """
    rng = SeededRng(derive_seed(policy.seed, "backoff"))
    schedule: List[float] = []
    for attempt in range(policy.retries):
        raw = min(
            policy.base_ms * (policy.multiplier**attempt), policy.max_ms
        )
        factor = 1.0 + (
            (2.0 * rng.random() - 1.0) * policy.jitter
            if policy.jitter > 0.0
            else 0.0
        )
        schedule.append(raw * factor)
    return schedule


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> T:
    """Call *fn*, retrying transient failures per *policy*.

    ``on_retry(attempt, error)`` is invoked before each re-attempt
    (attempt numbering starts at 1 for the first retry).  The final
    failure — transient with the budget exhausted, or any non-transient
    error — propagates to the caller.
    """
    schedule = backoff_schedule(policy)
    attempt = 0
    while True:
        try:
            return fn()
        except Exception as error:
            if attempt >= len(schedule) or not is_transient(error):
                raise
            attempt += 1
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter("robust.retries").inc()
            if on_retry is not None:
                on_retry(attempt, error)
            delay_ms = schedule[attempt - 1]
            if delay_ms > 0.0:
                sleep(delay_ms / 1000.0)
