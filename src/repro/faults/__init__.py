"""Fault injection and graceful degradation (``repro.faults``).

Four pieces, composable but independent:

* :mod:`repro.faults.injector` — deterministic, seedable chaos faults at
  named sites in the execution stack (no-op by default);
* :mod:`repro.faults.retry` — bounded retry with seeded exponential
  backoff + jitter for transient failures;
* :mod:`repro.faults.deadline` — cooperative per-attempt soft deadlines
  checked at pipeline stage boundaries and solver iterations;
* :mod:`repro.faults.resilient` — the degradation ladder (full joint
  AIDA → coherence-off → prior-only) tying the above together per
  document.

See ``docs/robustness.md`` for the full story and the error taxonomy in
:mod:`repro.errors`.
"""

from __future__ import annotations

from repro.faults.deadline import (
    Budget,
    budget_scope,
    check_budget,
    current_budget,
)
from repro.faults.injector import (
    NULL_INJECTOR,
    FaultInjector,
    FaultSpec,
    InjectedPermanentFault,
    InjectedTransientFault,
    SITES,
    get_injector,
    injected,
    parse_fault_spec,
    set_injector,
)
from repro.faults.retry import (
    RetryPolicy,
    backoff_schedule,
    call_with_retry,
)
from repro.faults.resilient import (
    DEGRADATION_LADDER,
    ResilientDisambiguator,
    ResilientFactory,
    RobustnessConfig,
    degrade_config,
    make_resilient,
)

__all__ = [
    "Budget",
    "budget_scope",
    "check_budget",
    "current_budget",
    "NULL_INJECTOR",
    "FaultInjector",
    "FaultSpec",
    "InjectedPermanentFault",
    "InjectedTransientFault",
    "SITES",
    "get_injector",
    "injected",
    "parse_fault_spec",
    "set_injector",
    "RetryPolicy",
    "backoff_schedule",
    "call_with_retry",
    "DEGRADATION_LADDER",
    "ResilientDisambiguator",
    "ResilientFactory",
    "RobustnessConfig",
    "degrade_config",
    "make_resilient",
]
