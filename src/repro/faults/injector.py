"""Deterministic, seedable fault injection.

The execution stack exposes named *injection sites* — places where a
production deployment would meet an unreliable dependency or a slow
worker:

========================  ====================================================
site                      fired by
========================  ====================================================
``kb.lookup``             candidate retrieval, once per mention lookup
``similarity``            keyphrase similarity, once per scored mention
``relatedness``           every uncached pairwise relatedness computation
``solver.iteration``      every main-loop iteration of the dense-subgraph
                          solver
``worker``                the batch layer, once per document attempt
``snapshot.write``        the KB snapshot writer, once per section written
                          to the temp image (the rename never happens, so
                          a fault can never leave a torn snapshot behind)
========================  ====================================================

A :class:`FaultInjector` holds :class:`FaultSpec` rules — *at this site,
with this probability, raise a transient/permanent error or inject this
much latency, at most this many times* — and is installed process-wide
with :func:`set_injector` (or scoped with :func:`injected`).  The default
is :data:`NULL_INJECTOR`, a shared no-op whose only cost at every site is
one attribute check, so production and fault-free test paths are
bit-identical to a build without the framework.

Determinism: every site gets its own :class:`~repro.utils.rng.SeededRng`
stream forked from the injector seed and the site name, so the fire/skip
pattern at a site depends only on the seed and the number of prior calls
to that site — not on other sites, wall clock, or thread scheduling of
*other* sites.  (Concurrent callers of the *same* site interleave one
stream; chaos tests that need exact per-call patterns run serially or use
``rate=1.0`` specs.)
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PermanentError, TransientError
from repro.obs import get_metrics
from repro.utils.rng import SeededRng, derive_seed

#: The injection sites wired through the execution stack.
SITES: Tuple[str, ...] = (
    "kb.lookup",
    "similarity",
    "relatedness",
    "solver.iteration",
    "worker",
    "snapshot.write",
)

_KINDS = ("transient", "permanent", "latency")


class InjectedTransientFault(TransientError):
    """A chaos fault configured as transient (retry-worthy)."""


class InjectedPermanentFault(PermanentError):
    """A chaos fault configured as permanent (degrade-worthy)."""


class FaultSpecError(ValueError):
    """A :class:`FaultSpec` is out of its valid range."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: *what* to inject, *where*, *how often*.

    ``kind`` selects the effect: ``transient``/``permanent`` raise the
    corresponding injected-fault exception, ``latency`` sleeps for
    ``latency_ms``.  ``rate`` is the per-call firing probability at the
    site; ``max_faults`` caps the total number of firings (``None`` =
    unlimited) — a capped transient spec models a dependency that is
    down for exactly N requests and then recovers, which is what the
    retry-equivalence chaos tests rely on.
    """

    site: str
    rate: float = 1.0
    kind: str = "transient"
    latency_ms: float = 0.0
    max_faults: Optional[int] = None
    message: str = ""

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultSpecError(
                f"unknown site {self.site!r}; expected one of {SITES}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultSpecError("rate must be in [0, 1]")
        if self.kind not in _KINDS:
            raise FaultSpecError(
                f"kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.latency_ms < 0.0:
            raise FaultSpecError("latency_ms must be >= 0")
        if self.kind == "latency" and self.latency_ms == 0.0:
            raise FaultSpecError("latency faults need latency_ms > 0")
        if self.max_faults is not None and self.max_faults < 1:
            raise FaultSpecError("max_faults must be None or >= 1")


class NullFaultInjector:
    """The disabled injector: every site is a no-op.

    ``enabled`` is checked by the instrumented call sites before calling
    :meth:`fire`, keeping the fault-free hot path to one attribute read.
    """

    enabled = False

    def fire(self, site: str) -> None:
        """Do nothing (kept so an unconditional call is still safe)."""

    def stats(self) -> Dict[str, int]:
        """No sites, no counts."""
        return {}


#: Shared no-op injector; the process-wide default.
NULL_INJECTOR = NullFaultInjector()


class FaultInjector:
    """Fires configured faults at named sites, deterministically.

    Thread-safe: per-spec decision streams and counters are guarded by a
    lock (sleeps happen outside it).  ``stats()`` reports calls and
    injections per site for assertions and post-run reports.
    """

    enabled = True

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0):
        self.seed = seed
        self._specs: List[FaultSpec] = list(specs)
        self._lock = threading.Lock()
        self._by_site: Dict[str, List[int]] = {}
        self._rngs: List[SeededRng] = []
        self._fired: List[int] = []
        for index, spec in enumerate(self._specs):
            self._by_site.setdefault(spec.site, []).append(index)
            self._rngs.append(
                SeededRng(derive_seed(seed, f"{spec.site}:{index}"))
            )
            self._fired.append(0)
        self._calls: Dict[str, int] = {}
        self._injected: Dict[str, int] = {}

    def fire(self, site: str) -> None:
        """Evaluate every spec at *site*; raise/sleep when one fires.

        At most one spec per call takes effect (the first firing one, in
        registration order); a raised fault naturally preempts later
        specs.
        """
        sleep_ms = 0.0
        error: Optional[Exception] = None
        with self._lock:
            self._calls[site] = self._calls.get(site, 0) + 1
            for index in self._by_site.get(site, ()):
                spec = self._specs[index]
                if (
                    spec.max_faults is not None
                    and self._fired[index] >= spec.max_faults
                ):
                    continue
                if spec.rate < 1.0 and not self._rngs[index].maybe(
                    spec.rate
                ):
                    continue
                self._fired[index] += 1
                self._injected[site] = self._injected.get(site, 0) + 1
                self._publish(site, spec.kind)
                if spec.kind == "latency":
                    sleep_ms = spec.latency_ms
                else:
                    message = spec.message or (
                        f"injected {spec.kind} fault at {site}"
                    )
                    if spec.kind == "transient":
                        error = InjectedTransientFault(message)
                    else:
                        error = InjectedPermanentFault(message)
                break
        if error is not None:
            raise error
        if sleep_ms > 0.0:
            time.sleep(sleep_ms / 1000.0)

    @staticmethod
    def _publish(site: str, kind: str) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("faults.injected").inc()
            metrics.counter(f"faults.injected.{site}").inc()
            metrics.counter(f"faults.injected.kind.{kind}").inc()

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-site ``{"calls": ..., "injected": ...}`` counters."""
        with self._lock:
            sites = set(self._calls) | set(self._injected)
            return {
                site: {
                    "calls": self._calls.get(site, 0),
                    "injected": self._injected.get(site, 0),
                }
                for site in sorted(sites)
            }

    @property
    def total_injected(self) -> int:
        """Total faults fired across all sites."""
        with self._lock:
            return sum(self._injected.values())


# ----------------------------------------------------------------------
# Process-wide installation (mirrors repro.obs.get_metrics/set_metrics)
# ----------------------------------------------------------------------
_injector = NULL_INJECTOR


def get_injector():
    """The process-wide injector (the shared no-op by default)."""
    return _injector


def set_injector(injector) -> object:
    """Install *injector* process-wide; returns the previous one.

    Passing ``None`` restores the no-op default.
    """
    global _injector
    previous = _injector
    _injector = injector if injector is not None else NULL_INJECTOR
    return previous


@contextmanager
def injected(injector) -> Iterator[object]:
    """Scope an injector installation to a ``with`` block (tests)."""
    previous = set_injector(injector)
    try:
        yield injector
    finally:
        set_injector(previous)


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse the CLI form ``site[:rate[:kind[:fourth]]]``.

    The fourth field is ``max_faults`` for error kinds and the latency in
    milliseconds for ``latency``.  Examples: ``relatedness``,
    ``kb.lookup:0.01``, ``worker:0.05:permanent``,
    ``solver.iteration:1.0:transient:3``, ``worker:1.0:latency:5``.
    """
    parts = text.split(":")
    site = parts[0]
    rate = float(parts[1]) if len(parts) > 1 else 1.0
    kind = parts[2] if len(parts) > 2 else "transient"
    if kind == "latency":
        latency_ms = float(parts[3]) if len(parts) > 3 else 1.0
        return FaultSpec(
            site=site, rate=rate, kind=kind, latency_ms=latency_ms
        )
    max_faults = int(parts[3]) if len(parts) > 3 else None
    return FaultSpec(site=site, rate=rate, kind=kind, max_faults=max_faults)
