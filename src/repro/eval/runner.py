"""Experiment runner: disambiguate a corpus and collect measures.

``run_disambiguator`` drives any object with a
``disambiguate(document) -> DisambiguationResult`` method over annotated
documents, restricts evaluation to mentions whose gold entity is in the KB
when asked to (Chapter 3/4 protocol, Section 3.6.1), records per-mention
correctness with the gold entity's inlink count (for the link-bucketed
analyses), and optionally attaches per-mention confidences.

Disambiguation can be fanned out over a worker pool: pass ``workers > 1``
(or an explicit :class:`~repro.core.batch.BatchRunner` as ``batch``) and
the corpus is dispatched through :mod:`repro.core.batch` while scoring
stays serial in input order — the evaluation is bit-identical to the
serial path for any worker count.  A document that fails inside a batch
run is recorded on ``CorpusRun.failures`` and scored as all-incorrect
(prediction ``None``) rather than aborting the corpus pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.batch import BatchConfig, BatchRunner, DocumentFailure
from repro.eval.measures import (
    DocumentOutcome,
    EvaluationResult,
)
from repro.kb.knowledge_base import KnowledgeBase
from repro.types import (
    AnnotatedDocument,
    DisambiguationResult,
    Document,
    EntityId,
    Mention,
)

#: Optional hook computing mention -> confidence for one document's result.
ConfidenceFn = Callable[
    [Document, DisambiguationResult], Dict[Mention, float]
]


@dataclass
class CorpusRun:
    """Everything an experiment needs from one corpus pass."""

    evaluation: EvaluationResult
    #: (gold entity inlink count, prediction correct) per evaluated mention.
    link_records: List[Tuple[int, bool]] = field(default_factory=list)
    results: List[Optional[DisambiguationResult]] = field(
        default_factory=list
    )
    #: Documents that raised during a batch run (empty on the serial path,
    #: which propagates exceptions as before).
    failures: List[DocumentFailure] = field(default_factory=list)

    @property
    def micro(self) -> float:
        """Micro average accuracy of the run."""
        return self.evaluation.micro

    @property
    def macro(self) -> float:
        """Macro average accuracy of the run."""
        return self.evaluation.macro

    @property
    def map(self) -> float:
        """MAP of the run (confidence ranking)."""
        return self.evaluation.map


def run_disambiguator(
    pipeline,
    documents: Sequence[AnnotatedDocument],
    kb: Optional[KnowledgeBase] = None,
    in_kb_only: bool = True,
    confidence_fn: Optional[ConfidenceFn] = None,
    workers: int = 1,
    batch: Optional[BatchRunner] = None,
) -> CorpusRun:
    """Disambiguate every document and evaluate against the gold standard.

    With ``in_kb_only`` (the Chapter 3/4 protocol) mentions whose gold
    entity is out-of-KB are excluded from scoring.  ``kb`` enables the
    inlink-count records; without it, link counts are recorded as 0.

    ``workers > 1`` fans the disambiguation out over a thread pool sharing
    *pipeline* (wrap its relatedness in ``CachingRelatedness`` for thread-
    safe sharing); an explicit ``batch`` runner overrides both ``pipeline``
    and ``workers`` for full control (process pools, per-worker pipeline
    factories).  Scoring is always serial and in input order, so the
    evaluation is bit-identical across worker counts.
    """
    if batch is None and workers > 1:
        batch = BatchRunner(
            pipeline=pipeline,
            config=BatchConfig(workers=workers, executor="thread"),
        )
    evaluation = EvaluationResult()
    run = CorpusRun(evaluation=evaluation)
    if batch is not None:
        batch_outcome = batch.run(
            [annotated.document for annotated in documents]
        )
        results = batch_outcome.results
        run.failures = list(batch_outcome.failures)
    else:
        results = [
            pipeline.disambiguate(annotated.document)
            for annotated in documents
        ]
    for annotated, result in zip(documents, results):
        run.results.append(result)
        confidences: Dict[Mention, float] = {}
        if confidence_fn is not None and result is not None:
            confidences = confidence_fn(annotated.document, result)
        predicted = result.as_map() if result is not None else {}
        outcome = DocumentOutcome(doc_id=annotated.doc_id)
        for annotation in annotated.gold:
            if in_kb_only and annotation.is_out_of_kb:
                continue
            mention = annotation.mention
            prediction = predicted.get(mention)
            confidence = confidences.get(mention)
            if confidence is None and result is not None:
                assignment = result.assignment_for(mention)
                if assignment is not None and assignment.confidence is not None:
                    confidence = assignment.confidence
                elif assignment is not None:
                    confidence = assignment.score
            outcome.pairs.append(
                (annotation.entity, prediction, confidence)
            )
            run.link_records.append(
                (
                    _inlink_count(kb, annotation.entity),
                    prediction == annotation.entity,
                )
            )
        evaluation.outcomes.append(outcome)
    return run


def _inlink_count(
    kb: Optional[KnowledgeBase], entity_id: EntityId
) -> int:
    if kb is None or entity_id not in kb:
        return 0
    return kb.inlink_count(entity_id)
