"""Experiment runner: disambiguate a corpus and collect measures.

``run_disambiguator`` drives any object with a
``disambiguate(document) -> DisambiguationResult`` method over annotated
documents, restricts evaluation to mentions whose gold entity is in the KB
when asked to (Chapter 3/4 protocol, Section 3.6.1), records per-mention
correctness with the gold entity's inlink count (for the link-bucketed
analyses), and optionally attaches per-mention confidences.

Disambiguation can be fanned out over a worker pool: pass ``workers > 1``
(or an explicit :class:`~repro.core.batch.BatchRunner` as ``batch``) and
the corpus is dispatched through :mod:`repro.core.batch` while scoring
stays serial in input order — the evaluation is bit-identical to the
serial path for any worker count.  A document that fails inside a batch
run is recorded on ``CorpusRun.failures`` and scored as all-incorrect
(prediction ``None``) rather than aborting the corpus pass.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.batch import BatchConfig, BatchRunner, DocumentFailure
from repro.eval.measures import (
    DocumentOutcome,
    EvaluationResult,
)
from repro.faults.resilient import RobustnessConfig, make_resilient
from repro.kb.knowledge_base import KnowledgeBase
from repro.obs import get_metrics, get_tracer, log_event
from repro.types import (
    AnnotatedDocument,
    DisambiguationResult,
    Document,
    EntityId,
    Mention,
)
from repro.utils.timing import PipelineStats

_LOG = logging.getLogger("repro.eval")

#: Optional hook computing mention -> confidence for one document's result.
ConfidenceFn = Callable[
    [Document, DisambiguationResult], Dict[Mention, float]
]


@dataclass
class CorpusRun:
    """Everything an experiment needs from one corpus pass."""

    evaluation: EvaluationResult
    #: (gold entity inlink count, prediction correct) per evaluated mention.
    link_records: List[Tuple[int, bool]] = field(default_factory=list)
    results: List[Optional[DisambiguationResult]] = field(
        default_factory=list
    )
    #: Documents that raised during a batch run (empty on the serial path,
    #: which propagates exceptions as before).
    failures: List[DocumentFailure] = field(default_factory=list)
    #: Merged per-document pipeline stats (corpus totals) — phase seconds
    #: and numeric counters summed across every worker, serial or batch.
    stats: Optional[PipelineStats] = None

    @property
    def rung_counts(self) -> Dict[str, int]:
        """Documents per degradation rung — every document reports the
        ladder rung that produced its result (``full`` outside the
        robustness layer)."""
        counts: Dict[str, int] = {}
        for result in self.results:
            if result is not None:
                rung = getattr(result, "degradation_rung", "full")
                counts[rung] = counts.get(rung, 0) + 1
        return counts

    @property
    def micro(self) -> float:
        """Micro average accuracy of the run."""
        return self.evaluation.micro

    @property
    def macro(self) -> float:
        """Macro average accuracy of the run."""
        return self.evaluation.macro

    @property
    def map(self) -> float:
        """MAP of the run (confidence ranking)."""
        return self.evaluation.map


def run_disambiguator(
    pipeline,
    documents: Sequence[AnnotatedDocument],
    kb: Optional[KnowledgeBase] = None,
    in_kb_only: bool = True,
    confidence_fn: Optional[ConfidenceFn] = None,
    workers: int = 1,
    batch: Optional[BatchRunner] = None,
    robustness: Optional[RobustnessConfig] = None,
) -> CorpusRun:
    """Disambiguate every document and evaluate against the gold standard.

    With ``in_kb_only`` (the Chapter 3/4 protocol) mentions whose gold
    entity is out-of-KB are excluded from scoring.  ``kb`` enables the
    inlink-count records; without it, link counts are recorded as 0.

    ``workers > 1`` fans the disambiguation out over a thread pool sharing
    *pipeline* (wrap its relatedness in ``CachingRelatedness`` for thread-
    safe sharing); an explicit ``batch`` runner overrides both ``pipeline``
    and ``workers`` for full control (process pools, per-worker pipeline
    factories).  Scoring is always serial and in input order, so the
    evaluation is bit-identical across worker counts.

    ``robustness`` wraps the pipeline in the retry / deadline /
    degradation layer (:mod:`repro.faults.resilient`) before anything
    runs; an explicit ``batch`` runner is used as given — wrap its
    pipeline or factory yourself for full control.
    """
    pipeline = make_resilient(pipeline, robustness)
    if batch is None and workers > 1:
        batch = BatchRunner(
            pipeline=pipeline,
            config=BatchConfig(workers=workers, executor="thread"),
        )
    evaluation = EvaluationResult()
    run = CorpusRun(evaluation=evaluation)
    with get_tracer().span(
        "corpus.evaluate", category="corpus", documents=len(documents)
    ):
        if batch is not None:
            batch_outcome = batch.run(
                [annotated.document for annotated in documents]
            )
            results = batch_outcome.results
            run.failures = list(batch_outcome.failures)
            run.stats = batch_outcome.stats
        else:
            results = [
                pipeline.disambiguate(annotated.document)
                for annotated in documents
            ]
            run.stats = PipelineStats.merge(
                result.stats
                for result in results
                if result is not None and result.stats is not None
            )
        _score_run(
            run, documents, results, kb, in_kb_only, confidence_fn
        )
    _publish_observations(run, documents)
    return run


def _score_run(
    run: CorpusRun,
    documents: Sequence[AnnotatedDocument],
    results: Sequence[Optional[DisambiguationResult]],
    kb: Optional[KnowledgeBase],
    in_kb_only: bool,
    confidence_fn: Optional[ConfidenceFn],
) -> None:
    """Serial, input-ordered scoring of a corpus pass."""
    evaluation = run.evaluation
    for annotated, result in zip(documents, results):
        run.results.append(result)
        confidences: Dict[Mention, float] = {}
        if confidence_fn is not None and result is not None:
            confidences = confidence_fn(annotated.document, result)
        predicted = result.as_map() if result is not None else {}
        outcome = DocumentOutcome(doc_id=annotated.doc_id)
        for annotation in annotated.gold:
            if in_kb_only and annotation.is_out_of_kb:
                continue
            mention = annotation.mention
            prediction = predicted.get(mention)
            confidence = confidences.get(mention)
            if confidence is None and result is not None:
                assignment = result.assignment_for(mention)
                if assignment is not None and assignment.confidence is not None:
                    confidence = assignment.confidence
                elif assignment is not None:
                    confidence = assignment.score
            outcome.pairs.append(
                (annotation.entity, prediction, confidence)
            )
            run.link_records.append(
                (
                    _inlink_count(kb, annotation.entity),
                    prediction == annotation.entity,
                )
            )
        evaluation.outcomes.append(outcome)


def _publish_observations(
    run: CorpusRun, documents: Sequence[AnnotatedDocument]
) -> None:
    metrics = get_metrics()
    rungs = run.rung_counts
    degraded = sum(
        count for rung, count in rungs.items() if rung != "full"
    )
    if metrics.enabled:
        metrics.counter("eval.corpus_runs").inc()
        metrics.counter("eval.documents").inc(len(documents))
        metrics.counter("eval.mentions_scored").inc(
            len(run.link_records)
        )
        metrics.counter("eval.failures").inc(len(run.failures))
        if degraded:
            metrics.counter("eval.degraded_documents").inc(degraded)
    if _LOG.isEnabledFor(logging.INFO):
        log_event(
            _LOG,
            "eval.corpus",
            _level=logging.INFO,
            documents=len(documents),
            mentions_scored=len(run.link_records),
            failures=len(run.failures),
            degraded=degraded,
            micro=run.micro,
            macro=run.macro,
        )


def _inlink_count(
    kb: Optional[KnowledgeBase], entity_id: EntityId
) -> int:
    if kb is None or entity_id not in kb:
        return 0
    return kb.inlink_count(entity_id)
