"""Accuracy and ranking measures (Sections 3.6.1 and 5.7.1).

* **Micro average accuracy** — fraction of correctly disambiguated gold
  mentions over the whole collection.
* **Document accuracy** — the per-document fraction.
* **Macro average accuracy** — document accuracies averaged over documents.
* **MAP** — interpolated mean average precision over a confidence ranking
  of mention-entity pairs (Eq. 5.1), equivalent to the area under the
  precision-recall curve.
* **Precision@confidence** — precision over the pairs whose confidence is
  at least a cutoff, plus how many pairs qualify.

Chapter 3's evaluation considers only mentions whose gold entity is in the
KB (Section 3.6.1); the runner handles that filtering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.types import EntityId, Mention


@dataclass
class DocumentOutcome:
    """Per-document gold vs. predicted pairs (unique mentions)."""

    doc_id: str
    #: (gold entity, predicted entity, confidence or None) per mention.
    pairs: List[Tuple[EntityId, Optional[EntityId], Optional[float]]] = field(
        default_factory=list
    )

    @property
    def correct(self) -> int:
        """Number of correctly predicted pairs."""
        return sum(1 for gold, pred, _conf in self.pairs if gold == pred)

    @property
    def total(self) -> int:
        """Number of evaluated pairs."""
        return len(self.pairs)


@dataclass
class EvaluationResult:
    """Aggregated outcomes of one corpus run."""
    outcomes: List[DocumentOutcome] = field(default_factory=list)

    @property
    def micro(self) -> float:
        """Micro average accuracy."""
        return micro_average_accuracy(self.outcomes)

    @property
    def macro(self) -> float:
        """Macro average accuracy."""
        return macro_average_accuracy(self.outcomes)

    @property
    def map(self) -> float:
        """Interpolated mean average precision."""
        return mean_average_precision(self.outcomes)

    def precision_at(self, confidence: float) -> Tuple[float, int]:
        """Precision and pair count at a confidence cutoff."""
        return precision_at_confidence(self.outcomes, confidence)


def micro_average_accuracy(outcomes: Sequence[DocumentOutcome]) -> float:
    """Correct fraction pooled over all mentions."""
    correct = sum(outcome.correct for outcome in outcomes)
    total = sum(outcome.total for outcome in outcomes)
    return correct / total if total else 0.0


def document_accuracy(outcome: DocumentOutcome) -> float:
    """Correct fraction within one document."""
    return outcome.correct / outcome.total if outcome.total else 0.0


def macro_average_accuracy(outcomes: Sequence[DocumentOutcome]) -> float:
    """Document accuracies averaged over documents."""
    scored = [document_accuracy(o) for o in outcomes if o.total > 0]
    return sum(scored) / len(scored) if scored else 0.0


def _ranked_correctness(
    outcomes: Sequence[DocumentOutcome],
) -> List[bool]:
    """Mention pairs ordered by descending confidence (missing confidences
    rank last); True where the prediction is correct.

    Ties are broken *pessimistically*: at equal confidence, incorrect
    predictions rank before correct ones.  This makes MAP and the
    precision-recall points independent of document/corpus insertion
    order (a stable sort on confidence alone would silently preserve it)
    and reports the lower bound over all orderings of tied pairs.
    """
    rows: List[Tuple[float, bool]] = []
    for outcome in outcomes:
        for gold, pred, conf in outcome.pairs:
            rows.append(
                (conf if conf is not None else float("-inf"), gold == pred)
            )
    rows.sort(key=lambda item: (-item[0], item[1]))
    return [correct for _conf, correct in rows]


def mean_average_precision(
    outcomes: Sequence[DocumentOutcome], steps: int = 100
) -> float:
    """Interpolated MAP over the confidence ranking (Eq. 5.1): the average
    of precision@recall-level over *steps* evenly spaced recall levels —
    the area under the precision-recall curve.  Equal-confidence ties are
    broken pessimistically (see :func:`_ranked_correctness`)."""
    ranked = _ranked_correctness(outcomes)
    if not ranked:
        return 0.0
    precisions: List[float] = []
    correct = 0
    for index, is_correct in enumerate(ranked, start=1):
        if is_correct:
            correct += 1
        precisions.append(correct / index)
    # Interpolated precision: the best precision at or beyond each cutoff.
    interpolated = list(precisions)
    for index in range(len(interpolated) - 2, -1, -1):
        interpolated[index] = max(
            interpolated[index], interpolated[index + 1]
        )
    total = 0.0
    n = len(ranked)
    for step in range(1, steps + 1):
        cutoff = max(1, round(step / steps * n))
        total += interpolated[cutoff - 1]
    return total / steps


def precision_recall_points(
    outcomes: Sequence[DocumentOutcome],
) -> List[Tuple[float, float]]:
    """(recall, precision) points along the confidence ranking
    (equal-confidence ties broken pessimistically)."""
    ranked = _ranked_correctness(outcomes)
    points: List[Tuple[float, float]] = []
    correct = 0
    n = len(ranked)
    for index, is_correct in enumerate(ranked, start=1):
        if is_correct:
            correct += 1
        points.append((index / n, correct / index))
    return points


def precision_at_confidence(
    outcomes: Sequence[DocumentOutcome], confidence: float
) -> Tuple[float, int]:
    """Precision over pairs with confidence >= cutoff, and their count."""
    qualifying: List[bool] = []
    for outcome in outcomes:
        for gold, pred, conf in outcome.pairs:
            if conf is not None and conf >= confidence:
                qualifying.append(gold == pred)
    if not qualifying:
        return (0.0, 0)
    return (sum(qualifying) / len(qualifying), len(qualifying))


def evaluate_documents(
    gold_maps: Sequence[Tuple[str, Dict[Mention, EntityId]]],
    predicted_maps: Sequence[
        Dict[Mention, Tuple[Optional[EntityId], Optional[float]]]
    ],
) -> EvaluationResult:
    """Pair up gold and predicted maps document-by-document.

    ``gold_maps`` is (doc_id, mention -> gold entity); ``predicted_maps``
    aligns by position and maps mention -> (predicted entity, confidence).
    Mentions missing from the prediction count as wrong.
    """
    result = EvaluationResult()
    for (doc_id, gold), predicted in zip(gold_maps, predicted_maps):
        outcome = DocumentOutcome(doc_id=doc_id)
        for mention, gold_entity in gold.items():
            pred_entity, confidence = predicted.get(mention, (None, None))
            outcome.pairs.append((gold_entity, pred_entity, confidence))
        result.outcomes.append(outcome)
    return result
