"""Emerging-entity discovery measures (Section 5.7.2).

EE precision is the correct fraction of mentions a method labeled EE; EE
recall is the fraction of gold-EE mentions the method found; both are
averaged per document, and F1 is the per-document harmonic mean averaged —
which is why average F1 can fall below both averages (a document with zero
precision or recall contributes an F1 of zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.types import EntityId, Mention, is_out_of_kb


@dataclass
class EeDocumentOutcome:
    """Per-document gold/predicted pairs for EE scoring."""
    doc_id: str
    #: (gold entity, predicted entity) per mention.
    pairs: List[Tuple[EntityId, Optional[EntityId]]] = field(
        default_factory=list
    )

    def _gold_ee(self) -> int:
        return sum(1 for gold, _pred in self.pairs if is_out_of_kb(gold))

    def _pred_ee(self) -> int:
        return sum(1 for _gold, pred in self.pairs if is_out_of_kb(pred))

    def _true_ee(self) -> int:
        return sum(
            1
            for gold, pred in self.pairs
            if is_out_of_kb(gold) and is_out_of_kb(pred)
        )

    @property
    def precision(self) -> Optional[float]:
        """EE precision (None when nothing was flagged EE)."""
        predicted = self._pred_ee()
        if predicted == 0:
            return None  # undefined: method flagged nothing as EE
        return self._true_ee() / predicted

    @property
    def recall(self) -> Optional[float]:
        """EE recall (None when the document has no gold EE)."""
        gold = self._gold_ee()
        if gold == 0:
            return None  # undefined: document has no EE mentions
        return self._true_ee() / gold

    @property
    def f1(self) -> Optional[float]:
        """Harmonic mean of EE precision and recall."""
        precision, recall = self.precision, self.recall
        if precision is None and recall is None:
            return None
        p = precision if precision is not None else 0.0
        r = recall if recall is not None else 0.0
        if p + r == 0.0:
            return 0.0
        return 2.0 * p * r / (p + r)


@dataclass
class EeResult:
    """Corpus-level EE scores (per-document averaged)."""
    outcomes: List[EeDocumentOutcome] = field(default_factory=list)

    @staticmethod
    def _average(values: List[Optional[float]]) -> float:
        defined = [v for v in values if v is not None]
        return sum(defined) / len(defined) if defined else 0.0

    @property
    def precision(self) -> float:
        """EE precision (None when nothing was flagged EE)."""
        return self._average([o.precision for o in self.outcomes])

    @property
    def recall(self) -> float:
        """EE recall (None when the document has no gold EE)."""
        return self._average([o.recall for o in self.outcomes])

    @property
    def f1(self) -> float:
        """Harmonic mean of EE precision and recall."""
        return self._average([o.f1 for o in self.outcomes])

    @property
    def micro_accuracy(self) -> float:
        """Overall accuracy over all mentions (in-KB and EE together)."""
        correct = total = 0
        for outcome in self.outcomes:
            for gold, pred in outcome.pairs:
                total += 1
                if gold == pred:
                    correct += 1
        return correct / total if total else 0.0

    @property
    def macro_accuracy(self) -> float:
        """Per-document accuracy averaged over documents."""
        scores = []
        for outcome in self.outcomes:
            if not outcome.pairs:
                continue
            good = sum(1 for gold, pred in outcome.pairs if gold == pred)
            scores.append(good / len(outcome.pairs))
        return sum(scores) / len(scores) if scores else 0.0


def evaluate_emerging(
    gold_maps: Sequence[Tuple[str, Dict[Mention, EntityId]]],
    predicted_maps: Sequence[Dict[Mention, EntityId]],
) -> EeResult:
    """Evaluate EE discovery document-by-document (aligned by position)."""
    result = EeResult()
    for (doc_id, gold), predicted in zip(gold_maps, predicted_maps):
        outcome = EeDocumentOutcome(doc_id=doc_id)
        for mention, gold_entity in gold.items():
            outcome.pairs.append((gold_entity, predicted.get(mention)))
        result.outcomes.append(outcome)
    return result
