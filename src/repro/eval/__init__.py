"""Evaluation measures and experiment runners."""

from repro.eval.measures import (
    EvaluationResult,
    document_accuracy,
    evaluate_documents,
    macro_average_accuracy,
    mean_average_precision,
    micro_average_accuracy,
    precision_at_confidence,
)
from repro.eval.ee_measures import EeResult, evaluate_emerging
from repro.eval.ranking import (
    cumulative_accuracy_by_links,
    link_averaged_accuracy,
    precision_recall_curve,
    spearman,
)
from repro.eval.runner import CorpusRun, run_disambiguator

__all__ = [
    "EvaluationResult",
    "document_accuracy",
    "evaluate_documents",
    "macro_average_accuracy",
    "micro_average_accuracy",
    "mean_average_precision",
    "precision_at_confidence",
    "EeResult",
    "evaluate_emerging",
    "spearman",
    "precision_recall_curve",
    "cumulative_accuracy_by_links",
    "link_averaged_accuracy",
    "CorpusRun",
    "run_disambiguator",
]
