"""Rank-correlation and curve utilities.

* :func:`spearman` — Spearman rank correlation between a gold ranking and a
  method's ranking of the same items (Table 4.2).
* :func:`precision_recall_curve` — downsampled PR points (Figure 5.3).
* :func:`cumulative_accuracy_by_links` — accuracy over mentions whose true
  entity has at most *x* inlinks, per x (Figure 4.3), plus link-averaged
  accuracy groups (Table 4.3).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple


def spearman(
    gold_order: Sequence[Hashable], method_order: Sequence[Hashable]
) -> float:
    """Spearman rank correlation of two orderings of the same item set."""
    if set(gold_order) != set(method_order):
        raise ValueError("both orderings must rank the same items")
    n = len(gold_order)
    if n < 2:
        return 1.0
    gold_rank = {item: rank for rank, item in enumerate(gold_order)}
    method_rank = {item: rank for rank, item in enumerate(method_order)}
    d_squared = sum(
        (gold_rank[item] - method_rank[item]) ** 2 for item in gold_order
    )
    return 1.0 - (6.0 * d_squared) / (n * (n * n - 1))


def precision_recall_curve(
    points: Sequence[Tuple[float, float]], num_points: int = 20
) -> List[Tuple[float, float]]:
    """Downsample raw (recall, precision) points to ~num_points."""
    if not points:
        return []
    if len(points) <= num_points:
        return list(points)
    step = len(points) / num_points
    sampled = [
        points[min(int(i * step), len(points) - 1)]
        for i in range(1, num_points + 1)
    ]
    return sampled


def cumulative_accuracy_by_links(
    records: Sequence[Tuple[int, bool]],
    max_links: Optional[int] = None,
) -> List[Tuple[int, float]]:
    """Per link-count x: accuracy over all records with inlinks <= x.

    ``records`` are (inlink count of the gold entity, prediction correct).
    Returns (x, cumulative accuracy) for each distinct x (≤ max_links).
    """
    ordered = sorted(records, key=lambda item: item[0])
    curve: List[Tuple[int, float]] = []
    correct = 0
    total = 0
    index = 0
    while index < len(ordered):
        links = ordered[index][0]
        if max_links is not None and links > max_links:
            break
        while index < len(ordered) and ordered[index][0] == links:
            total += 1
            if ordered[index][1]:
                correct += 1
            index += 1
        curve.append((links, correct / total))
    return curve


def link_averaged_accuracy(
    records: Sequence[Tuple[int, bool]],
    max_links: Optional[int] = None,
) -> float:
    """Macro-average accuracy over groups of records sharing the same
    inlink count (the "link-averaged" rows of Table 4.3)."""
    groups: Dict[int, List[bool]] = {}
    for links, correct in records:
        if max_links is not None and links > max_links:
            continue
        groups.setdefault(links, []).append(correct)
    if not groups:
        return 0.0
    per_group = [
        sum(flags) / len(flags) for _links, flags in sorted(groups.items())
    ]
    return sum(per_group) / len(per_group)
