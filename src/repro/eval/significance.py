"""Statistical significance for method comparisons.

The paper backs its headline comparisons with paired t-tests on per-
document accuracies ("significantly outperforms ... with a p-value of a
paired t-test < 0.01", Section 3.6.2).  This module provides the paired
t-test (with a normal-approximation fallback for the p-value when scipy is
unavailable) and a paired bootstrap, both over per-document score pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.utils.rng import SeededRng

try:  # pragma: no cover - environment dependent
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None


@dataclass(frozen=True)
class PairedTestResult:
    """Outcome of a paired significance test."""

    statistic: float
    p_value: float
    mean_difference: float
    sample_size: int

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether p < alpha."""
        return self.p_value < alpha


def _normal_sf(z: float) -> float:
    """Survival function of the standard normal (fallback p-value)."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def paired_t_test(
    scores_a: Sequence[float], scores_b: Sequence[float]
) -> PairedTestResult:
    """Two-sided paired t-test on per-document score pairs.

    Tests whether method A's per-document scores differ from method B's.
    Requires at least two pairs; identical score vectors yield p = 1.
    """
    if len(scores_a) != len(scores_b):
        raise ValueError("paired test requires equally many scores")
    n = len(scores_a)
    if n < 2:
        raise ValueError("paired test requires at least two pairs")
    differences = [a - b for a, b in zip(scores_a, scores_b)]
    mean = sum(differences) / n
    variance = sum((d - mean) ** 2 for d in differences) / (n - 1)
    if variance == 0.0:
        return PairedTestResult(
            statistic=0.0, p_value=1.0, mean_difference=mean, sample_size=n
        )
    t_stat = mean / math.sqrt(variance / n)
    if _scipy_stats is not None:
        p_value = float(2.0 * _scipy_stats.t.sf(abs(t_stat), df=n - 1))
    else:
        p_value = 2.0 * _normal_sf(abs(t_stat))
    return PairedTestResult(
        statistic=t_stat,
        p_value=min(p_value, 1.0),
        mean_difference=mean,
        sample_size=n,
    )


def paired_bootstrap(
    scores_a: Sequence[float],
    scores_b: Sequence[float],
    iterations: int = 2000,
    seed: int = 12345,
) -> PairedTestResult:
    """Paired bootstrap test: p = fraction of resamples in which A does
    not beat B (one-sided, A > B)."""
    if len(scores_a) != len(scores_b):
        raise ValueError("paired test requires equally many scores")
    n = len(scores_a)
    if n < 2:
        raise ValueError("paired test requires at least two pairs")
    differences = [a - b for a, b in zip(scores_a, scores_b)]
    mean = sum(differences) / n
    rng = SeededRng(seed)
    not_better = 0
    for _ in range(iterations):
        resample = [differences[rng.randint(0, n - 1)] for _ in range(n)]
        if sum(resample) <= 0.0:
            not_better += 1
    return PairedTestResult(
        statistic=mean,
        p_value=not_better / iterations,
        mean_difference=mean,
        sample_size=n,
    )


def document_accuracies(evaluation) -> List[float]:
    """Per-document accuracies from an
    :class:`~repro.eval.measures.EvaluationResult` (the input the paired
    tests expect)."""
    from repro.eval.measures import document_accuracy

    return [
        document_accuracy(outcome)
        for outcome in evaluation.outcomes
        if outcome.total > 0
    ]
