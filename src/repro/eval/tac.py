"""TAC KBP-style entity-linking evaluation (Section 2.2.4).

The TAC Knowledge Base Population workshop evaluates a different protocol
than the CoNLL-style corpora: each document carries exactly **one** target
mention, the system must link it to the KB or declare it NIL (out-of-KB),
and the later editions additionally require NIL mentions to be clustered
so that mentions of the same unseen entity share a cluster id.

This module adapts any pipeline to that protocol and scores it with the
standard measures: linking accuracy (micro, over all queries), in-KB
accuracy, NIL accuracy, and B³ precision/recall/F1 over the NIL clusters
(using the emerging-entity grouper for clustering).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.emerging.registration import EmergingEntityGrouper
from repro.types import (
    AnnotatedDocument,
    Document,
    EntityId,
    Mention,
    is_out_of_kb,
)


@dataclass(frozen=True)
class TacQuery:
    """One evaluation query: a document with a single target mention."""

    document: Document
    mention: Mention
    gold_entity: EntityId
    #: For gold-NIL queries, an id grouping mentions of the same unseen
    #: entity (the clustering gold standard).
    gold_nil_cluster: Optional[str] = None


def queries_from_corpus(
    documents: Sequence[AnnotatedDocument],
    nil_cluster_of=None,
) -> List[TacQuery]:
    """Explode an annotated corpus into single-mention queries.

    Every gold mention becomes one query over its full document, as TAC
    provides full documents but evaluates one mention each.
    ``nil_cluster_of(doc, annotation) -> str`` supplies gold NIL cluster
    ids; by default NIL mentions sharing a surface form share a cluster.
    """
    queries: List[TacQuery] = []
    for annotated in documents:
        for annotation in annotated.gold:
            cluster = None
            if is_out_of_kb(annotation.entity):
                if nil_cluster_of is not None:
                    cluster = nil_cluster_of(annotated, annotation)
                else:
                    cluster = annotation.mention.surface
            queries.append(
                TacQuery(
                    document=annotated.document,
                    mention=annotation.mention,
                    gold_entity=annotation.entity,
                    gold_nil_cluster=cluster,
                )
            )
    return queries


@dataclass
class TacResult:
    """Scores of one TAC-style run."""

    total: int = 0
    correct: int = 0
    in_kb_total: int = 0
    in_kb_correct: int = 0
    nil_total: int = 0
    nil_correct: int = 0
    b3_precision: float = 0.0
    b3_recall: float = 0.0

    @property
    def accuracy(self) -> float:
        """Overall linking accuracy."""
        return self.correct / self.total if self.total else 0.0

    @property
    def in_kb_accuracy(self) -> float:
        """Accuracy over gold in-KB queries."""
        return (
            self.in_kb_correct / self.in_kb_total
            if self.in_kb_total
            else 0.0
        )

    @property
    def nil_accuracy(self) -> float:
        """Accuracy over gold NIL queries."""
        return self.nil_correct / self.nil_total if self.nil_total else 0.0

    @property
    def b3_f1(self) -> float:
        """B-cubed F1 over the NIL clusters."""
        if self.b3_precision + self.b3_recall == 0.0:
            return 0.0
        return (
            2.0
            * self.b3_precision
            * self.b3_recall
            / (self.b3_precision + self.b3_recall)
        )


def _b3(
    gold_clusters: Dict[int, str], system_clusters: Dict[int, str]
) -> Tuple[float, float]:
    """B³ precision/recall over items present in both clusterings."""
    items = sorted(set(gold_clusters) & set(system_clusters))
    if not items:
        return (0.0, 0.0)
    precision_total = 0.0
    recall_total = 0.0
    for item in items:
        gold_mates = {
            other
            for other in items
            if gold_clusters[other] == gold_clusters[item]
        }
        system_mates = {
            other
            for other in items
            if system_clusters[other] == system_clusters[item]
        }
        overlap = len(gold_mates & system_mates)
        precision_total += overlap / len(system_mates)
        recall_total += overlap / len(gold_mates)
    return (precision_total / len(items), recall_total / len(items))


def evaluate_tac(
    pipeline,
    queries: Sequence[TacQuery],
    grouper: Optional[EmergingEntityGrouper] = None,
) -> TacResult:
    """Run the pipeline per query and score the TAC measures.

    The pipeline sees the full document but only the query mention is
    evaluated (``restrict_to`` narrows the problem to it plus nothing —
    the paper notes this single-mention setup is "less appealing for
    joint-inference methods", which is visible in the scores).
    """
    result = TacResult()
    grouper = grouper if grouper is not None else EmergingEntityGrouper()
    gold_nil: Dict[int, str] = {}
    system_nil: Dict[int, str] = {}
    for query_index, query in enumerate(queries):
        mention_index = list(query.document.mentions).index(query.mention)
        run = pipeline.disambiguate(
            query.document, restrict_to=[mention_index]
        )
        predicted = run.as_map().get(query.mention)
        result.total += 1
        gold_is_nil = is_out_of_kb(query.gold_entity)
        predicted_is_nil = predicted is None or is_out_of_kb(predicted)
        if gold_is_nil:
            result.nil_total += 1
            if predicted_is_nil:
                result.nil_correct += 1
                result.correct += 1
        else:
            result.in_kb_total += 1
            if predicted == query.gold_entity:
                result.in_kb_correct += 1
                result.correct += 1
        # NIL clustering: every gold-NIL query that the system also NILed
        # is clustered via the EE grouper; cluster ids are recovered once
        # after all queries so they stay consistent.
        if gold_is_nil and predicted_is_nil:
            gold_nil[query_index] = query.gold_nil_cluster or "nil"
            grouper.add_occurrence(query.document, query.mention)
            system_nil[query_index] = (
                query.document.doc_id,
                query.mention,
            )
    occurrence_to_cluster = {}
    for group_index, group in enumerate(grouper.groups()):
        for doc_id, mention in group.occurrences:
            occurrence_to_cluster[(doc_id, mention)] = (
                f"{group.name}#{group_index}"
            )
    system_nil = {
        query_index: occurrence_to_cluster.get(key, f"solo-{query_index}")
        for query_index, key in system_nil.items()
    }
    precision, recall = _b3(gold_nil, system_nil)
    result.b3_precision = precision
    result.b3_recall = recall
    return result
