"""The long-lived disambiguation front door.

:class:`DisambiguationServer` accepts documents two ways — a minimal
stdlib-only HTTP/1.1 JSON endpoint (``asyncio.start_server``) and a
stdin-JSONL pump — and funnels both through one submit path:

1. **admission** (:mod:`repro.serving.admission`): a bounded slot count;
   under load the request is granted a degraded starting rung, at the
   bound it is rejected (HTTP 429);
2. **micro-batching** (:mod:`repro.serving.batcher`): size/age-triggered
   batches keep the amortization of the batch layer without blowing the
   latency SLO;
3. **execution**: each batch runs through a
   :class:`~repro.core.batch.BatchRunner` on a dedicated thread, every
   document routed into the wrapped
   :class:`~repro.faults.resilient.ResilientDisambiguator` *at its
   admitted rung* — rung walking, retries, per-attempt
   :class:`~repro.faults.Budget` deadlines and attempts accounting are
   all the existing robustness machinery, not a serving re-implementation.

Results resolve per-request futures on the event loop; latency feeds
back into the admission policy's p99 signal, closing the shedding loop.
"""

from __future__ import annotations

import asyncio
import json
import logging
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from repro.core.batch import BatchConfig, BatchOutcome, BatchRunner
from repro.errors import ReproError, describe_error
from repro.faults.resilient import RobustnessConfig, make_resilient
from repro.ner.recognizer import NamedEntityRecognizer
from repro.obs import get_metrics, log_event
from repro.serving.admission import (
    AdmissionController,
    AdmissionRejected,
    ShedPolicy,
)
from repro.serving.batcher import MicroBatcher
from repro.serving.config import ServingConfig
from repro.serving.protocol import (
    ProtocolError,
    document_from_payload,
    error_to_dict,
    response_to_dict,
)
from repro.types import DisambiguationResult, Document

_LOG = logging.getLogger("repro.serving")

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ServingFailure(ReproError):
    """A document failed in the batch executor — HTTP 500.

    ``kind`` carries the taxonomy bucket of the underlying failure
    (transient / permanent / deadline), ``attempts`` the pipeline
    attempts it consumed.
    """

    def __init__(self, doc_id: str, error: str, kind: str, attempts: int):
        super().__init__(f"{doc_id}: [{kind}] {error}")
        self.doc_id = doc_id
        self.kind = kind
        self.attempts = attempts


@dataclass
class ServingRequest:
    """One admitted document riding through the micro-batcher."""

    document: Document
    rung: str
    future: "asyncio.Future[DisambiguationResult]"
    enqueued: float


@dataclass
class ServingResponse:
    """What :meth:`DisambiguationServer.submit` resolves to."""

    result: DisambiguationResult
    admitted_rung: str
    latency_ms: float

    def to_dict(self) -> Dict:
        """The wire payload of this response."""
        return response_to_dict(
            self.result, self.admitted_rung, self.latency_ms
        )


class _RungRouter:
    """Per-batch pipeline adapter: each document at its admitted rung.

    Routing keys on object identity — the batch holds the document
    references for the duration of the run, and doc_ids need not be
    unique across concurrent requests.
    """

    def __init__(self, pipeline, rungs: Dict[int, str]):
        self._pipeline = pipeline
        self._rungs = rungs
        #: Whether the wrapped pipeline understands ladder slicing.
        self._sliceable = hasattr(pipeline, "ladder")

    def disambiguate(self, document: Document, **kwargs):
        rung = self._rungs.get(id(document), "full")
        if self._sliceable:
            return self._pipeline.disambiguate(
                document, start_rung=rung, **kwargs
            )
        return self._pipeline.disambiguate(document, **kwargs)

    def __getattr__(self, name: str):
        return getattr(self._pipeline, name)


class DisambiguationServer:
    """Admission-controlled, micro-batching disambiguation service.

    ``pipeline`` is any ``disambiguate(document)`` object; unless it is
    already a :class:`ResilientDisambiguator` (detected by its ``ladder``
    attribute) it is wrapped in one so the shed ladder and per-attempt
    deadline exist — ``robustness`` overrides the default wrap
    (``degrade=True, deadline_ms=config.slo_ms``).
    """

    def __init__(
        self,
        pipeline,
        config: Optional[ServingConfig] = None,
        kb=None,
        robustness: Optional[RobustnessConfig] = None,
    ):
        self.config = config if config is not None else ServingConfig()
        if not hasattr(pipeline, "ladder"):
            if robustness is None:
                robustness = RobustnessConfig(
                    degrade=True, deadline_ms=self.config.slo_ms
                )
            pipeline = make_resilient(pipeline, robustness)
        self.pipeline = pipeline
        self.kb = kb if kb is not None else getattr(pipeline, "kb", None)
        self.recognizer = (
            NamedEntityRecognizer(self.kb.dictionary)
            if self.kb is not None
            else None
        )
        self.admission = AdmissionController(
            max_queue=self.config.max_queue,
            slo_ms=self.config.slo_ms,
            policy=ShedPolicy(
                depth_fractions=self.config.shed_depth_fractions,
                latency_ratios=self.config.shed_latency_ratios,
            ),
            latency_window=self.config.latency_window,
        )
        self._batcher: Optional[MicroBatcher] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._started = False
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, listen: bool = True) -> None:
        """Start the batcher (and the TCP listener unless ``listen`` is
        False — the stdin-JSONL and loopback-test modes need only the
        submit path)."""
        if self._started:
            raise ReproError("server already started")
        self._started = True
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serving-batch"
        )
        self._batcher = MicroBatcher(
            self._flush,
            max_batch=self.config.batch_max_docs,
            window_ms=self.config.batch_window_ms,
        )
        self._batcher.start()
        if listen:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
            )
            self.port = self._server.sockets[0].getsockname()[1]
            log_event(
                _LOG,
                "serving.listen",
                _level=logging.INFO,
                host=self.config.host,
                port=self.port,
            )

    async def stop(self) -> None:
        """Stop accepting, drain every queued request, release threads."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._batcher is not None:
            await self._batcher.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self._started = False

    async def __aenter__(self) -> "DisambiguationServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def batcher(self) -> MicroBatcher:
        """The running micro-batcher (post-``start``)."""
        if self._batcher is None:
            raise ReproError("server not started")
        return self._batcher

    # ------------------------------------------------------------------
    # The submit path (shared by HTTP, JSONL, and tests)
    # ------------------------------------------------------------------
    async def submit(self, document: Document) -> ServingResponse:
        """Admit, batch, execute, and await one document.

        Raises :class:`AdmissionRejected` at the queue bound and
        :class:`ServingFailure` when every rung failed.
        """
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("serving.requests").inc()
        rung = self.admission.admit()
        loop = asyncio.get_running_loop()
        started = loop.time()
        future: "asyncio.Future[DisambiguationResult]" = (
            loop.create_future()
        )
        request = ServingRequest(
            document=document, rung=rung, future=future, enqueued=started
        )
        try:
            await self.batcher.put(request)
        except BaseException:
            # The slot was charged but the request never entered a batch.
            self.admission.complete()
            raise
        try:
            result = await future
        except Exception:
            if metrics.enabled:
                metrics.counter("serving.failures").inc()
            raise
        latency_ms = (loop.time() - started) * 1000.0
        if metrics.enabled:
            metrics.counter("serving.responses").inc()
            metrics.counter(
                f"serving.rung.{result.degradation_rung}"
            ).inc()
        return ServingResponse(
            result=result, admitted_rung=rung, latency_ms=latency_ms
        )

    async def process(
        self, documents: Sequence[Document], concurrency: int = 1
    ) -> List[ServingResponse]:
        """Submit *documents* through the full serving path, results in
        input order.  ``concurrency`` bounds in-flight submissions —
        1 is the single-flight mode of the differential tests."""
        semaphore = asyncio.Semaphore(max(1, concurrency))

        async def one(document: Document) -> ServingResponse:
            async with semaphore:
                return await self.submit(document)

        return list(
            await asyncio.gather(*(one(doc) for doc in documents))
        )

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def _execute(self, batch: List[ServingRequest]) -> BatchOutcome:
        """Runs on the dedicated executor thread."""
        documents = [request.document for request in batch]
        router = _RungRouter(
            self.pipeline,
            {id(request.document): request.rung for request in batch},
        )
        runner = BatchRunner(
            pipeline=router,
            config=BatchConfig(
                workers=min(self.config.workers, len(documents)),
                executor=self.config.executor,
            ),
        )
        return runner.run(documents)

    async def _flush(self, batch: List[ServingRequest]) -> None:
        loop = asyncio.get_running_loop()
        try:
            outcome = await loop.run_in_executor(
                self._executor, self._execute, batch
            )
        except Exception as exc:
            # The whole batch failed to execute (not a per-document
            # failure) — resolve every future so no caller hangs.
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
                self.admission.complete(
                    (loop.time() - request.enqueued) * 1000.0
                )
            return
        failures = {
            failure.index: failure for failure in outcome.failures
        }
        for index, request in enumerate(batch):
            latency_ms = (loop.time() - request.enqueued) * 1000.0
            result = outcome.results[index]
            if not request.future.done():
                if result is not None:
                    request.future.set_result(result)
                else:
                    failure = failures[index]
                    request.future.set_exception(
                        ServingFailure(
                            doc_id=failure.doc_id,
                            error=failure.error,
                            kind=failure.kind,
                            attempts=failure.attempts,
                        )
                    )
            self.admission.complete(latency_ms)

    # ------------------------------------------------------------------
    # HTTP front-end (stdlib-only minimal HTTP/1.1)
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        status, payload, headers = 500, {"error": "internal"}, {}
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                status, payload = 400, {"error": "malformed request"}
            else:
                method, path, body = parsed
                status, payload = await self._route(method, path, body)
        except Exception as exc:
            status, payload = 500, error_to_dict(exc)
        if status == 429:
            headers["Retry-After"] = "1"
        try:
            self._write_response(writer, status, payload, headers)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # client went away mid-response
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return None
        method, path, _version = parts
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return None
        body = b""
        if content_length > 0:
            body = await reader.readexactly(content_length)
        return method, path, body

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict,
        headers: Dict[str, str],
    ) -> None:
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(data)}",
            "Connection: close",
        ]
        head.extend(f"{name}: {value}" for name, value in headers.items())
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + data
        )

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict]:
        if path == "/healthz" and method == "GET":
            return 200, {
                "status": "ok",
                "queue_depth": self.admission.depth,
                "max_queue": self.admission.max_queue,
            }
        if path == "/stats" and method == "GET":
            return 200, self.admission.stats()
        if path == "/metrics" and method == "GET":
            metrics = get_metrics()
            if not metrics.enabled:
                return 200, {"enabled": False}
            snapshot = metrics.snapshot()
            snapshot["enabled"] = True
            return 200, snapshot
        if path == "/disambiguate":
            if method != "POST":
                return 405, {"error": "use POST"}
            return await self._handle_disambiguate(body)
        return 404, {"error": f"unknown path {path}"}

    async def _handle_disambiguate(self, body: bytes) -> Tuple[int, Dict]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, error_to_dict(exc)
        try:
            document = document_from_payload(payload, self.recognizer)
        except ProtocolError as exc:
            return 400, error_to_dict(exc)
        try:
            response = await self.submit(document)
        except AdmissionRejected as exc:
            return 429, error_to_dict(
                exc, queue_depth=exc.depth, max_queue=exc.max_queue
            )
        except ServingFailure as exc:
            return 500, error_to_dict(
                exc,
                doc_id=exc.doc_id,
                kind=exc.kind,
                attempts=exc.attempts,
            )
        return 200, response.to_dict()

    # ------------------------------------------------------------------
    # stdin-JSONL mode
    # ------------------------------------------------------------------
    async def run_jsonl(
        self, in_stream: TextIO, out_stream: TextIO
    ) -> int:
        """Pump JSONL requests from *in_stream* until EOF; write one JSON
        response line per request to *out_stream*, in input order.

        A closed-loop source should never be 429'd, so the pump holds a
        semaphore of ``max_queue`` line-slots — admission sheds by rung
        under load but the bound itself is enforced by backpressure on
        the reader.  Returns the number of documents served.
        """
        loop = asyncio.get_running_loop()
        semaphore = asyncio.Semaphore(self.config.max_queue)
        ordered: asyncio.Queue = asyncio.Queue()
        served = 0

        async def one(line: str) -> Dict:
            try:
                payload = json.loads(line)
                document = document_from_payload(
                    payload, self.recognizer
                )
                response = await self.submit(document)
                return response.to_dict()
            except Exception as exc:
                return error_to_dict(exc)
            finally:
                semaphore.release()

        async def write_responses() -> int:
            count = 0
            while True:
                task = await ordered.get()
                if task is None:
                    return count
                out_stream.write(
                    json.dumps(await task, sort_keys=True) + "\n"
                )
                out_stream.flush()
                count += 1

        writer = loop.create_task(write_responses())
        while True:
            line = await loop.run_in_executor(None, in_stream.readline)
            if not line:
                break
            if not line.strip():
                continue
            await semaphore.acquire()
            await ordered.put(loop.create_task(one(line)))
        await ordered.put(None)
        served = await writer
        return served

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """One status dict: config, admission counters, batcher state."""
        description: Dict[str, object] = {
            "host": self.config.host,
            "port": self.port,
            "slo_ms": self.config.slo_ms,
            "admission": self.admission.stats(),
        }
        if self._batcher is not None:
            description["batcher"] = {
                "flush_counts": dict(self._batcher.flush_counts),
                "items_flushed": self._batcher.items_flushed,
                "pending": self._batcher.pending,
            }
        return description


def format_failure(exc: BaseException) -> str:
    """Uniform one-line rendering for server logs."""
    return describe_error(exc) if isinstance(exc, Exception) else repr(exc)
