"""The long-lived disambiguation front door.

:class:`DisambiguationServer` accepts documents two ways — a minimal
stdlib-only HTTP/1.1 JSON endpoint (``asyncio.start_server``) and a
stdin-JSONL pump — and funnels both through one submit path:

1. **admission** (:mod:`repro.serving.admission`): a bounded slot count;
   under load the request is granted a degraded starting rung, at the
   bound it is rejected (HTTP 429);
2. **micro-batching** (:mod:`repro.serving.batcher`): size/age-triggered
   batches keep the amortization of the batch layer without blowing the
   latency SLO;
3. **execution**: each batch runs through a
   :class:`~repro.core.batch.BatchRunner` on a dedicated thread, every
   document routed into the wrapped
   :class:`~repro.faults.resilient.ResilientDisambiguator` *at its
   admitted rung* — rung walking, retries, per-attempt
   :class:`~repro.faults.Budget` deadlines and attempts accounting are
   all the existing robustness machinery, not a serving re-implementation.

Results resolve per-request futures on the event loop; latency feeds
back into the admission policy's p99 signal, closing the shedding loop.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, TextIO, Tuple, Union

from repro.core.batch import BatchConfig, BatchOutcome, BatchRunner
from repro.errors import ConfigurationError, ReproError, describe_error
from repro.faults.resilient import (
    ResilientFactory,
    RobustnessConfig,
    make_resilient,
)
from repro.ner.recognizer import NamedEntityRecognizer
from repro.obs import (
    SloTracker,
    TraceContext,
    TraceSink,
    current_context,
    get_metrics,
    get_tracer,
    log_event,
    render_prometheus,
)
from repro.serving.admission import (
    AdmissionController,
    AdmissionRejected,
    ShedPolicy,
)
from repro.serving.batcher import MicroBatcher
from repro.serving.config import ServingConfig
from repro.serving.protocol import (
    ProtocolError,
    document_from_payload,
    error_to_dict,
    response_to_dict,
)
from repro.types import DisambiguationResult, Document

_LOG = logging.getLogger("repro.serving")

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ServingFailure(ReproError):
    """A document failed in the batch executor — HTTP 500.

    ``kind`` carries the taxonomy bucket of the underlying failure
    (transient / permanent / deadline), ``attempts`` the pipeline
    attempts it consumed.
    """

    def __init__(
        self,
        doc_id: str,
        error: str,
        kind: str,
        attempts: int,
        request_id: str = "",
    ):
        super().__init__(f"{doc_id}: [{kind}] {error}")
        self.doc_id = doc_id
        self.kind = kind
        self.attempts = attempts
        self.request_id = request_id


@dataclass
class ServingRequest:
    """One admitted document riding through the micro-batcher."""

    document: Document
    rung: str
    future: "asyncio.Future[DisambiguationResult]"
    enqueued: float
    #: The request's trace context (rung baggage, trace/request ids).
    context: Optional[TraceContext] = None
    #: ``time.time()`` at enqueue — the queue-wait span's wall start.
    wall_enqueued: float = 0.0


@dataclass
class ServingResponse:
    """What :meth:`DisambiguationServer.submit` resolves to."""

    result: DisambiguationResult
    admitted_rung: str
    latency_ms: float
    request_id: str = ""
    trace_id: str = ""

    def to_dict(self) -> Dict:
        """The wire payload of this response."""
        return response_to_dict(
            self.result,
            self.admitted_rung,
            self.latency_ms,
            request_id=self.request_id or None,
            trace_id=self.trace_id or None,
        )


class _BaggageRungPipeline:
    """Pipeline adapter routing each document to its admitted rung.

    The rung rides in the active :class:`TraceContext`'s baggage — the
    one per-request channel that survives both thread *and* process
    executor boundaries (object identity does not survive pickling).
    """

    def __init__(self, pipeline):
        self._pipeline = pipeline
        #: Whether the wrapped pipeline understands ladder slicing.
        self._sliceable = hasattr(pipeline, "ladder")

    def disambiguate(self, document: Document, **kwargs):
        context = current_context()
        rung = (
            context.baggage.get("rung", "full")
            if context is not None
            else "full"
        )
        if self._sliceable:
            return self._pipeline.disambiguate(
                document, start_rung=rung, **kwargs
            )
        return self._pipeline.disambiguate(document, **kwargs)

    def __getattr__(self, name: str):
        return getattr(self._pipeline, name)


class _BaggageRungFactory:
    """Picklable factory composing rung routing onto a worker pipeline.

    Process-pool workers build ``_BaggageRungPipeline(factory())`` once
    in the pool initializer; per-task rungs then arrive via context
    baggage like in the thread path.
    """

    def __init__(self, factory):
        self.factory = factory

    def __call__(self):
        return _BaggageRungPipeline(self.factory())


class DisambiguationServer:
    """Admission-controlled, micro-batching disambiguation service.

    ``pipeline`` is any ``disambiguate(document)`` object; unless it is
    already a :class:`ResilientDisambiguator` (detected by its ``ladder``
    attribute) it is wrapped in one so the shed ladder and per-attempt
    deadline exist — ``robustness`` overrides the default wrap
    (``degrade=True, deadline_ms=config.slo_ms``).

    ``executor="process"`` additionally needs a *picklable*
    ``pipeline_factory``: worker processes build their own resilient
    pipeline, and per-request rungs plus trace ids cross the pickle wall
    in :class:`TraceContext` baggage.  ``pipeline`` may then be omitted —
    the factory builds the local introspection instance.
    """

    def __init__(
        self,
        pipeline=None,
        config: Optional[ServingConfig] = None,
        kb=None,
        robustness: Optional[RobustnessConfig] = None,
        pipeline_factory=None,
    ):
        self.config = config if config is not None else ServingConfig()
        if pipeline is None:
            if pipeline_factory is None:
                raise ConfigurationError(
                    "DisambiguationServer needs a pipeline or a "
                    "pipeline_factory"
                )
            pipeline = pipeline_factory()
        if robustness is None:
            robustness = RobustnessConfig(
                degrade=True, deadline_ms=self.config.slo_ms
            )
        if not hasattr(pipeline, "ladder"):
            pipeline = make_resilient(pipeline, robustness)
        self.pipeline = pipeline
        self._process_factory = None
        if self.config.executor == "process":
            if pipeline_factory is None:
                raise ConfigurationError(
                    "executor='process' requires a picklable "
                    "pipeline_factory"
                )
            self._process_factory = _BaggageRungFactory(
                ResilientFactory(pipeline_factory, robustness)
            )
        #: Where worker pipelines come from — "memory" (models pickled /
        #: re-built per worker) or the snapshot image workers mmap by
        #: path; factories advertise it via ``source_description``.
        self.pipeline_source = getattr(
            pipeline_factory, "source_description", "memory"
        )
        self.kb = kb if kb is not None else getattr(pipeline, "kb", None)
        self.recognizer = (
            NamedEntityRecognizer(self.kb.dictionary)
            if self.kb is not None
            else None
        )
        self.admission = AdmissionController(
            max_queue=self.config.max_queue,
            slo_ms=self.config.slo_ms,
            policy=ShedPolicy(
                depth_fractions=self.config.shed_depth_fractions,
                latency_ratios=self.config.shed_latency_ratios,
            ),
            latency_window=self.config.latency_window,
        )
        self.slo = SloTracker(
            slo_ms=self.config.slo_ms,
            objective=self.config.slo_objective,
            window_seconds=self.config.metrics_window_seconds,
            window_buckets=self.config.metrics_window_buckets,
        )
        self._trace_sink: Optional[TraceSink] = None
        self._sample_accum = 1.0  # first request is always head-sampled
        self._batcher: Optional[MicroBatcher] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._started = False
        self.port: Optional[int] = None
        self._fix_window_geometry()

    def _fix_window_geometry(self) -> None:
        """Pre-create windowed serving metrics so their ring geometry
        follows this config (created-on-first-use kwargs would otherwise
        pin registry defaults)."""
        metrics = get_metrics()
        if not metrics.enabled:
            return
        geometry = {
            "window_seconds": self.config.metrics_window_seconds,
            "window_buckets": self.config.metrics_window_buckets,
        }
        for name in (
            "serving.admitted",
            "serving.shed",
            "serving.rejected",
            "serving.responses",
            "serving.failures",
        ):
            metrics.windowed_counter(name, **geometry)
        metrics.windowed_histogram("serving.request.seconds", **geometry)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, listen: bool = True) -> None:
        """Start the batcher (and the TCP listener unless ``listen`` is
        False — the stdin-JSONL and loopback-test modes need only the
        submit path)."""
        if self._started:
            raise ReproError("server already started")
        self._started = True
        if self.config.trace_export is not None:
            self._trace_sink = TraceSink(
                self.config.trace_export,
                max_traces=self.config.trace_export_max_traces,
            )
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serving-batch"
        )
        self._batcher = MicroBatcher(
            self._flush,
            max_batch=self.config.batch_max_docs,
            window_ms=self.config.batch_window_ms,
        )
        self._batcher.start()
        if listen:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
            )
            self.port = self._server.sockets[0].getsockname()[1]
            log_event(
                _LOG,
                "serving.listen",
                _level=logging.INFO,
                host=self.config.host,
                port=self.port,
            )

    async def stop(self) -> None:
        """Stop accepting, drain every queued request, release threads."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._batcher is not None:
            await self._batcher.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self._trace_sink is not None:
            self._trace_sink.close()
        self._started = False

    async def __aenter__(self) -> "DisambiguationServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def batcher(self) -> MicroBatcher:
        """The running micro-batcher (post-``start``)."""
        if self._batcher is None:
            raise ReproError("server not started")
        return self._batcher

    # ------------------------------------------------------------------
    # The submit path (shared by HTTP, JSONL, and tests)
    # ------------------------------------------------------------------
    def _mint_context(self) -> TraceContext:
        """A fresh request context with the deterministic head-sampling
        verdict (an exact ``trace_sample_rate`` fraction of requests,
        no RNG, so loopback tests are reproducible)."""
        rate = self.config.trace_sample_rate
        sampled = False
        if rate > 0.0:
            self._sample_accum += rate
            if self._sample_accum >= 1.0 - 1e-9:
                self._sample_accum -= 1.0
                sampled = True
        return TraceContext.new(sampled=sampled)

    def _finish_request(
        self,
        context: TraceContext,
        root_span_id: Optional[int],
        wall_started: float,
        latency_ms: Optional[float] = None,
        error: bool = False,
        rung: str = "",
        doc_id: str = "",
    ) -> None:
        """Close out one request: SLO ledger, root span, tail sampling."""
        now = time.time()
        if latency_ms is None:
            latency_ms = (now - wall_started) * 1000.0
        good = self.slo.record(latency_ms, error=error)
        metrics = get_metrics()
        if metrics.enabled:
            self.slo.publish(metrics)
        tracer = get_tracer()
        if not tracer.enabled:
            return
        tracer.record_span(
            "request",
            category="serving",
            wall_start=wall_started,
            duration=now - wall_started,
            span_id=root_span_id,
            trace_id=context.trace_id,
            request_id=context.request_id,
            doc_id=doc_id,
            rung=rung,
            error=error,
            slo_good=good,
        )
        # Tail sampling: SLO-breaching and erroring requests always keep
        # their full span tree; healthy ones only when head-sampled.
        spans = tracer.take_trace(context.trace_id)
        if (context.sampled or not good) and self._trace_sink is not None:
            self._trace_sink.export(spans)

    async def submit(
        self,
        document: Document,
        context: Optional[TraceContext] = None,
    ) -> ServingResponse:
        """Admit, batch, execute, and await one document.

        Raises :class:`AdmissionRejected` at the queue bound and
        :class:`ServingFailure` when every rung failed; both carry the
        minted ``request_id`` for client-side log joining.
        """
        metrics = get_metrics()
        tracer = get_tracer()
        if context is None:
            context = self._mint_context()
        if metrics.enabled:
            metrics.counter("serving.requests").inc()
        loop = asyncio.get_running_loop()
        started = loop.time()
        wall_started = time.time()
        root_span_id = (
            tracer.allocate_span_id() if tracer.enabled else None
        )
        admit_wall = time.time()
        try:
            rung = self.admission.admit()
        except AdmissionRejected as exc:
            exc.request_id = context.request_id
            exc.trace_id = context.trace_id
            self._finish_request(
                context,
                root_span_id,
                wall_started,
                error=True,
                rung="reject",
                doc_id=document.doc_id,
            )
            raise
        if tracer.enabled:
            tracer.record_span(
                "admission",
                category="serving",
                wall_start=admit_wall,
                duration=time.time() - admit_wall,
                parent_id=root_span_id,
                trace_id=context.trace_id,
                request_id=context.request_id,
                rung=rung,
            )
        context = context.with_parent(root_span_id).with_baggage(
            rung=rung
        )
        future: "asyncio.Future[DisambiguationResult]" = (
            loop.create_future()
        )
        request = ServingRequest(
            document=document,
            rung=rung,
            future=future,
            enqueued=started,
            context=context,
            wall_enqueued=time.time(),
        )
        try:
            await self.batcher.put(request)
        except BaseException:
            # The slot was charged but the request never entered a batch.
            self.admission.complete()
            self._finish_request(
                context,
                root_span_id,
                wall_started,
                error=True,
                rung=rung,
                doc_id=document.doc_id,
            )
            raise
        try:
            result = await future
        except Exception as exc:
            if metrics.enabled:
                metrics.counter("serving.failures").inc()
                metrics.windowed_counter("serving.failures").inc()
            if not getattr(exc, "request_id", ""):
                exc.request_id = context.request_id
            exc.trace_id = context.trace_id
            self._finish_request(
                context,
                root_span_id,
                wall_started,
                latency_ms=(loop.time() - started) * 1000.0,
                error=True,
                rung=rung,
                doc_id=document.doc_id,
            )
            raise
        latency_ms = (loop.time() - started) * 1000.0
        if metrics.enabled:
            metrics.counter("serving.responses").inc()
            metrics.windowed_counter("serving.responses").inc()
            metrics.counter(
                f"serving.rung.{result.degradation_rung}"
            ).inc()
        self._finish_request(
            context,
            root_span_id,
            wall_started,
            latency_ms=latency_ms,
            error=False,
            rung=result.degradation_rung,
            doc_id=document.doc_id,
        )
        return ServingResponse(
            result=result,
            admitted_rung=rung,
            latency_ms=latency_ms,
            request_id=context.request_id,
            trace_id=context.trace_id,
        )

    async def process(
        self, documents: Sequence[Document], concurrency: int = 1
    ) -> List[ServingResponse]:
        """Submit *documents* through the full serving path, results in
        input order.  ``concurrency`` bounds in-flight submissions —
        1 is the single-flight mode of the differential tests."""
        semaphore = asyncio.Semaphore(max(1, concurrency))

        async def one(document: Document) -> ServingResponse:
            async with semaphore:
                return await self.submit(document)

        return list(
            await asyncio.gather(*(one(doc) for doc in documents))
        )

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def _execute(self, batch: List[ServingRequest]) -> BatchOutcome:
        """Runs on the dedicated executor thread."""
        documents = [request.document for request in batch]
        contexts = [request.context for request in batch]
        config = BatchConfig(
            workers=min(self.config.workers, len(documents)),
            executor=self.config.executor,
        )
        if self.config.executor == "process":
            runner = BatchRunner(
                pipeline_factory=self._process_factory, config=config
            )
        else:
            runner = BatchRunner(
                pipeline=_BaggageRungPipeline(self.pipeline),
                config=config,
            )
        return runner.run(documents, contexts=contexts)

    async def _flush(self, batch: List[ServingRequest]) -> None:
        loop = asyncio.get_running_loop()
        batch_start_wall = time.time()
        try:
            outcome = await loop.run_in_executor(
                self._executor, self._execute, batch
            )
        except Exception as exc:
            # The whole batch failed to execute (not a per-document
            # failure) — resolve every future so no caller hangs.
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
                self.admission.complete(
                    (loop.time() - request.enqueued) * 1000.0
                )
            return
        batch_wall = time.time() - batch_start_wall
        tracer = get_tracer()
        failures = {
            failure.index: failure for failure in outcome.failures
        }
        for index, request in enumerate(batch):
            latency_ms = (loop.time() - request.enqueued) * 1000.0
            result = outcome.results[index]
            if tracer.enabled and request.context is not None:
                # Recorded before resolving the future, so the spans are
                # in the buffer when submit() takes the trace.
                context = request.context
                tracer.record_span(
                    "queue.wait",
                    category="serving",
                    wall_start=request.wall_enqueued,
                    duration=max(
                        batch_start_wall - request.wall_enqueued, 0.0
                    ),
                    parent_id=context.parent_span_id,
                    trace_id=context.trace_id,
                    request_id=context.request_id,
                )
                tracer.record_span(
                    "batch.exec",
                    category="serving",
                    wall_start=batch_start_wall,
                    duration=batch_wall,
                    parent_id=context.parent_span_id,
                    trace_id=context.trace_id,
                    request_id=context.request_id,
                    batch_size=len(batch),
                    executor=self.config.executor,
                )
            if not request.future.done():
                if result is not None:
                    request.future.set_result(result)
                else:
                    failure = failures[index]
                    request.future.set_exception(
                        ServingFailure(
                            doc_id=failure.doc_id,
                            error=failure.error,
                            kind=failure.kind,
                            attempts=failure.attempts,
                            request_id=failure.request_id,
                        )
                    )
            self.admission.complete(latency_ms)

    # ------------------------------------------------------------------
    # HTTP front-end (stdlib-only minimal HTTP/1.1)
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        status, payload, headers = 500, {"error": "internal"}, {}
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                status, payload = 400, {"error": "malformed request"}
            else:
                method, path, body = parsed
                status, payload = await self._route(method, path, body)
        except Exception as exc:
            status, payload = 500, error_to_dict(exc)
        if status == 429:
            headers["Retry-After"] = "1"
        try:
            self._write_response(writer, status, payload, headers)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # client went away mid-response
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return None
        method, path, _version = parts
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return None
        body = b""
        if content_length > 0:
            body = await reader.readexactly(content_length)
        return method, path, body

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: Union[Dict, str],
        headers: Dict[str, str],
    ) -> None:
        if isinstance(payload, str):
            data = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(data)}",
            "Connection: close",
        ]
        head.extend(f"{name}: {value}" for name, value in headers.items())
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + data
        )

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Union[Dict, str]]:
        path, _, query = path.partition("?")
        if path == "/healthz" and method == "GET":
            return 200, {
                "status": "ok",
                "queue_depth": self.admission.depth,
                "max_queue": self.admission.max_queue,
            }
        if path == "/stats" and method == "GET":
            stats = self.admission.stats()
            stats["pipeline_source"] = self.pipeline_source
            stats["slo"] = self.slo.snapshot()
            tracer = get_tracer()
            telemetry: Dict[str, object] = {
                "tracing": tracer.enabled,
                "dropped_spans": getattr(tracer, "dropped_spans", 0),
            }
            if self._trace_sink is not None:
                telemetry["trace_sink"] = self._trace_sink.stats()
            stats["telemetry"] = telemetry
            return 200, stats
        if path == "/metrics" and method == "GET":
            metrics = get_metrics()
            if "format=prometheus" in query:
                if not metrics.enabled:
                    return 200, ""
                return 200, render_prometheus(metrics.snapshot())
            if not metrics.enabled:
                return 200, {"enabled": False}
            snapshot = metrics.snapshot()
            snapshot["enabled"] = True
            return 200, snapshot
        if path == "/disambiguate":
            if method != "POST":
                return 405, {"error": "use POST"}
            return await self._handle_disambiguate(body)
        return 404, {"error": f"unknown path {path}"}

    async def _handle_disambiguate(self, body: bytes) -> Tuple[int, Dict]:
        # Minted before parsing so even a 400 carries a request_id the
        # client can quote back.
        context = self._mint_context()
        request_id = context.request_id
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, error_to_dict(exc, request_id=request_id)
        try:
            document = document_from_payload(payload, self.recognizer)
        except ProtocolError as exc:
            return 400, error_to_dict(exc, request_id=request_id)
        try:
            response = await self.submit(document, context=context)
        except AdmissionRejected as exc:
            return 429, error_to_dict(
                exc,
                queue_depth=exc.depth,
                max_queue=exc.max_queue,
                request_id=request_id,
            )
        except ServingFailure as exc:
            return 500, error_to_dict(
                exc,
                doc_id=exc.doc_id,
                kind=exc.kind,
                attempts=exc.attempts,
                request_id=exc.request_id or request_id,
            )
        return 200, response.to_dict()

    # ------------------------------------------------------------------
    # stdin-JSONL mode
    # ------------------------------------------------------------------
    async def run_jsonl(
        self, in_stream: TextIO, out_stream: TextIO
    ) -> int:
        """Pump JSONL requests from *in_stream* until EOF; write one JSON
        response line per request to *out_stream*, in input order.

        A closed-loop source should never be 429'd, so the pump holds a
        semaphore of ``max_queue`` line-slots — admission sheds by rung
        under load but the bound itself is enforced by backpressure on
        the reader.  Returns the number of documents served.
        """
        loop = asyncio.get_running_loop()
        semaphore = asyncio.Semaphore(self.config.max_queue)
        ordered: asyncio.Queue = asyncio.Queue()
        served = 0

        async def one(line: str) -> Dict:
            context = self._mint_context()
            try:
                payload = json.loads(line)
                document = document_from_payload(
                    payload, self.recognizer
                )
                response = await self.submit(document, context=context)
                return response.to_dict()
            except Exception as exc:
                return error_to_dict(
                    exc, request_id=context.request_id
                )
            finally:
                semaphore.release()

        async def write_responses() -> int:
            count = 0
            while True:
                task = await ordered.get()
                if task is None:
                    return count
                out_stream.write(
                    json.dumps(await task, sort_keys=True) + "\n"
                )
                out_stream.flush()
                count += 1

        writer = loop.create_task(write_responses())
        while True:
            line = await loop.run_in_executor(None, in_stream.readline)
            if not line:
                break
            if not line.strip():
                continue
            await semaphore.acquire()
            await ordered.put(loop.create_task(one(line)))
        await ordered.put(None)
        served = await writer
        return served

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """One status dict: config, admission counters, batcher state."""
        description: Dict[str, object] = {
            "host": self.config.host,
            "port": self.port,
            "slo_ms": self.config.slo_ms,
            "admission": self.admission.stats(),
            "slo": self.slo.snapshot(),
        }
        if self._batcher is not None:
            description["batcher"] = {
                "flush_counts": dict(self._batcher.flush_counts),
                "items_flushed": self._batcher.items_flushed,
                "pending": self._batcher.pending,
            }
        return description


def format_failure(exc: BaseException) -> str:
    """Uniform one-line rendering for server logs."""
    return describe_error(exc) if isinstance(exc, Exception) else repr(exc)
