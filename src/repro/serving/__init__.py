"""Online serving: admission control, micro-batching, HTTP/JSONL front door.

The serving layer turns the corpus-batch reproduction into the long-lived
service the paper's AIDA web deployment was: a stdlib-only asyncio server
that admits documents under a bounded queue, sheds load by walking the
graceful-degradation ladder (full → no_coherence → prior_only →
reject-429) instead of buffering unboundedly, micro-batches admitted
requests into the existing :class:`~repro.core.batch.BatchRunner`, and
enforces per-request deadlines through :class:`repro.faults.Budget`.

See ``docs/serving.md`` for the architecture and SLO-tuning guide.
"""

from repro.serving.admission import (
    REJECT,
    SHED_LADDER,
    AdmissionController,
    AdmissionRejected,
    LatencyWindow,
    ShedPolicy,
)
from repro.serving.batcher import (
    BATCH_SIZE_BUCKETS,
    BatcherClosed,
    FLUSH_REASONS,
    MicroBatcher,
)
from repro.serving.config import SERVING_EXECUTORS, ServingConfig
from repro.serving.protocol import (
    ProtocolError,
    document_from_payload,
    error_to_dict,
    response_to_dict,
)
from repro.serving.server import (
    DisambiguationServer,
    ServingFailure,
    ServingRequest,
    ServingResponse,
)

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "BATCH_SIZE_BUCKETS",
    "BatcherClosed",
    "DisambiguationServer",
    "FLUSH_REASONS",
    "LatencyWindow",
    "MicroBatcher",
    "ProtocolError",
    "REJECT",
    "SERVING_EXECUTORS",
    "SHED_LADDER",
    "ServingConfig",
    "ServingFailure",
    "ServingRequest",
    "ServingResponse",
    "ShedPolicy",
    "document_from_payload",
    "error_to_dict",
    "response_to_dict",
]
