"""Admission control: bounded queueing plus shed-by-rung load policy.

Under overload a production NED service should degrade, not buffer: the
admission controller bounds the number of outstanding requests and maps
observed load onto the graceful-degradation ladder of
:mod:`repro.faults.resilient`.  A request admitted under pressure starts
life at a cheaper rung (``no_coherence``, then ``prior_only``); only when
the ladder is exhausted — the queue is literally full — is a request
rejected (HTTP 429).

The policy itself (:class:`ShedPolicy`) is a pure function of two load
signals, *queue-depth fraction* and *observed-p99 / SLO ratio*, and is
monotone in both by construction: more load never yields a more capable
rung.  That monotonicity is the property the serving chaos suite checks
with Hypothesis.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple
from collections import deque

from repro.errors import ReproError
from repro.faults.resilient import DEGRADATION_LADDER
from repro.obs import get_metrics

#: The admission verdicts, most capable first.  The first three are the
#: degradation ladder rungs a request may start at; ``REJECT`` is the
#: verdict past the last rung.
REJECT = "reject"
SHED_LADDER: Tuple[str, ...] = DEGRADATION_LADDER + (REJECT,)


class AdmissionRejected(ReproError):
    """Raised when the shed ladder is exhausted (queue full) — HTTP 429."""

    def __init__(self, depth: int, max_queue: int):
        super().__init__(
            f"admission queue full ({depth}/{max_queue}); request rejected"
        )
        self.depth = depth
        self.max_queue = max_queue


@dataclass(frozen=True)
class ShedPolicy:
    """Pure load -> rung mapping; monotone in both load signals.

    ``depth_fractions`` / ``latency_ratios`` are the two escalation
    thresholds of each signal.  The verdict is the *worse* of the two
    per-signal rungs, so either signal alone can push admission down the
    ladder, and rising load can never climb back up.  Latency alone never
    rejects — only a full queue does (``depth_fraction >= 1``), which is
    what "429 only when the shed ladder is exhausted" means.
    """

    depth_fractions: Tuple[float, float] = (0.5, 0.75)
    latency_ratios: Tuple[float, float] = (1.0, 2.0)

    def _depth_rung(self, fraction: float) -> int:
        if fraction >= 1.0:
            return 3  # reject: the queue itself is full
        if fraction >= self.depth_fractions[1]:
            return 2
        if fraction >= self.depth_fractions[0]:
            return 1
        return 0

    def _latency_rung(self, ratio: float) -> int:
        if ratio > self.latency_ratios[1]:
            return 2
        if ratio > self.latency_ratios[0]:
            return 1
        return 0

    def rung_for(self, depth_fraction: float, latency_ratio: float) -> str:
        """The admission verdict for the given load signals.

        Returns a ladder rung name, or :data:`REJECT` when the queue is
        full.  Monotone: raising either argument never returns an earlier
        (more capable) ladder position.
        """
        index = max(
            self._depth_rung(depth_fraction),
            self._latency_rung(latency_ratio),
        )
        return SHED_LADDER[index]


class LatencyWindow:
    """Sliding window of recent request latencies with nearest-rank p99.

    Thread-safe; completions are recorded from batch worker callbacks
    while admissions read the estimate from the event loop.
    """

    def __init__(self, size: int = 128):
        if size < 1:
            raise ValueError("window size must be >= 1")
        self._samples: Deque[float] = deque(maxlen=size)
        self._lock = threading.Lock()

    def observe(self, latency_ms: float) -> None:
        """Record one completed request's latency."""
        with self._lock:
            self._samples.append(latency_ms)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile of the window (0.0 while empty)."""
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        rank = max(1, min(len(ordered), int(q * len(ordered) + 0.9999999)))
        return ordered[rank - 1]

    def p99(self) -> float:
        """The window's 99th-percentile latency in milliseconds."""
        return self.quantile(0.99)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


class AdmissionController:
    """Bounded admission with shed-by-rung accounting.

    ``admit`` charges one slot and returns the starting rung the request
    is entitled to; ``complete`` releases the slot and feeds the observed
    latency back into the policy's p99 signal.  Depth therefore counts
    *outstanding* requests — waiting in the micro-batcher plus in-flight
    in the batch executor — which is the quantity that bounds server
    memory.
    """

    def __init__(
        self,
        max_queue: int,
        slo_ms: float,
        policy: Optional[ShedPolicy] = None,
        latency_window: int = 128,
    ):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if slo_ms <= 0:
            raise ValueError("slo_ms must be > 0")
        self.max_queue = max_queue
        self.slo_ms = slo_ms
        self.policy = policy if policy is not None else ShedPolicy()
        self.latencies = LatencyWindow(latency_window)
        self._lock = threading.Lock()
        self._depth = 0
        self._admitted: Dict[str, int] = {}
        self._rejected = 0
        self._completed = 0

    # ------------------------------------------------------------------
    # Load signals
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Outstanding admitted requests (queued + in-flight)."""
        with self._lock:
            return self._depth

    def load_signals(self) -> Tuple[float, float]:
        """Current ``(depth_fraction, latency_ratio)`` policy inputs."""
        return (
            self.depth / self.max_queue,
            self.latencies.p99() / self.slo_ms,
        )

    # ------------------------------------------------------------------
    # The admission decision
    # ------------------------------------------------------------------
    def admit(self) -> str:
        """Charge one slot and return this request's starting rung.

        Raises :class:`AdmissionRejected` when the queue is full (the
        only condition that rejects).  The decision and the slot charge
        are atomic, so concurrent admissions cannot overshoot
        ``max_queue``.
        """
        latency_ratio = self.latencies.p99() / self.slo_ms
        metrics = get_metrics()
        with self._lock:
            rung = self.policy.rung_for(
                self._depth / self.max_queue, latency_ratio
            )
            if rung == REJECT:
                self._rejected += 1
                depth = self._depth
            else:
                self._depth += 1
                self._admitted[rung] = self._admitted.get(rung, 0) + 1
        if rung == REJECT:
            if metrics.enabled:
                metrics.counter("serving.rejected").inc()
                metrics.windowed_counter("serving.rejected").inc()
            raise AdmissionRejected(depth, self.max_queue)
        if metrics.enabled:
            metrics.counter("serving.admitted").inc()
            metrics.counter(f"serving.admitted.{rung}").inc()
            metrics.windowed_counter("serving.admitted").inc()
            if rung != "full":
                metrics.counter("serving.shed").inc()
                metrics.windowed_counter("serving.shed").inc()
            metrics.gauge("serving.queue_depth").set(self.depth)
        return rung

    def complete(self, latency_ms: Optional[float] = None) -> None:
        """Release one slot; feed the request's latency into the window."""
        with self._lock:
            if self._depth <= 0:
                raise ReproError(
                    "admission complete() without a matching admit()"
                )
            self._depth -= 1
            self._completed += 1
        if latency_ms is not None:
            self.latencies.observe(latency_ms)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge("serving.queue_depth").set(self.depth)
            # The exact p99 the shed policy acts on, refreshed on every
            # completion so a scrape sees what admission sees.
            metrics.gauge("serving.latency.p99_ms").set(
                self.latencies.p99()
            )
            if latency_ms is not None:
                metrics.histogram("serving.request.seconds").observe(
                    latency_ms / 1000.0
                )
                metrics.windowed_histogram(
                    "serving.request.seconds"
                ).observe(latency_ms / 1000.0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Admission counters: per-rung admits, rejects, completions."""
        with self._lock:
            admitted = dict(self._admitted)
            return {
                "depth": self._depth,
                "max_queue": self.max_queue,
                "admitted": admitted,
                "shed": sum(
                    count
                    for rung, count in admitted.items()
                    if rung != "full"
                ),
                "rejected": self._rejected,
                "completed": self._completed,
                "p99_ms": self.latencies.p99(),
            }

    @property
    def rung_mix(self) -> List[Tuple[str, int]]:
        """Admissions per rung in ladder order (for reports)."""
        with self._lock:
            admitted = dict(self._admitted)
        return [
            (rung, admitted.get(rung, 0)) for rung in DEGRADATION_LADDER
        ]
