"""Size/age-triggered micro-batching for the serving front-end.

Incoming requests are cheapest to disambiguate in small batches — the
batch layer amortizes pipeline fan-out and the shared relatedness cache
across documents — but a latency SLO forbids waiting for a full batch.
:class:`MicroBatcher` implements the classic compromise: a batch is
flushed as soon as it reaches ``max_batch`` documents (*size* trigger)
or as soon as its oldest member has waited ``window_ms`` (*age*
trigger).  On shutdown every queued item is flushed (*close* trigger) —
no document is ever dropped.

The batcher is a pure asyncio component: ``put`` is awaited from the
event loop, and the flush callback is an async callable that receives
the batch list.  Batches are single-flight — the flusher awaits each
flush before assembling the next one, so the admission queue (not an
internal buffer) is the only place requests wait.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Awaitable, Callable, List, Sequence

from repro.errors import ReproError
from repro.obs import get_metrics, log_event

_LOG = logging.getLogger("repro.serving")

#: Queue sentinel that wakes the flusher for shutdown.
_CLOSE = object()

#: Batch-size histogram buckets (documents per flush).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Flush reason labels, in the order they are tried.
FLUSH_REASONS = ("size", "age", "close")

FlushFn = Callable[[List[object]], Awaitable[None]]


class BatcherClosed(ReproError):
    """``put`` after ``close`` — the caller outlived the server."""


class MicroBatcher:
    """Group queued items into size- or age-triggered batches.

    ``flush`` is awaited once per batch with the items in arrival (FIFO)
    order; a failing flush is logged and must not kill the flusher, so
    callers that need per-item delivery guarantees (the server resolves
    per-request futures) must catch inside their own callback.
    """

    def __init__(
        self,
        flush: FlushFn,
        max_batch: int = 16,
        window_ms: float = 25.0,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if window_ms < 0:
            raise ValueError("window_ms must be >= 0")
        self._flush = flush
        self.max_batch = max_batch
        self.window_ms = window_ms
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task: "asyncio.Task[None]" = None  # type: ignore[assignment]
        self._closed = False
        #: Flushes per trigger reason (size / age / close).
        self.flush_counts = {reason: 0 for reason in FLUSH_REASONS}
        #: Total items flushed — equals items put once drained.
        self.items_flushed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "asyncio.Task[None]":
        """Spawn the flusher task on the running loop."""
        if self._task is not None:
            raise ReproError("MicroBatcher already started")
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="micro-batcher"
        )
        return self._task

    async def close(self) -> None:
        """Stop accepting items, flush everything queued, then return.

        Idempotent.  Every item accepted by :meth:`put` before the close
        is flushed — the lossless-shutdown guarantee the serving tests
        pin down.
        """
        if self._closed:
            if self._task is not None:
                await self._task
            return
        self._closed = True
        await self._queue.put(_CLOSE)
        if self._task is not None:
            await self._task

    async def put(self, item: object) -> None:
        """Enqueue one item for the next batch."""
        if self._closed:
            raise BatcherClosed("micro-batcher is closed")
        await self._queue.put(item)

    @property
    def pending(self) -> int:
        """Items queued but not yet picked into a batch."""
        return self._queue.qsize()

    # ------------------------------------------------------------------
    # The flusher
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        closing = False
        while not closing:
            item = await self._queue.get()
            if item is _CLOSE:
                break
            batch: List[object] = [item]
            deadline = loop.time() + self.window_ms / 1000.0
            reason = "age"
            while len(batch) < self.max_batch:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    item = await asyncio.wait_for(
                        self._queue.get(), timeout
                    )
                except asyncio.TimeoutError:
                    break
                if item is _CLOSE:
                    closing = True
                    break
                batch.append(item)
            if len(batch) >= self.max_batch:
                reason = "size"
            if closing:
                reason = "close"
            await self._safe_flush(batch, reason)
        # Anything still queued arrived before the close sentinel (put
        # refuses afterwards); drain it in max_batch chunks.
        leftovers: List[object] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not _CLOSE:
                leftovers.append(item)
        for start in range(0, len(leftovers), self.max_batch):
            await self._safe_flush(
                leftovers[start : start + self.max_batch], "close"
            )

    async def _safe_flush(
        self, batch: Sequence[object], reason: str
    ) -> None:
        self.flush_counts[reason] += 1
        self.items_flushed += len(batch)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("serving.batches").inc()
            metrics.counter(f"serving.batch.flush.{reason}").inc()
            metrics.histogram(
                "serving.batch.size", buckets=BATCH_SIZE_BUCKETS
            ).observe(float(len(batch)))
        try:
            await self._flush(list(batch))
        except Exception as exc:  # flusher must survive a bad batch
            _LOG.error(
                "micro-batch flush failed: %s: %s",
                type(exc).__name__,
                exc,
            )
            log_event(
                _LOG,
                "serving.flush_error",
                _level=logging.ERROR,
                reason=reason,
                batch=len(batch),
                error=f"{type(exc).__name__}: {exc}",
            )
