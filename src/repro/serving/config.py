"""Configuration of the online serving layer.

One frozen dataclass holds every serving knob: the listen address, the
admission-queue bound, the latency SLO that drives load shedding, the
micro-batch geometry, and the worker fan-out of the batch executor.  The
CLI ``serve`` command maps its flags onto this config one-to-one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError

#: Executors the serving batch path supports.  Process pools route the
#: admitted rung through :class:`~repro.obs.TraceContext` baggage (object
#: identity does not survive the pickle wall), so they require a picklable
#: ``pipeline_factory`` on the server.
SERVING_EXECUTORS: Tuple[str, ...] = ("serial", "thread", "process")


@dataclass(frozen=True)
class ServingConfig:
    """Every knob of :class:`~repro.serving.server.DisambiguationServer`.

    ``max_queue`` bounds *outstanding admitted* requests (queued plus
    in-flight) — the server never buffers more than this, whatever the
    arrival rate; excess traffic is shed by rung and finally rejected.
    ``slo_ms`` is the p99 latency objective: observed p99 above it shifts
    admission down the degradation ladder, and it doubles as the
    per-attempt soft deadline armed through :class:`repro.faults.Budget`.
    """

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (tests, loopback benchmarks).
    port: int = 8400
    #: Bound on outstanding admitted requests (queued + in-flight).
    max_queue: int = 64
    #: p99 latency objective in milliseconds.
    slo_ms: float = 1000.0
    #: Micro-batch flush triggers: size cap and age window.
    batch_max_docs: int = 16
    batch_window_ms: float = 25.0
    #: Worker threads of the per-batch :class:`~repro.core.batch.BatchRunner`.
    workers: int = 4
    executor: str = "thread"
    #: Queue-depth fractions at which admission degrades one rung
    #: (full -> no_coherence at the first, -> prior_only at the second).
    shed_depth_fractions: Tuple[float, float] = (0.5, 0.75)
    #: Observed-p99 / SLO ratios with the same meaning for latency.
    shed_latency_ratios: Tuple[float, float] = (1.0, 2.0)
    #: Sliding-window size of the latency estimator feeding the policy.
    latency_window: int = 128
    #: Head-sampling rate for healthy traces (1.0 keeps every trace;
    #: SLO-breaching and erroring requests are always kept — tail
    #: sampling is unconditional).
    trace_sample_rate: float = 1.0
    #: JSONL path full span trees are spooled to (``None`` disables the
    #: trace sink; spans are still recorded, then discarded on completion).
    trace_export: Optional[str] = None
    #: Trace-count bound of the JSONL spool.
    trace_export_max_traces: int = 10_000
    #: SLO objective: the good-request fraction the error budget is
    #: computed against (0.99 = "99% of requests good").
    slo_objective: float = 0.99
    #: Rolling window geometry for windowed serving metrics and the SLO
    #: burn rate.
    metrics_window_seconds: float = 60.0
    metrics_window_buckets: int = 12

    def __post_init__(self) -> None:
        if self.port < 0 or self.port > 65535:
            raise ConfigurationError("port must be in [0, 65535]")
        if self.max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")
        if self.slo_ms <= 0:
            raise ConfigurationError("slo_ms must be > 0")
        if self.batch_max_docs < 1:
            raise ConfigurationError("batch_max_docs must be >= 1")
        if self.batch_window_ms < 0:
            raise ConfigurationError("batch_window_ms must be >= 0")
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.executor not in SERVING_EXECUTORS:
            raise ConfigurationError(
                f"executor must be one of {SERVING_EXECUTORS}, "
                f"got {self.executor!r}"
            )
        lo_d, hi_d = self.shed_depth_fractions
        if not (0.0 < lo_d <= hi_d <= 1.0):
            raise ConfigurationError(
                "shed_depth_fractions must satisfy 0 < lo <= hi <= 1"
            )
        lo_r, hi_r = self.shed_latency_ratios
        if not (0.0 < lo_r <= hi_r):
            raise ConfigurationError(
                "shed_latency_ratios must satisfy 0 < lo <= hi"
            )
        if self.latency_window < 1:
            raise ConfigurationError("latency_window must be >= 1")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ConfigurationError(
                "trace_sample_rate must be in [0, 1]"
            )
        if self.trace_export_max_traces < 1:
            raise ConfigurationError(
                "trace_export_max_traces must be >= 1"
            )
        if not 0.0 < self.slo_objective < 1.0:
            raise ConfigurationError(
                "slo_objective must be in (0, 1)"
            )
        if self.metrics_window_seconds <= 0:
            raise ConfigurationError(
                "metrics_window_seconds must be > 0"
            )
        if self.metrics_window_buckets < 1:
            raise ConfigurationError(
                "metrics_window_buckets must be >= 1"
            )
