"""Wire protocol of the serving layer: JSON in, JSON out.

One request format serves both the HTTP body and the stdin-JSONL mode:

* ``{"doc_id": ..., "text": "..."}`` — raw text; the server tokenizes
  and runs NER against the KB dictionary (the interactive path);
* ``{"doc_id": ..., "tokens": [...], "mentions": [{"surface", "start",
  "end"}, ...]}`` — a pre-tokenized document with mention spans (the
  corpus-replay path; ``mentions`` may be omitted to run NER over the
  given tokens).

Responses carry the chosen entity and raw score per mention plus the
serving metadata the SLO story needs: the rung admission granted
(``admitted_rung``), the rung that actually produced the result
(``rung``, after any further degradation), the attempt count, and the
observed latency.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.text.tokenizer import tokenize
from repro.types import DisambiguationResult, Document, Mention


class ProtocolError(ReproError):
    """Malformed request payload — HTTP 400."""


def document_from_payload(payload: Dict, recognizer=None) -> Document:
    """Build the :class:`~repro.types.Document` a request describes.

    ``recognizer`` (a ``NamedEntityRecognizer``) is required for requests
    without explicit ``mentions`` — raw text and bare token lists run NER.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    doc_id = str(payload.get("doc_id", "doc"))
    if "tokens" in payload:
        raw_tokens = payload["tokens"]
        if not isinstance(raw_tokens, list) or not raw_tokens:
            raise ProtocolError("'tokens' must be a non-empty list")
        tokens = tuple(str(token) for token in raw_tokens)
    elif "text" in payload:
        text = str(payload["text"])
        if not text.strip():
            raise ProtocolError("'text' must be non-empty")
        tokens = tuple(tokenize(text))
    else:
        raise ProtocolError("request needs 'text' or 'tokens'")
    if "mentions" in payload:
        mentions: List[Mention] = []
        for row in payload["mentions"]:
            try:
                mention = Mention(
                    surface=str(row["surface"]),
                    start=int(row["start"]),
                    end=int(row["end"]),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ProtocolError(
                    f"malformed mention record: {exc}"
                ) from exc
            if mention.end > len(tokens):
                raise ProtocolError(
                    f"mention span {mention.start}:{mention.end} exceeds "
                    f"document length {len(tokens)}"
                )
            mentions.append(mention)
        return Document(
            doc_id=doc_id, tokens=tokens, mentions=tuple(mentions)
        )
    document = Document(doc_id=doc_id, tokens=tokens)
    if recognizer is None:
        raise ProtocolError(
            "no NER available: send explicit 'mentions' spans"
        )
    return recognizer.recognize(document)


def response_to_dict(
    result: DisambiguationResult,
    admitted_rung: str,
    latency_ms: Optional[float] = None,
    request_id: Optional[str] = None,
    trace_id: Optional[str] = None,
) -> Dict:
    """The JSON-serializable response for one disambiguated document."""
    payload: Dict = {
        "doc_id": result.doc_id,
        "rung": result.degradation_rung,
        "admitted_rung": admitted_rung,
        "attempts": result.attempts,
        "assignments": [
            {
                "surface": assignment.mention.surface,
                "start": assignment.mention.start,
                "end": assignment.mention.end,
                "entity": assignment.entity,
                "score": assignment.score,
            }
            for assignment in result.assignments
        ],
    }
    if latency_ms is not None:
        payload["latency_ms"] = latency_ms
    if request_id is not None:
        payload["request_id"] = request_id
    if trace_id is not None:
        payload["trace_id"] = trace_id
    return payload


def error_to_dict(error: BaseException, **extra) -> Dict:
    """A uniform JSON error body (429/400/500 responses, JSONL rows)."""
    payload: Dict = {
        "error": f"{type(error).__name__}: {error}",
    }
    payload.update(extra)
    return payload
