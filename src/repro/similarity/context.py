"""Mention context extraction.

On the mention side, AIDA uses all tokens of the entire input text — except
stopwords and the mention itself — as context (Section 3.3.4).  The context
is indexed by normalized token so that cover matching can retrieve token
positions in O(1) per keyphrase word.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.text.stopwords import is_stopword
from repro.types import Document, Mention
from repro.utils.text import normalize_token


class DocumentContext:
    """Position index over a document's content tokens.

    ``positions(word)`` returns the sorted token offsets where the normalized
    *word* occurs, excluding stopwords and (optionally) the tokens covered by
    a given mention.
    """

    def __init__(
        self,
        document: Document,
        exclude_mention: Optional[Mention] = None,
    ):
        self.document = document
        self.mention = exclude_mention
        self._excluded: Set[int] = set()
        if exclude_mention is not None:
            self._excluded.update(
                range(exclude_mention.start, exclude_mention.end)
            )
        self._index: Dict[str, List[int]] = {}
        for offset, token in enumerate(document.tokens):
            if offset in self._excluded:
                continue
            if is_stopword(token):
                continue
            norm = normalize_token(token)
            if not norm:
                continue
            self._index.setdefault(norm, []).append(offset)

    def positions(self, word: str) -> List[int]:
        """Sorted token offsets of the normalized word."""
        return self._index.get(word, [])

    def index_items(self):
        """All (word, positions) pairs of the index, insertion-ordered.

        The compiled scoring layer consumes this to translate the index
        into vocabulary-id posting lists once per context; the position
        lists are the index's own and must not be mutated.
        """
        return self._index.items()

    def __contains__(self, word: str) -> bool:
        return word in self._index

    @property
    def vocabulary(self) -> List[str]:
        """All distinct context words, sorted."""
        return sorted(self._index)

    def occurrences(
        self, words: Sequence[str]
    ) -> List[Tuple[int, str]]:
        """All (position, word) pairs for the given words, position-sorted."""
        hits: List[Tuple[int, str]] = []
        for word in set(words):
            for pos in self._index.get(word, []):
                hits.append((pos, word))
        hits.sort()
        return hits

    def term_counts(self) -> Dict[str, int]:
        """Bag-of-words counts of the context (for cosine baselines)."""
        return {word: len(positions) for word, positions in self._index.items()}

    @property
    def mention_center(self) -> Optional[float]:
        """Token-offset midpoint of the excluded mention, if any."""
        if self.mention is None:
            return None
        return (self.mention.start + self.mention.end - 1) / 2.0
