"""Mention-entity similarity features (Section 3.3)."""

from repro.similarity.context import DocumentContext
from repro.similarity.prior import PopularityPrior
from repro.similarity.keyphrase_match import (
    Cover,
    KeyphraseSimilarity,
    phrase_cover,
    score_phrase,
)

__all__ = [
    "DocumentContext",
    "PopularityPrior",
    "Cover",
    "KeyphraseSimilarity",
    "phrase_cover",
    "score_phrase",
]
