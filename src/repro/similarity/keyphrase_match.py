"""Keyphrase cover matching and the mention-entity similarity score.

Keyphrases may occur only partially in an input text ("Grammy Award winner"
vs. "Grammy winner"), so AIDA matches individual keyphrase words and rewards
their proximity (Section 3.3.4).  For each keyphrase the *cover* is the
shortest token window containing a maximal number of the phrase's words.
The phrase score (Eq. 3.4) is::

    score(q) = z * ( sum_{w in cover} weight(w) / sum_{w in q} weight(w) )^2
    z        = (# matching words) / (length of cover)

and the mention-entity similarity (Eq. 3.6) sums the scores of all the
entity's keyphrases over the mention's document context.

Two scoring paths produce the same numbers (within float summation
order): the reference string/dict implementation below, and the compiled
integer-array path of :mod:`repro.compiled`, enabled by passing a
:class:`~repro.compiled.keyphrases.CompiledKeyphrases` to
:class:`KeyphraseSimilarity`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.kb.keyphrases import KeyphraseStore, Phrase
from repro.obs import get_metrics
from repro.similarity.context import DocumentContext
from repro.types import EntityId
from repro.weights.model import WeightModel


@dataclass(frozen=True)
class Cover:
    """The shortest window covering the maximal subset of a phrase's words.

    ``start``/``end`` are inclusive token offsets into the document;
    ``matched_words`` are the distinct phrase words found in the window.
    """

    start: int
    end: int
    matched_words: Tuple[str, ...]

    @property
    def length(self) -> int:
        """Window length in tokens (inclusive)."""
        return self.end - self.start + 1

    @property
    def match_count(self) -> int:
        """Number of distinct phrase words matched."""
        return len(self.matched_words)


def phrase_cover(
    context: DocumentContext, phrase: Sequence[str]
) -> Optional[Cover]:
    """Find the cover of *phrase* in the context, or None if no word occurs.

    Classic minimum-window-over-positions sweep: gather all positions of any
    phrase word, then slide a two-pointer window over the position-sorted
    hits, tracking the smallest window containing all *present* distinct
    words (words absent from the document cannot be covered and only reduce
    the score through the weight ratio).
    """
    distinct = list(dict.fromkeys(phrase))  # stable dedup
    hits = context.occurrences(distinct)
    if not hits:
        return None
    present = {word for _pos, word in hits}
    needed = len(present)
    best: Optional[Tuple[int, int]] = None
    counts: Dict[str, int] = {}
    covered = 0
    left = 0
    for right, (_pos_r, word_r) in enumerate(hits):
        counts[word_r] = counts.get(word_r, 0) + 1
        if counts[word_r] == 1:
            covered += 1
        while covered == needed:
            window = (hits[left][0], hits[right][0])
            if best is None or (window[1] - window[0]) < (best[1] - best[0]):
                best = window
            word_l = hits[left][1]
            counts[word_l] -= 1
            if counts[word_l] == 0:
                covered -= 1
            left += 1
    assert best is not None  # needed >= 1 and all hits seen
    return Cover(
        start=best[0], end=best[1], matched_words=tuple(sorted(present))
    )


def score_covered_phrase(
    cover: Cover,
    phrase: Sequence[str],
    word_weights: Mapping[str, float],
) -> float:
    """Eq. 3.4 given an already-computed cover (never re-sweeps)."""
    total_weight = sum(word_weights.get(word, 0.0) for word in set(phrase))
    if total_weight <= 0.0:
        return 0.0
    matched_weight = sum(
        word_weights.get(word, 0.0) for word in cover.matched_words
    )
    z = cover.match_count / cover.length
    ratio = matched_weight / total_weight
    return z * ratio * ratio


def score_phrase(
    context: DocumentContext,
    phrase: Sequence[str],
    word_weights: Mapping[str, float],
) -> float:
    """Eq. 3.4 — score of a (partially) matching phrase in the context."""
    cover = phrase_cover(context, phrase)
    if cover is None:
        return 0.0
    return score_covered_phrase(cover, phrase, word_weights)


class KeyphraseSimilarity:
    """Mention-entity similarity via keyphrase cover matching (Eq. 3.6).

    Parameters
    ----------
    store:
        Keyphrase store providing each entity's phrases.
    weights:
        Weight model; keyphrase words are weighted by NPMI (default) or by
        collection-wide IDF (``weight_scheme="idf"``), as Eq. 3.4 allows.
    max_keyphrases:
        Optional cap on phrases per entity (most frequent first), used by
        the Chapter 5 experiments to balance popular entities.
    distance_discount:
        When positive, phrase scores are damped by the cover's distance to
        the mention: ``score / (1 + discount * distance / doc_length)``.
        Section 3.3.4 reports experimenting with exactly this and finding
        no improvement; the option is kept for the ablation.
    compiled:
        Optional :class:`~repro.compiled.keyphrases.CompiledKeyphrases`
        sharing this scorer's store/weights.  When given, scoring runs on
        the compiled integer-array path (score-equivalent within 1e-9);
        its scheme and cap must match this scorer's.
    """

    def __init__(
        self,
        store: KeyphraseStore,
        weights: WeightModel,
        weight_scheme: str = "npmi",
        max_keyphrases: Optional[int] = None,
        distance_discount: float = 0.0,
        compiled=None,
    ):
        if weight_scheme not in ("npmi", "idf"):
            raise ValueError(f"unknown weight scheme: {weight_scheme!r}")
        if distance_discount < 0.0:
            raise ValueError("distance_discount must be non-negative")
        if compiled is not None:
            if compiled.scheme != weight_scheme:
                raise ValueError(
                    "compiled model scheme "
                    f"{compiled.scheme!r} != {weight_scheme!r}"
                )
            if compiled.max_keyphrases != max_keyphrases:
                raise ValueError(
                    "compiled model max_keyphrases "
                    f"{compiled.max_keyphrases!r} != {max_keyphrases!r}"
                )
        self._store = store
        self._weights = weights
        self._scheme = weight_scheme
        self._max_keyphrases = max_keyphrases
        self.distance_discount = distance_discount
        self.compiled = compiled
        #: (context, IndexedContext) of the most recent compiled scoring
        #: call; identity-checked, so a stale entry can only miss.
        self._indexed_cache: Optional[Tuple[DocumentContext, object]] = None

    def entity_phrases(self, entity_id: EntityId) -> List[Phrase]:
        """The (possibly capped) keyphrases of an entity."""
        return self._store.top_keyphrases(
            entity_id, limit=self._max_keyphrases
        )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def simscore(
        self, context: DocumentContext, entity_id: EntityId
    ) -> float:
        """Aggregate partial-match score of all entity keyphrases."""
        if self.compiled is not None:
            return self._compiled_simscore(
                self._indexed(context), entity_id
            )
        return self._reference_simscore(context, entity_id)

    def simscores(
        self, context: DocumentContext, entity_ids: Sequence[EntityId]
    ) -> Dict[EntityId, float]:
        """simscore for every candidate entity.

        On the compiled path the context is posting-indexed **once** and
        shared by every candidate, instead of re-hashing phrase words per
        (mention, candidate) pair.
        """
        if self.compiled is not None:
            indexed = self._indexed(context)
            return {
                eid: self._compiled_simscore(indexed, eid)
                for eid in entity_ids
            }
        return {
            eid: self._reference_simscore(context, eid)
            for eid in entity_ids
        }

    def _reference_simscore(
        self, context: DocumentContext, entity_id: EntityId
    ) -> float:
        word_weights = self._weights.keyword_weights(
            entity_id, scheme=self._scheme
        )
        total = 0.0
        scored = 0
        skipped = 0
        for phrase in self.entity_phrases(entity_id):
            if not any(word in context for word in phrase):
                skipped += 1
                continue  # no word present: score is zero, skip the sweep
            scored += 1
            cover = phrase_cover(context, phrase)
            score = score_covered_phrase(cover, phrase, word_weights)
            if score > 0.0 and self.distance_discount > 0.0:
                score *= self._proximity_factor(context, cover)
            total += score
        _count_phrases(scored, skipped)
        return total

    def _compiled_simscore(self, indexed, entity_id: EntityId) -> float:
        from repro.compiled.scoring import simscore_arrays

        compiled = self.compiled
        score, scored, skipped = simscore_arrays(
            indexed,
            compiled.sim_model(entity_id),
            distance_discount=self.distance_discount,
            use_numpy=compiled.use_numpy,
        )
        _count_phrases(scored, skipped)
        return score

    def _indexed(self, context: DocumentContext):
        """The posting index of *context*, built once and identity-cached.

        The cache is a single atomically-swapped tuple: safe under the
        shared-pipeline thread mode (a concurrent scorer at worst misses
        and rebuilds, never reads the wrong context's index).
        """
        cached = self._indexed_cache
        if cached is not None and cached[0] is context:
            return cached[1]
        indexed = self.compiled.index_context(context)
        self._indexed_cache = (context, indexed)
        return indexed

    def _proximity_factor(
        self, context: DocumentContext, cover: Cover
    ) -> float:
        """Damping by cover-to-mention distance (1.0 without a mention)."""
        center = context.mention_center
        if center is None:
            return 1.0
        doc_length = max(len(context.document.tokens), 1)
        cover_center = (cover.start + cover.end) / 2.0
        distance = abs(cover_center - center)
        return 1.0 / (
            1.0 + self.distance_discount * distance / doc_length
        )


def _count_phrases(scored: int, skipped: int) -> None:
    """Publish the similarity phrase counters (no-op when metrics off)."""
    metrics = get_metrics()
    if metrics.enabled:
        if scored:
            metrics.counter("similarity.phrases_scored").inc(scored)
        if skipped:
            metrics.counter("similarity.phrases_skipped").inc(skipped)
