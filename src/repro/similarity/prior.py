"""Popularity prior (Section 3.3.3).

The prior P(entity | name) is estimated from how often a surface form is used
as a link anchor for each entity in the encyclopedia.  The dictionary stores
the raw anchor counts; this wrapper adds the lookups the pipeline needs
(best candidate, full distribution, dominance test input).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.kb.knowledge_base import KnowledgeBase
from repro.types import EntityId


class PopularityPrior:
    """Anchor-frequency popularity prior over a knowledge base."""

    def __init__(self, kb: KnowledgeBase):
        self._kb = kb

    def prior(self, mention_surface: str, entity_id: EntityId) -> float:
        """P(entity | mention surface) from anchor statistics."""
        return self._kb.prior(mention_surface, entity_id)

    def distribution(self, mention_surface: str) -> Dict[EntityId, float]:
        """Prior distribution over all candidates of the surface."""
        return self._kb.prior_distribution(mention_surface)

    def best(
        self, mention_surface: str
    ) -> Optional[Tuple[EntityId, float]]:
        """The most probable candidate and its prior, or None."""
        dist = self.distribution(mention_surface)
        if not dist:
            return None
        entity_id = max(sorted(dist), key=lambda eid: dist[eid])
        return entity_id, dist[entity_id]

    def ranked(self, mention_surface: str) -> List[Tuple[EntityId, float]]:
        """Candidates sorted by descending prior (ties broken by id)."""
        dist = self.distribution(mention_surface)
        return sorted(dist.items(), key=lambda kv: (-kv[1], kv[0]))
