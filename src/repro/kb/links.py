"""Inter-entity link graph.

Wikipedia's inter-article links are the basis of the Milne–Witten relatedness
measure (Eq. 3.7) and of the "superdocument" used for keyphrase MI weights
(Section 4.3.1).  The graph is directed: an edge (a, b) means a's article
links to b's article.  Inlink sets are exposed as frozensets so relatedness
code can intersect them cheaply.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.types import EntityId


class LinkGraph:
    """Directed entity-to-entity link graph with in/out indexes."""

    def __init__(self) -> None:
        self._out: Dict[EntityId, Set[EntityId]] = {}
        self._in: Dict[EntityId, Set[EntityId]] = {}
        self._edge_count = 0
        self._inlink_cache: Dict[EntityId, FrozenSet[EntityId]] = {}

    def add_link(self, source: EntityId, target: EntityId) -> bool:
        """Add a directed link; self-links are ignored. Returns True if new."""
        if source == target:
            return False
        outs = self._out.setdefault(source, set())
        if target in outs:
            return False
        outs.add(target)
        self._in.setdefault(target, set()).add(source)
        self._inlink_cache.pop(target, None)
        self._edge_count += 1
        return True

    def add_links(self, edges: Iterable[Tuple[EntityId, EntityId]]) -> None:
        """Add many directed links."""
        for source, target in edges:
            self.add_link(source, target)

    @property
    def edge_count(self) -> int:
        """Number of distinct directed edges."""
        return self._edge_count

    def node_count(self) -> int:
        """Number of nodes with at least one edge."""
        return len(set(self._out) | set(self._in))

    def outlinks(self, entity_id: EntityId) -> FrozenSet[EntityId]:
        """Targets the entity links to."""
        return frozenset(self._out.get(entity_id, set()))

    def inlinks(self, entity_id: EntityId) -> FrozenSet[EntityId]:
        """Sources linking to the entity (cached frozenset)."""
        cached = self._inlink_cache.get(entity_id)
        if cached is None:
            cached = frozenset(self._in.get(entity_id, set()))
            self._inlink_cache[entity_id] = cached
        return cached

    def inlink_count(self, entity_id: EntityId) -> int:
        """Number of inlinks of the entity."""
        return len(self._in.get(entity_id, set()))

    def outlink_count(self, entity_id: EntityId) -> int:
        """Number of outlinks of the entity."""
        return len(self._out.get(entity_id, set()))

    def has_link(self, source: EntityId, target: EntityId) -> bool:
        """Whether the directed edge source -> target exists."""
        return target in self._out.get(source, set())

    def shared_inlinks(self, a: EntityId, b: EntityId) -> int:
        """Size of the intersection of the two inlink sets."""
        ins_a = self._in.get(a, set())
        ins_b = self._in.get(b, set())
        if len(ins_a) > len(ins_b):
            ins_a, ins_b = ins_b, ins_a
        return sum(1 for node in ins_a if node in ins_b)

    def degree_histogram(self) -> Dict[int, int]:
        """Histogram of inlink counts over all nodes (for dataset stats)."""
        hist: Dict[int, int] = {}
        for node in set(self._out) | set(self._in):
            count = self.inlink_count(node)
            hist[count] = hist.get(count, 0) + 1
        return hist

    def nodes(self) -> List[EntityId]:
        """All nodes, sorted."""
        return sorted(set(self._out) | set(self._in))
