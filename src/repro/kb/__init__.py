"""YAGO-style knowledge base substrate.

The knowledge base (Section 2.3) provides everything the disambiguation
algorithms consume:

* an entity repository ``E`` (:class:`~repro.kb.entity.Entity`),
* a type taxonomy with a WordNet-like backbone (:mod:`repro.kb.schema`),
* an SPO triple store with pattern queries (:mod:`repro.kb.triples`),
* a name dictionary ``D ⊂ (N × E)`` built from titles, redirects,
  disambiguation pages and link anchors (:mod:`repro.kb.dictionary`),
* the inter-entity link graph used by Milne–Witten coherence
  (:mod:`repro.kb.links`),
* per-entity keyphrases with IDF/MI weights (:mod:`repro.kb.keyphrases`).

:class:`~repro.kb.knowledge_base.KnowledgeBase` is the facade tying these
together; :mod:`repro.kb.builder` constructs one from a synthetic Wikipedia.
"""

from repro.kb.entity import Entity
from repro.kb.schema import Taxonomy
from repro.kb.triples import Triple, TripleStore
from repro.kb.dictionary import Dictionary, NameRecord
from repro.kb.links import LinkGraph
from repro.kb.keyphrases import KeyphraseStore, WeightedPhrase
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.io import load_knowledge_base, save_knowledge_base
from repro.kb.external import ExternalDescription, ExternalEntityImporter

__all__ = [
    "Entity",
    "Taxonomy",
    "Triple",
    "TripleStore",
    "Dictionary",
    "NameRecord",
    "LinkGraph",
    "KeyphraseStore",
    "WeightedPhrase",
    "KnowledgeBase",
    "load_knowledge_base",
    "save_knowledge_base",
    "ExternalDescription",
    "ExternalEntityImporter",
]
