"""The knowledge-base facade.

Ties together the entity repository, taxonomy, triple store, name dictionary,
link graph, and keyphrase store into the single object the disambiguation
pipelines consume (Figure 2.1).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.errors import UnknownEntityError
from repro.kb.dictionary import Dictionary
from repro.kb.entity import Entity
from repro.kb.keyphrases import KeyphraseStore, Phrase
from repro.kb.links import LinkGraph
from repro.kb.schema import Taxonomy
from repro.kb.triples import TripleStore
from repro.types import EntityId


class KnowledgeBase:
    """Entity repository E, dictionary D, and per-entity features F.

    Instances are built by :mod:`repro.kb.builder` (from a synthetic
    Wikipedia) or assembled manually in tests.
    """

    def __init__(
        self,
        taxonomy: Optional[Taxonomy] = None,
        dictionary: Optional[Dictionary] = None,
        links: Optional[LinkGraph] = None,
        keyphrases: Optional[KeyphraseStore] = None,
        triples: Optional[TripleStore] = None,
    ):
        self.taxonomy = taxonomy if taxonomy is not None else Taxonomy()
        self.dictionary = dictionary if dictionary is not None else Dictionary()
        self.links = links if links is not None else LinkGraph()
        self.keyphrases = (
            keyphrases if keyphrases is not None else KeyphraseStore()
        )
        self.triples = triples if triples is not None else TripleStore()
        self._entities: Dict[EntityId, Entity] = {}

    # ------------------------------------------------------------------
    # Entity repository
    # ------------------------------------------------------------------
    def add_entity(self, entity: Entity) -> None:
        """Register an entity; its canonical name enters the dictionary."""
        self._entities[entity.entity_id] = entity
        self.keyphrases.ensure_entity(entity.entity_id)
        self.dictionary.add_name(
            entity.canonical_name, entity.entity_id, source="title"
        )
        for type_name in entity.types:
            self.triples.add(entity.entity_id, "type", type_name)

    def __contains__(self, entity_id: EntityId) -> bool:
        return entity_id in self._entities

    def __len__(self) -> int:
        return len(self._entities)

    @property
    def entity_count(self) -> int:
        """N — the total number of entities, used by IDF/NPMI/MW formulas."""
        return len(self._entities)

    def entity(self, entity_id: EntityId) -> Entity:
        """The entity record; raises UnknownEntityError when absent."""
        found = self._entities.get(entity_id)
        if found is None:
            raise UnknownEntityError(entity_id)
        return found

    def maybe_entity(self, entity_id: EntityId) -> Optional[Entity]:
        """The entity record, or None when absent."""
        return self._entities.get(entity_id)

    def entity_ids(self) -> List[EntityId]:
        """All entity ids, sorted."""
        return sorted(self._entities)

    def entities(self) -> List[Entity]:
        """All entity records in id order."""
        return [self._entities[eid] for eid in self.entity_ids()]

    # ------------------------------------------------------------------
    # Dictionary / prior
    # ------------------------------------------------------------------
    def candidates(self, mention_surface: str) -> List[EntityId]:
        """Candidate entities for a mention, per the case-matching rules."""
        return [
            eid
            for eid in self.dictionary.candidates(mention_surface)
            if eid in self._entities
        ]

    def prior(self, mention_surface: str, entity_id: EntityId) -> float:
        """Popularity prior P(entity | mention surface)."""
        return self.dictionary.prior(mention_surface, entity_id)

    def prior_distribution(
        self, mention_surface: str
    ) -> Dict[EntityId, float]:
        """Prior distribution over the candidates of a surface form."""
        dist = self.dictionary.prior_distribution(mention_surface)
        return {eid: p for eid, p in dist.items() if eid in self._entities}

    # ------------------------------------------------------------------
    # Types / categories
    # ------------------------------------------------------------------
    def types_of(self, entity_id: EntityId) -> FrozenSet[str]:
        """All types of an entity, expanded through the taxonomy."""
        entity = self.entity(entity_id)
        return self.taxonomy.expand(entity.types)

    def entities_of_type(self, type_name: str) -> List[EntityId]:
        """All entities whose (expanded) types include *type_name*."""
        wanted = {type_name} | set(self.taxonomy.descendants(type_name))
        result = []
        for eid in self.entity_ids():
            if wanted.intersection(self._entities[eid].types):
                result.append(eid)
        return result

    def coarse_class(self, entity_id: EntityId) -> str:
        """The coarse NER-style class (person/organization/...) of an
        entity, derived from its first leaf type."""
        entity = self.entity(entity_id)
        if not entity.types:
            return "entity"
        return self.taxonomy.coarse_class(entity.types[0])

    # ------------------------------------------------------------------
    # Links / keyphrases
    # ------------------------------------------------------------------
    def inlinks(self, entity_id: EntityId) -> FrozenSet[EntityId]:
        """Entities whose articles link to this one."""
        return self.links.inlinks(entity_id)

    def inlink_count(self, entity_id: EntityId) -> int:
        """Number of inlinks of the entity."""
        return self.links.inlink_count(entity_id)

    def entity_keyphrases(self, entity_id: EntityId) -> List[Phrase]:
        """Distinct keyphrases of the entity."""
        return self.keyphrases.keyphrases(entity_id)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def with_keyphrases(self, keyphrases: KeyphraseStore) -> "KnowledgeBase":
        """A shallow view of this KB with a different keyphrase store.

        Used by Chapter 5 to layer dynamically harvested keyphrases on top of
        the static KB without mutating it.  Entities, dictionary, links and
        triples are shared.
        """
        view = KnowledgeBase(
            taxonomy=self.taxonomy,
            dictionary=self.dictionary,
            links=self.links,
            keyphrases=keyphrases,
            triples=self.triples,
        )
        view._entities = self._entities
        return view

    def editable_copy(self) -> "KnowledgeBase":
        """A view safe to *extend* without touching this KB.

        Entities, dictionary, triples and keyphrases are copied (the
        mutable surfaces of entity registration); the taxonomy and link
        graph are shared, since extensions never rewrite them.  Used by
        the out-of-encyclopedia importer and the emerging-entity
        registrar to stage new entries.
        """
        import copy as _copy

        view = KnowledgeBase(
            taxonomy=self.taxonomy,
            dictionary=_copy.deepcopy(self.dictionary),
            links=self.links,
            keyphrases=self.keyphrases.copy(),
            triples=_copy.deepcopy(self.triples),
        )
        view._entities = dict(self._entities)
        return view

    def describe(self) -> Dict[str, int]:
        """Summary statistics (for dataset-property tables)."""
        return {
            "entities": len(self._entities),
            "names": len(self.dictionary),
            "links": self.links.edge_count,
            "triples": len(self.triples),
            "keyphrase_entities": self.keyphrases.entity_count,
        }
