"""Name-entity dictionary with AIDA's candidate-matching rules.

The dictionary ``D ⊂ (N × E)`` (Section 2.2.1) maps surface names to candidate
entities.  Entries carry their provenance (article title, redirect,
disambiguation page, link anchor) and per-(name, entity) anchor counts, from
which the popularity prior (Section 3.3.3) is estimated.

Matching follows Section 3.3.2: names of three characters or fewer are matched
case-sensitively (to keep acronyms like "US" apart from the word "us"); longer
names are matched after upper-casing both mention and name, so the all-caps
mention "APPLE" retrieves candidates registered under "Apple".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import DictionaryError
from repro.types import EntityId

#: Provenance labels for dictionary entries.
SOURCE_TITLE = "title"
SOURCE_REDIRECT = "redirect"
SOURCE_DISAMBIGUATION = "disambiguation"
SOURCE_ANCHOR = "anchor"

VALID_SOURCES = frozenset(
    {SOURCE_TITLE, SOURCE_REDIRECT, SOURCE_DISAMBIGUATION, SOURCE_ANCHOR}
)

#: Names at most this long (in characters) are matched case-sensitively.
CASE_SENSITIVE_MAX_LEN = 3


def match_key(name: str) -> str:
    """Canonical lookup key for a name under AIDA's matching rules."""
    if len(name) <= CASE_SENSITIVE_MAX_LEN:
        return name
    return name.upper()


@dataclass
class NameRecord:
    """All dictionary information for one surface name."""

    name: str
    #: entity -> provenance sources under which this (name, entity) pair
    #: entered the dictionary.
    entities: Dict[EntityId, Set[str]] = field(default_factory=dict)
    #: entity -> number of times this name was used as a link anchor for it.
    anchor_counts: Dict[EntityId, int] = field(default_factory=dict)

    @property
    def total_anchor_count(self) -> int:
        """Total anchor occurrences of the name."""
        return sum(self.anchor_counts.values())

    def prior(self, entity_id: EntityId) -> float:
        """Anchor-frequency estimate of P(entity | name) (Section 3.3.3)."""
        total = self.total_anchor_count
        if total == 0:
            # No anchor evidence: uniform over the registered candidates.
            return 1.0 / len(self.entities) if self.entities else 0.0
        return self.anchor_counts.get(entity_id, 0) / total

    def prior_distribution(self) -> Dict[EntityId, float]:
        return {eid: self.prior(eid) for eid in self.entities}


class Dictionary:
    """Mutable name→entity dictionary with anchor statistics."""

    def __init__(self) -> None:
        self._records: Dict[str, NameRecord] = {}
        self._names_of_entity: Dict[EntityId, Set[str]] = {}

    def __len__(self) -> int:
        return len(self._records)

    def add_name(
        self,
        name: str,
        entity_id: EntityId,
        source: str,
        anchor_count: int = 0,
    ) -> None:
        """Register *name* as referring to *entity_id*.

        ``anchor_count`` adds to the (name, entity) anchor tally regardless of
        source; pass it when ingesting anchor statistics.
        """
        if source not in VALID_SOURCES:
            raise DictionaryError(f"unknown dictionary source: {source!r}")
        if not name.strip():
            raise DictionaryError("cannot register an empty name")
        if anchor_count < 0:
            raise DictionaryError("anchor_count must be non-negative")
        key = match_key(name)
        record = self._records.get(key)
        if record is None:
            record = NameRecord(name=name)
            self._records[key] = record
        record.entities.setdefault(entity_id, set()).add(source)
        if anchor_count:
            record.anchor_counts[entity_id] = (
                record.anchor_counts.get(entity_id, 0) + anchor_count
            )
        self._names_of_entity.setdefault(entity_id, set()).add(name)

    def record_for(self, name: str) -> Optional[NameRecord]:
        """The name record matching *name* under the case rules, if any."""
        return self._records.get(match_key(name))

    def candidates(self, mention_surface: str) -> List[EntityId]:
        """Candidate entities ``E_m`` for a mention surface form.

        An entity is a candidate if any of its registered names matches the
        mention fully (Section 3.3.2).  Returns a sorted list; empty when the
        dictionary has no entry, in which case the mention is trivially an
        out-of-KB entity.
        """
        record = self.record_for(mention_surface)
        if record is None:
            return []
        return sorted(record.entities)

    def prior(self, mention_surface: str, entity_id: EntityId) -> float:
        """Popularity prior P(entity | mention) from anchor frequencies."""
        record = self.record_for(mention_surface)
        if record is None:
            return 0.0
        return record.prior(entity_id)

    def prior_distribution(
        self, mention_surface: str
    ) -> Dict[EntityId, float]:
        record = self.record_for(mention_surface)
        if record is None:
            return {}
        return record.prior_distribution()

    def names_of(self, entity_id: EntityId) -> List[str]:
        """All surface names registered for an entity."""
        return sorted(self._names_of_entity.get(entity_id, set()))

    def all_names(self) -> List[str]:
        """All registered names (original spellings)."""
        return sorted(record.name for record in self._records.values())

    def ambiguity(self, mention_surface: str) -> int:
        """Number of candidate entities for a surface form."""
        return len(self.candidates(mention_surface))

    def merge_counts(self, counts: Mapping[Tuple[str, EntityId], int]) -> None:
        """Bulk-add anchor counts for (name, entity) pairs."""
        for (name, entity_id), count in counts.items():
            self.add_name(name, entity_id, SOURCE_ANCHOR, anchor_count=count)

    def entity_ids(self) -> Iterable[EntityId]:
        """All entities with at least one registered name."""
        return sorted(self._names_of_entity)
