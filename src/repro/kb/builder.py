"""Construct a :class:`KnowledgeBase` from an encyclopedia dump.

Mirrors YAGO's extraction architecture (Section 2.3.3): every encyclopedic
article becomes an entity; the name dictionary is harvested from titles,
redirects, disambiguation pages and link anchors; the link graph comes from
inter-article links; keyphrases come from each article's link anchors,
category names and citation titles, extended with the titles of articles
linking to the entity (Section 3.3.4).

The dump format is :class:`ArticleRecord` — a plain data object produced by
:mod:`repro.datagen.wikipedia` (or hand-built in tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kb.dictionary import (
    SOURCE_ANCHOR,
    SOURCE_DISAMBIGUATION,
    SOURCE_REDIRECT,
)
from repro.kb.entity import Entity
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.schema import Taxonomy
from repro.types import EntityId
from repro.utils.text import phrase_tokens


@dataclass
class ArticleRecord:
    """One article of the (synthetic) encyclopedia.

    Attributes
    ----------
    entity:
        The canonical entity this article describes.
    redirects:
        Alternative names redirecting to this article.
    disambiguation_names:
        Ambiguous names whose disambiguation page lists this article.
    anchors:
        Outgoing links: (anchor text, target entity) -> occurrence count.
        These populate both the link graph and the dictionary's anchor
        statistics, and the anchor texts become keyphrases of *this* entity.
    categories:
        Category names of the article; they become keyphrases and triples.
    citations:
        Citation titles; they become keyphrases.
    weighted_phrases:
        Keyphrases with explicit occurrence counts (phrase text -> count).
        Real encyclopedia keyphrase counts track how often a phrase is
        used for the entity across the collection; the emerging-entity
        model difference (Algorithm 2) depends on these counts being on a
        usage scale, not flat.
    facts:
        Extra SPO facts (predicate, object) about the entity.
    """

    entity: Entity
    redirects: List[str] = field(default_factory=list)
    disambiguation_names: List[str] = field(default_factory=list)
    anchors: Dict[Tuple[str, EntityId], int] = field(default_factory=dict)
    categories: List[str] = field(default_factory=list)
    citations: List[str] = field(default_factory=list)
    weighted_phrases: Dict[str, int] = field(default_factory=dict)
    facts: List[Tuple[str, str]] = field(default_factory=list)


class KnowledgeBaseBuilder:
    """Accumulates article records and assembles the knowledge base."""

    def __init__(self, taxonomy: Optional[Taxonomy] = None):
        self._taxonomy = taxonomy
        self._articles: Dict[EntityId, ArticleRecord] = {}

    def add_article(self, record: ArticleRecord) -> None:
        """Queue one article record (later records replace earlier ones for the same entity)."""
        self._articles[record.entity.entity_id] = record

    def add_articles(self, records: Sequence[ArticleRecord]) -> None:
        """Queue several article records."""
        for record in records:
            self.add_article(record)

    @property
    def article_count(self) -> int:
        """Number of queued articles."""
        return len(self._articles)

    def build(self) -> KnowledgeBase:
        """Assemble the knowledge base from all accumulated articles."""
        kb = KnowledgeBase(taxonomy=self._taxonomy)
        for record in self._sorted_articles():
            kb.add_entity(record.entity)
        for record in self._sorted_articles():
            self._ingest_names(kb, record)
            self._ingest_links_and_anchors(kb, record)
            self._ingest_facts(kb, record)
        # Keyphrases need the link graph complete: titles of linking
        # articles are keyphrases of the linked entity.
        for record in self._sorted_articles():
            self._ingest_keyphrases(kb, record)
        return kb

    def _sorted_articles(self) -> List[ArticleRecord]:
        return [self._articles[eid] for eid in sorted(self._articles)]

    def _ingest_names(self, kb: KnowledgeBase, record: ArticleRecord) -> None:
        eid = record.entity.entity_id
        for redirect in record.redirects:
            kb.dictionary.add_name(redirect, eid, SOURCE_REDIRECT)
        for name in record.disambiguation_names:
            kb.dictionary.add_name(name, eid, SOURCE_DISAMBIGUATION)

    def _ingest_links_and_anchors(
        self, kb: KnowledgeBase, record: ArticleRecord
    ) -> None:
        eid = record.entity.entity_id
        for (anchor_text, target), count in sorted(record.anchors.items()):
            if target not in kb:
                continue
            kb.links.add_link(eid, target)
            kb.dictionary.add_name(
                anchor_text, target, SOURCE_ANCHOR, anchor_count=count
            )

    def _ingest_facts(self, kb: KnowledgeBase, record: ArticleRecord) -> None:
        eid = record.entity.entity_id
        for category in record.categories:
            kb.triples.add(eid, "category", category)
        for predicate, obj in record.facts:
            kb.triples.add(eid, predicate, obj)

    def _ingest_keyphrases(
        self, kb: KnowledgeBase, record: ArticleRecord
    ) -> None:
        eid = record.entity.entity_id
        # Own article: anchor texts, categories, citation titles.
        for (anchor_text, _target), count in sorted(record.anchors.items()):
            kb.keyphrases.add_keyphrase(
                eid, phrase_tokens(anchor_text), count
            )
        for category in record.categories:
            kb.keyphrases.add_keyphrase(eid, phrase_tokens(category))
        for citation in record.citations:
            kb.keyphrases.add_keyphrase(eid, phrase_tokens(citation))
        for phrase_text, count in sorted(record.weighted_phrases.items()):
            kb.keyphrases.add_keyphrase(
                eid, phrase_tokens(phrase_text), count
            )
        # Titles of articles linking to this entity.
        for linker in sorted(kb.links.inlinks(eid)):
            linker_record = self._articles.get(linker)
            if linker_record is None:
                continue
            title = linker_record.entity.canonical_name
            kb.keyphrases.add_keyphrase(eid, phrase_tokens(title))


def build_knowledge_base(
    records: Sequence[ArticleRecord],
    taxonomy: Optional[Taxonomy] = None,
) -> KnowledgeBase:
    """Convenience wrapper: build a KB from article records in one call."""
    builder = KnowledgeBaseBuilder(taxonomy=taxonomy)
    builder.add_articles(records)
    return builder.build()
