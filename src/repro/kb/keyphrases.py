"""Per-entity keyphrase store.

Keyphrases characterize entities (Section 3.3.4): they are mined from an
entity's article (link anchors, category names, citation titles) and — in
Chapter 5 — harvested dynamically from news.  The store keeps, per entity,
the multiset of keyphrases, plus entity-level document frequencies for phrases
and their constituent words.  Weight computation (IDF, MI, NPMI) lives in
:mod:`repro.weights` and consumes these counts.

A phrase is represented as a tuple of normalized tokens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.types import EntityId

#: A keyphrase: an ordered tuple of normalized word tokens.
Phrase = Tuple[str, ...]


@dataclass(frozen=True)
class WeightedPhrase:
    """A keyphrase together with its entity-specific weight."""

    phrase: Phrase
    weight: float

    @property
    def text(self) -> str:
        """The phrase as a space-joined string."""
        return " ".join(self.phrase)


class KeyphraseStore:
    """Keyphrase multisets per entity with global document frequencies.

    Document frequency is entity-level, matching Eq. 3.5: ``df(k)`` is the
    number of entities having keyphrase *k* (phrase df) or having at least
    one keyphrase containing token *k* (word df).
    """

    def __init__(self) -> None:
        self._phrases: Dict[EntityId, Dict[Phrase, int]] = {}
        self._words: Dict[EntityId, Dict[str, int]] = {}
        self._phrase_df: Dict[Phrase, int] = {}
        self._word_df: Dict[str, int] = {}
        self._entities_with_word: Dict[str, Set[EntityId]] = {}
        self._entities_with_phrase: Dict[Phrase, Set[EntityId]] = {}

    def __len__(self) -> int:
        return len(self._phrases)

    def __contains__(self, entity_id: EntityId) -> bool:
        return entity_id in self._phrases

    @property
    def entity_count(self) -> int:
        """Number of registered entities."""
        return len(self._phrases)

    def ensure_entity(self, entity_id: EntityId) -> None:
        """Register an entity even if it (still) has no keyphrases."""
        self._phrases.setdefault(entity_id, {})
        self._words.setdefault(entity_id, {})

    def add_keyphrase(
        self, entity_id: EntityId, phrase: Iterable[str], count: int = 1
    ) -> None:
        """Add *count* occurrences of a keyphrase to an entity's article."""
        phrase_t: Phrase = tuple(phrase)
        if not phrase_t or count <= 0:
            return
        self.ensure_entity(entity_id)
        entity_phrases = self._phrases[entity_id]
        if phrase_t not in entity_phrases:
            self._phrase_df[phrase_t] = self._phrase_df.get(phrase_t, 0) + 1
            self._entities_with_phrase.setdefault(phrase_t, set()).add(
                entity_id
            )
        entity_phrases[phrase_t] = entity_phrases.get(phrase_t, 0) + count
        entity_words = self._words[entity_id]
        for word in phrase_t:
            if word not in entity_words:
                self._word_df[word] = self._word_df.get(word, 0) + 1
                self._entities_with_word.setdefault(word, set()).add(
                    entity_id
                )
            entity_words[word] = entity_words.get(word, 0) + count

    def keyphrases(self, entity_id: EntityId) -> List[Phrase]:
        """Distinct keyphrases of an entity (sorted for determinism)."""
        return sorted(self._phrases.get(entity_id, {}))

    def keyphrase_counts(self, entity_id: EntityId) -> Dict[Phrase, int]:
        """Phrase -> occurrence count for the entity."""
        return dict(self._phrases.get(entity_id, {}))

    def keywords(self, entity_id: EntityId) -> List[str]:
        """Distinct constituent words of an entity's keyphrases."""
        return sorted(self._words.get(entity_id, {}))

    def keyword_counts(self, entity_id: EntityId) -> Dict[str, int]:
        """Word -> occurrence count for the entity."""
        return dict(self._words.get(entity_id, {}))

    def has_word(self, entity_id: EntityId, word: str) -> bool:
        """Whether the entity has a keyphrase containing *word*."""
        return word in self._words.get(entity_id, {})

    def has_phrase(self, entity_id: EntityId, phrase: Phrase) -> bool:
        """Whether the entity has the exact keyphrase."""
        return phrase in self._phrases.get(entity_id, {})

    def phrase_df(self, phrase: Phrase) -> int:
        """Number of entities having this exact keyphrase."""
        return self._phrase_df.get(phrase, 0)

    def word_df(self, word: str) -> int:
        """Number of entities having a keyphrase that contains *word*."""
        return self._word_df.get(word, 0)

    def entities_with_word(self, word: str) -> FrozenSet[EntityId]:
        """Entities having a keyphrase containing *word*."""
        return frozenset(self._entities_with_word.get(word, set()))

    def entities_with_phrase(self, phrase: Phrase) -> FrozenSet[EntityId]:
        """Entities having the exact keyphrase."""
        return frozenset(self._entities_with_phrase.get(phrase, set()))

    def entity_ids(self) -> List[EntityId]:
        """All registered entity ids, sorted."""
        return sorted(self._phrases)

    def vocabulary(self) -> List[str]:
        """All distinct keywords across all entities."""
        return sorted(self._word_df)

    def copy(self) -> "KeyphraseStore":
        """Deep-copy the store (used when layering dynamic keyphrases on top
        of the static KB-derived ones without mutating the KB)."""
        clone = KeyphraseStore()
        for entity_id, phrases in self._phrases.items():
            clone.ensure_entity(entity_id)
            for phrase, count in phrases.items():
                clone.add_keyphrase(entity_id, phrase, count)
        return clone

    def restricted_to(
        self, entity_ids: Iterable[EntityId]
    ) -> "KeyphraseStore":
        """A new store containing only the given entities."""
        wanted = set(entity_ids)
        clone = KeyphraseStore()
        for entity_id in wanted:
            if entity_id not in self._phrases:
                continue
            clone.ensure_entity(entity_id)
            for phrase, count in self._phrases[entity_id].items():
                clone.add_keyphrase(entity_id, phrase, count)
        return clone

    def top_keyphrases(
        self, entity_id: EntityId, limit: Optional[int] = None
    ) -> List[Phrase]:
        """Keyphrases ordered by occurrence count (desc), then lexically.

        Chapter 5 caps the number of keyphrases per entity to balance popular
        entities against long-tail ones; pass ``limit`` for that behaviour.
        """
        counted = self._phrases.get(entity_id, {})
        ordered = sorted(counted.items(), key=lambda kv: (-kv[1], kv[0]))
        if limit is not None:
            ordered = ordered[:limit]
        return [phrase for phrase, _count in ordered]
