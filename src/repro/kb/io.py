"""Knowledge-base serialization.

Saves a :class:`~repro.kb.knowledge_base.KnowledgeBase` to a directory of
TSV files and loads it back — the interchange format real KB tooling
(YAGO's own distribution is TSV triples) uses, so a generated KB can be
inspected, versioned, and reused without regenerating the world.

Layout::

    <dir>/entities.tsv     entity_id  canonical_name  types(|-sep)  domain  popularity
    <dir>/names.tsv        name  entity_id  source  anchor_count
    <dir>/links.tsv        source_id  target_id
    <dir>/keyphrases.tsv   entity_id  phrase(space-sep tokens)  count
    <dir>/triples.tsv      subject  predicate  object
    <dir>/taxonomy.tsv     type  parent

Fields are tab-separated; tabs and newlines never occur in generated
values, and loading validates the column counts.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Tuple

from repro.errors import KnowledgeBaseError
from repro.kb.entity import Entity
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.schema import ROOT_TYPE, Taxonomy

_FILES = (
    "entities.tsv",
    "names.tsv",
    "links.tsv",
    "keyphrases.tsv",
    "triples.tsv",
    "taxonomy.tsv",
)


def _write_rows(path: str, rows: Iterable[Tuple[str, ...]]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            for field in row:
                if "\t" in field or "\n" in field:
                    raise KnowledgeBaseError(
                        f"field contains a separator: {field!r}"
                    )
            handle.write("\t".join(row) + "\n")


def _read_rows(path: str, columns: int) -> List[Tuple[str, ...]]:
    rows: List[Tuple[str, ...]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = tuple(line.split("\t"))
            if len(parts) != columns:
                raise KnowledgeBaseError(
                    f"{path}:{line_number}: expected {columns} columns, "
                    f"got {len(parts)}"
                )
            rows.append(parts)
    return rows


def save_knowledge_base(kb: KnowledgeBase, directory: str) -> None:
    """Write the KB to *directory* (created if missing)."""
    os.makedirs(directory, exist_ok=True)

    _write_rows(
        os.path.join(directory, "entities.tsv"),
        (
            (
                entity.entity_id,
                entity.canonical_name,
                "|".join(entity.types),
                entity.domain,
                repr(entity.popularity),
            )
            for entity in kb.entities()
        ),
    )

    def name_rows():
        for name in kb.dictionary.all_names():
            record = kb.dictionary.record_for(name)
            if record is None:
                continue
            for entity_id in sorted(record.entities):
                for source in sorted(record.entities[entity_id]):
                    # The anchor tally is a per-(name, entity) value;
                    # emit it on the "anchor" row only, so loading does
                    # not multiply it by the number of sources.
                    count = (
                        record.anchor_counts.get(entity_id, 0)
                        if source == "anchor"
                        else 0
                    )
                    yield (record.name, entity_id, source, str(count))

    _write_rows(os.path.join(directory, "names.tsv"), name_rows())

    def link_rows():
        for source in kb.links.nodes():
            for target in sorted(kb.links.outlinks(source)):
                yield (source, target)

    _write_rows(os.path.join(directory, "links.tsv"), link_rows())

    def keyphrase_rows():
        for entity_id in kb.keyphrases.entity_ids():
            counts = kb.keyphrases.keyphrase_counts(entity_id)
            for phrase in sorted(counts):
                yield (entity_id, " ".join(phrase), str(counts[phrase]))

    _write_rows(
        os.path.join(directory, "keyphrases.tsv"), keyphrase_rows()
    )

    _write_rows(
        os.path.join(directory, "triples.tsv"),
        (triple.as_tuple() for triple in kb.triples.match()),
    )

    def taxonomy_rows():
        for type_name in kb.taxonomy.types:
            if type_name == ROOT_TYPE:
                continue
            for parent in kb.taxonomy.parents(type_name):
                yield (type_name, parent)

    _write_rows(os.path.join(directory, "taxonomy.tsv"), taxonomy_rows())


def load_knowledge_base(directory: str) -> KnowledgeBase:
    """Load a KB previously written by :func:`save_knowledge_base`."""
    for filename in _FILES:
        path = os.path.join(directory, filename)
        if not os.path.exists(path):
            raise KnowledgeBaseError(f"missing KB file: {path}")

    hierarchy: Dict[str, List[str]] = {}
    for type_name, parent in _read_rows(
        os.path.join(directory, "taxonomy.tsv"), 2
    ):
        hierarchy.setdefault(type_name, []).append(parent)
    taxonomy = Taxonomy(
        {name: tuple(parents) for name, parents in hierarchy.items()}
    )

    kb = KnowledgeBase(taxonomy=taxonomy)
    for entity_id, name, types, domain, popularity in _read_rows(
        os.path.join(directory, "entities.tsv"), 5
    ):
        kb.add_entity(
            Entity(
                entity_id=entity_id,
                canonical_name=name,
                types=tuple(t for t in types.split("|") if t),
                domain=domain,
                popularity=float(popularity),
            )
        )

    for name, entity_id, source, anchor_count in _read_rows(
        os.path.join(directory, "names.tsv"), 4
    ):
        kb.dictionary.add_name(
            name, entity_id, source=source, anchor_count=int(anchor_count)
        )

    for source, target in _read_rows(
        os.path.join(directory, "links.tsv"), 2
    ):
        kb.links.add_link(source, target)

    for entity_id, phrase_text, count in _read_rows(
        os.path.join(directory, "keyphrases.tsv"), 3
    ):
        kb.keyphrases.add_keyphrase(
            entity_id, tuple(phrase_text.split(" ")), int(count)
        )

    for subject, predicate, obj in _read_rows(
        os.path.join(directory, "triples.tsv"), 3
    ):
        kb.triples.add(subject, predicate, obj)

    return kb


def kb_fingerprint(directory: str) -> str:
    """A cheap content fingerprint of a TSV knowledge-base directory.

    Hashes the (name, size, mtime_ns) of every KB file — enough to detect
    any regeneration or edit without reading the data.  Used to key
    caches of KB-derived artifacts (LSH sketch exports, snapshots).
    """
    import hashlib

    digest = hashlib.sha256()
    for filename in _FILES:
        path = os.path.join(directory, filename)
        try:
            info = os.stat(path)
        except OSError as exc:
            raise KnowledgeBaseError(
                f"missing knowledge base file: {path}"
            ) from exc
        digest.update(
            f"{filename}:{info.st_size}:{info.st_mtime_ns}\n".encode()
        )
    return digest.hexdigest()


# Snapshot support lives in its own module; re-exported here so that
# ``repro.kb.io`` remains the single entry point for KB persistence.
# The import sits at the bottom to keep the module graph acyclic
# (snapshot.py never imports io.py).
from repro.kb.snapshot import (  # noqa: E402  (deliberate re-export)
    Snapshot,
    SnapshotError,
    SnapshotPipelineFactory,
    build_snapshot,
    inspect_snapshot,
    load_snapshot,
)
