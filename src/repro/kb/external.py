"""Out-of-encyclopedia entity import (Section 4.1).

KORE's headline property is that it needs no link structure: keyphrases
"can also be harvested for non-Wikipedia entities — for example, keyphrases
for researchers can be found on their personal homepages, keyphrases for
small bands or not-so-popular songs can be found on social Websites like
last.fm".  This module turns such free-text descriptions into first-class
entities of a knowledge base *view*: keyphrases are extracted with the
Appendix-A chunker, the entity enters the dictionary under its names, and
keyphrase-based relatedness (KORE/KWCS/KPCS) and disambiguation work on it
immediately — while the link-based Milne–Witten measure stays blind to it,
exactly the contrast the chapter draws.
"""

from __future__ import annotations


from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import KnowledgeBaseError
from repro.kb.dictionary import SOURCE_REDIRECT
from repro.kb.entity import Entity
from repro.kb.knowledge_base import KnowledgeBase
from repro.text.chunker import KeyphraseChunker
from repro.text.tokenizer import tokenize
from repro.types import EntityId


@dataclass(frozen=True)
class ExternalDescription:
    """A textual description of an entity from outside the encyclopedia.

    ``entity_id`` must not collide with an existing KB entity.  ``text``
    is the raw description (homepage, community page); ``extra_phrases``
    are hand-curated keyphrases added on top of the extracted ones (tag
    lists, genre labels).
    """

    entity_id: EntityId
    canonical_name: str
    text: str
    types: Tuple[str, ...] = ()
    aliases: Tuple[str, ...] = ()
    extra_phrases: Tuple[str, ...] = ()


class ExternalEntityImporter:
    """Imports external descriptions into a KB view.

    The importer never mutates the source KB: :meth:`build_view` returns a
    new :class:`KnowledgeBase` sharing the taxonomy/links/triples but with
    its own entity map, dictionary additions, and a copied keyphrase store
    carrying the imported entities' phrases.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        chunker: Optional[KeyphraseChunker] = None,
        min_phrase_count: int = 1,
    ):
        if min_phrase_count < 1:
            raise KnowledgeBaseError("min_phrase_count must be >= 1")
        self._kb = kb
        self._chunker = chunker if chunker is not None else KeyphraseChunker()
        self.min_phrase_count = min_phrase_count
        self._descriptions: List[ExternalDescription] = []

    def add(self, description: ExternalDescription) -> None:
        """Queue one external description for import."""
        if description.entity_id in self._kb:
            raise KnowledgeBaseError(
                f"entity {description.entity_id!r} already exists in the KB"
            )
        if any(
            d.entity_id == description.entity_id
            for d in self._descriptions
        ):
            raise KnowledgeBaseError(
                f"duplicate external entity: {description.entity_id!r}"
            )
        self._descriptions.append(description)

    def add_all(
        self, descriptions: Sequence[ExternalDescription]
    ) -> None:
        """Queue several external descriptions."""
        for description in descriptions:
            self.add(description)

    # ------------------------------------------------------------------
    # Keyphrase extraction
    # ------------------------------------------------------------------
    def extract_phrases(
        self, description: ExternalDescription
    ) -> Dict[Tuple[str, ...], int]:
        """Keyphrase candidates of one description, with counts."""
        tokens = tokenize(description.text)
        counts: Dict[Tuple[str, ...], int] = {}
        for phrase in self._chunker.extract(tokens):
            counts[phrase] = counts.get(phrase, 0) + 1
        for extra in description.extra_phrases:
            phrase = tuple(tok.lower() for tok in extra.split() if tok)
            if phrase:
                counts[phrase] = counts.get(phrase, 0) + 1
        # The entity's own name tokens are identity, not context.
        own = {tok.lower() for tok in description.canonical_name.split()}
        return {
            phrase: count
            for phrase, count in counts.items()
            if count >= self.min_phrase_count and not set(phrase) <= own
        }

    # ------------------------------------------------------------------
    # View assembly
    # ------------------------------------------------------------------
    def build_view(self) -> KnowledgeBase:
        """A KB view containing the base entities plus the imports."""
        view = self._kb.editable_copy()
        store = view.keyphrases
        for description in self._descriptions:
            entity = Entity(
                entity_id=description.entity_id,
                canonical_name=description.canonical_name,
                types=description.types,
            )
            # add_entity registers the title name and the type triples.
            view.add_entity(entity)
            for alias in description.aliases:
                view.dictionary.add_name(
                    alias, entity.entity_id, source=SOURCE_REDIRECT
                )
            for phrase, count in sorted(
                self.extract_phrases(description).items()
            ):
                store.add_keyphrase(entity.entity_id, phrase, count)
        return view

    @property
    def pending_count(self) -> int:
        """Number of queued descriptions."""
        return len(self._descriptions)
