"""Knowledge-base analysis utilities.

Computes the descriptive statistics the paper's dataset-property tables
and discussion sections rely on: name-ambiguity histograms, inlink
distributions (the long tail that motivates KORE — "entities with ≤50
incoming links make up more than 80% of Wikipedia", Section 4.6.2), and
keyphrase coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.kb.knowledge_base import KnowledgeBase


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-ish summary of an integer distribution."""

    count: int
    minimum: int
    median: int
    mean: float
    maximum: int

    @staticmethod
    def of(values: List[int]) -> "DistributionSummary":
        """Build the summary from a list of integers."""
        if not values:
            return DistributionSummary(0, 0, 0, 0.0, 0)
        ordered = sorted(values)
        return DistributionSummary(
            count=len(ordered),
            minimum=ordered[0],
            median=ordered[len(ordered) // 2],
            mean=sum(ordered) / len(ordered),
            maximum=ordered[-1],
        )


def ambiguity_histogram(kb: KnowledgeBase) -> Dict[int, int]:
    """#candidates -> how many dictionary names have that many."""
    histogram: Dict[int, int] = {}
    for name in kb.dictionary.all_names():
        count = len(kb.candidates(name))
        histogram[count] = histogram.get(count, 0) + 1
    return histogram


def mean_ambiguity(kb: KnowledgeBase) -> float:
    """Average candidates per dictionary name (with >= 1 candidate)."""
    counts = [
        len(kb.candidates(name))
        for name in kb.dictionary.all_names()
    ]
    counts = [c for c in counts if c > 0]
    return sum(counts) / len(counts) if counts else 0.0


def inlink_summary(kb: KnowledgeBase) -> DistributionSummary:
    """Distribution summary of per-entity inlink counts."""
    return DistributionSummary.of(
        [kb.inlink_count(eid) for eid in kb.entity_ids()]
    )


def link_poor_fraction(kb: KnowledgeBase, max_links: int) -> float:
    """Fraction of entities with at most *max_links* inlinks — the long
    tail KORE is built for."""
    entities = kb.entity_ids()
    if not entities:
        return 0.0
    poor = sum(
        1 for eid in entities if kb.inlink_count(eid) <= max_links
    )
    return poor / len(entities)


def keyphrase_summary(kb: KnowledgeBase) -> DistributionSummary:
    """Distribution of distinct keyphrases per entity."""
    return DistributionSummary.of(
        [
            len(kb.keyphrases.keyphrases(eid))
            for eid in kb.entity_ids()
        ]
    )


def keyphrase_length_summary(kb: KnowledgeBase) -> DistributionSummary:
    """Distribution of keyphrase lengths in words (paper: avg 2.5)."""
    lengths: List[int] = []
    for entity_id in kb.entity_ids():
        lengths.extend(
            len(phrase)
            for phrase in kb.keyphrases.keyphrases(entity_id)
        )
    return DistributionSummary.of(lengths)


def type_distribution(kb: KnowledgeBase) -> Dict[str, int]:
    """Coarse class -> entity count."""
    counts: Dict[str, int] = {}
    for entity_id in kb.entity_ids():
        coarse = kb.coarse_class(entity_id)
        counts[coarse] = counts.get(coarse, 0) + 1
    return counts


def describe(kb: KnowledgeBase) -> Dict[str, object]:
    """One-call overview combining all of the above."""
    inlinks = inlink_summary(kb)
    keyphrases = keyphrase_summary(kb)
    return {
        "entities": len(kb),
        "dictionary_names": len(kb.dictionary),
        "mean_ambiguity": round(mean_ambiguity(kb), 2),
        "inlinks_mean": round(inlinks.mean, 2),
        "inlinks_max": inlinks.maximum,
        "link_poor_fraction_le_5": round(link_poor_fraction(kb, 5), 3),
        "keyphrases_per_entity_mean": round(keyphrases.mean, 2),
        "keyphrase_length_mean": round(
            keyphrase_length_summary(kb).mean, 2
        ),
        "type_distribution": type_distribution(kb),
    }
