"""Type taxonomy with a WordNet-like backbone.

YAGO (Section 2.3.3) maps every entity into semantic classes arranged in a
subclass hierarchy rooted in a small upper ontology.  The taxonomy here is a
DAG of type names with ``subclass_of`` edges; it supports transitive closure
queries ("all super-types of *musician*"), which entity search's category
dimension (Chapter 6) and named-entity classification rely on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import KnowledgeBaseError

#: The root of the taxonomy; everything is a subclass of it.
ROOT_TYPE = "entity"

#: Default upper ontology used by the synthetic world.  Maps each type to its
#: direct super-types.  Leaf types (musician, stadium, ...) are what entities
#: carry; coarse NER-style classes (person, organization, location, ...) sit
#: in the middle.
DEFAULT_TYPE_HIERARCHY: Mapping[str, Tuple[str, ...]] = {
    "person": (ROOT_TYPE,),
    "organization": (ROOT_TYPE,),
    "location": (ROOT_TYPE,),
    "artifact": (ROOT_TYPE,),
    "event": (ROOT_TYPE,),
    "musician": ("person",),
    "singer": ("musician",),
    "guitarist": ("musician",),
    "politician": ("person",),
    "athlete": ("person",),
    "footballer": ("athlete",),
    "boxer": ("athlete",),
    "scientist": ("person",),
    "actor": ("person",),
    "executive": ("person",),
    "writer": ("person",),
    "company": ("organization",),
    "band": ("organization",),
    "sports_team": ("organization",),
    "football_club": ("sports_team",),
    "government": ("organization",),
    "party": ("organization",),
    "city": ("location",),
    "country": ("location",),
    "region": ("location",),
    "stadium": ("location",),
    "song": ("artifact",),
    "album": ("artifact",),
    "film": ("artifact",),
    "product": ("artifact",),
    "video_game": ("artifact",),
    "tv_series": ("artifact",),
    "sports_event": ("event",),
    "election": ("event",),
    "disaster": ("event",),
}


class Taxonomy:
    """A DAG of type names with subclass-of edges.

    The taxonomy is built once from a mapping ``type -> direct super-types``
    and is immutable afterwards.  Cycle-free-ness is validated at build time.
    """

    def __init__(
        self, hierarchy: Optional[Mapping[str, Iterable[str]]] = None
    ):
        raw = dict(hierarchy) if hierarchy is not None else dict(
            DEFAULT_TYPE_HIERARCHY
        )
        self._parents: Dict[str, Tuple[str, ...]] = {ROOT_TYPE: ()}
        for type_name, supers in raw.items():
            self._parents[type_name] = tuple(supers)
        self._children: Dict[str, Set[str]] = {t: set() for t in self._parents}
        for type_name, supers in self._parents.items():
            for sup in supers:
                if sup not in self._parents:
                    raise KnowledgeBaseError(
                        f"type {type_name!r} references unknown super-type "
                        f"{sup!r}"
                    )
                self._children[sup].add(type_name)
        self._ancestors_cache: Dict[str, FrozenSet[str]] = {}
        self._validate_acyclic()

    def _validate_acyclic(self) -> None:
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(node: str, stack: List[str]) -> None:
            if state.get(node) == 1:
                return
            if state.get(node) == 0:
                cycle = " -> ".join(stack + [node])
                raise KnowledgeBaseError(f"taxonomy has a cycle: {cycle}")
            state[node] = 0
            for parent in self._parents[node]:
                visit(parent, stack + [node])
            state[node] = 1

        for type_name in self._parents:
            visit(type_name, [])

    def __contains__(self, type_name: str) -> bool:
        return type_name in self._parents

    def __len__(self) -> int:
        return len(self._parents)

    @property
    def types(self) -> List[str]:
        """All type names, sorted."""
        return sorted(self._parents)

    def parents(self, type_name: str) -> Tuple[str, ...]:
        """Direct super-types of *type_name*."""
        self._require(type_name)
        return self._parents[type_name]

    def children(self, type_name: str) -> FrozenSet[str]:
        """Direct sub-types of *type_name*."""
        self._require(type_name)
        return frozenset(self._children[type_name])

    def ancestors(self, type_name: str) -> FrozenSet[str]:
        """All transitive super-types of *type_name*, excluding itself."""
        self._require(type_name)
        cached = self._ancestors_cache.get(type_name)
        if cached is not None:
            return cached
        result: Set[str] = set()
        frontier = list(self._parents[type_name])
        while frontier:
            node = frontier.pop()
            if node in result:
                continue
            result.add(node)
            frontier.extend(self._parents[node])
        frozen = frozenset(result)
        self._ancestors_cache[type_name] = frozen
        return frozen

    def descendants(self, type_name: str) -> FrozenSet[str]:
        """All transitive sub-types of *type_name*, excluding itself."""
        self._require(type_name)
        result: Set[str] = set()
        frontier = list(self._children[type_name])
        while frontier:
            node = frontier.pop()
            if node in result:
                continue
            result.add(node)
            frontier.extend(self._children[node])
        return frozenset(result)

    def is_subtype(self, type_name: str, super_type: str) -> bool:
        """True if *type_name* equals or transitively specializes
        *super_type*."""
        if type_name == super_type:
            return type_name in self._parents
        return super_type in self.ancestors(type_name)

    def expand(self, leaf_types: Iterable[str]) -> FrozenSet[str]:
        """All types implied by the given leaf types (incl. themselves)."""
        result: Set[str] = set()
        for leaf in leaf_types:
            result.add(leaf)
            result.update(self.ancestors(leaf))
        return frozenset(result)

    def coarse_class(self, type_name: str) -> str:
        """Map a type to its coarse NER-style class (direct child of root).

        Returns :data:`ROOT_TYPE` for the root itself.
        """
        self._require(type_name)
        if type_name == ROOT_TYPE:
            return ROOT_TYPE
        current = type_name
        while True:
            parents = self._parents[current]
            if not parents:
                return current
            if ROOT_TYPE in parents:
                return current
            current = parents[0]

    def _require(self, type_name: str) -> None:
        if type_name not in self._parents:
            raise KnowledgeBaseError(f"unknown type: {type_name!r}")
