"""Entity records of the knowledge base.

An entity corresponds to one encyclopedic article (Section 2.3.3): it has a
canonical id, a canonical (title) name, one or more semantic types from the
taxonomy, and bookkeeping attributes used by the experiments (popularity rank,
domain of the synthetic world it was generated from).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from repro.types import EntityId


@dataclass(frozen=True)
class Entity:
    """One canonical entity.

    Attributes
    ----------
    entity_id:
        Unique opaque identifier, e.g. ``"Bob_Dylan"``.
    canonical_name:
        The article title, e.g. ``"Bob Dylan"``.
    types:
        Leaf types from the taxonomy, e.g. ``("musician",)``.  The taxonomy
        expands these to all transitive super-types.
    domain:
        Topical domain the synthetic generator placed this entity in
        (``"music"``, ``"sports"``, ...); real KBs would not have this field
        but the relatedness gold standard and some analyses group by it.
    popularity:
        A positive popularity mass (Zipf-distributed in the synthetic world).
        Drives anchor counts and article length.
    """

    entity_id: EntityId
    canonical_name: str
    types: Tuple[str, ...] = ()
    domain: str = ""
    popularity: float = 1.0

    def __post_init__(self) -> None:
        if not self.entity_id:
            raise ValueError("entity_id must be non-empty")
        if self.popularity <= 0:
            raise ValueError("popularity must be positive")

    def has_type(self, type_name: str) -> bool:
        """Whether *type_name* is among the leaf types."""
        return type_name in self.types


@dataclass(frozen=True)
class EntitySet:
    """An immutable set of entity ids with convenience accessors."""

    ids: FrozenSet[EntityId] = field(default_factory=frozenset)

    @staticmethod
    def of(*ids: EntityId) -> "EntitySet":
        """Build an EntitySet from entity ids."""
        return EntitySet(frozenset(ids))

    def __contains__(self, entity_id: EntityId) -> bool:
        return entity_id in self.ids

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self):
        return iter(sorted(self.ids))

    def union(self, other: "EntitySet") -> "EntitySet":
        """Set union with another EntitySet."""
        return EntitySet(self.ids | other.ids)

    def intersection(self, other: "EntitySet") -> "EntitySet":
        """Set intersection with another EntitySet."""
        return EntitySet(self.ids & other.ids)
