"""Zero-copy mmap-able knowledge-base snapshots.

A snapshot is a single, versioned, checksummed file holding everything a
serving worker needs — the entity repository, mention dictionary with
anchor priors, link graph (CSR), keyphrase store, the interned
:class:`~repro.compiled.vocabulary.Vocabulary`, the compiled flat-array
keyphrase models of :mod:`repro.compiled` (sim and KORE), and the
precomputed LSH sketch tables — laid out so that N workers or replicas
``mmap`` one read-only image and share its pages.  Attaching to a
snapshot is O(header + table-of-contents); entity records, dictionary
rows, link sets, and compiled models are decoded lazily on first touch
and the backing arrays are served directly from the mapping as
``memoryview`` windows, so per-worker private memory stays near zero.

File layout::

    [64-byte header] [section]* [TOC]

    header   magic "RKBSNAP\\0", format version, flags,
             TOC offset/length/CRC32, header CRC32
    section  64-byte-aligned named byte range, CRC32-checksummed
    TOC      JSON: [{name, offset, length, crc32}, ...]

Writes are atomic: the image is assembled in a temp file in the target
directory, fsynced, and ``os.rename``d over the destination — readers
either see the old complete image or the new complete image, never a
torn one (existing mappings keep serving the old inode).  Loading
verifies the header, TOC, and every section checksum by default; any
mismatch raises :class:`SnapshotError`, which is classified permanent —
a corrupt snapshot can never produce a silently wrong answer.

All variable-order content is serialized in sorted order, which is also
the order every in-memory consumer iterates in, so a build → load →
rebuild round trip is byte-stable and snapshot-backed pipelines are
bit-identical to in-memory ones.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib
from array import array
from bisect import bisect_left
from collections.abc import Mapping as MappingABC
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Mapping
from typing import Optional, Sequence, Set, Tuple

from repro.compiled.context import IndexedContext
from repro.compiled.keyphrases import (
    CompiledKeyphrases,
    KoreEntityModel,
    SimEntityModel,
)
from repro.compiled.scoring import HAVE_NUMPY
from repro.compiled.vocabulary import UNKNOWN, Vocabulary
from repro.errors import KnowledgeBaseError, PermanentError, UnknownEntityError
from repro.faults.injector import get_injector
from repro.kb.dictionary import (
    SOURCE_ANCHOR,
    SOURCE_DISAMBIGUATION,
    SOURCE_REDIRECT,
    SOURCE_TITLE,
    Dictionary,
    NameRecord,
    match_key,
)
from repro.kb.entity import Entity
from repro.kb.keyphrases import KeyphraseStore, Phrase
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.links import LinkGraph
from repro.kb.schema import ROOT_TYPE, Taxonomy
from repro.kb.triples import TripleStore
from repro.types import EntityId
from repro.weights.model import WeightModel

MAGIC = b"RKBSNAP\x00"
#: Version written by this build.  Version 2 added the optional ``emb/*``
#: embedding sections; images carrying none are byte-compatible with
#: version 1, so the reader accepts both.
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

#: ``magic, version, flags, toc_offset, toc_length, toc_crc, header_crc``.
_HEADER = struct.Struct("<8sIIQQII")
HEADER_SIZE = 64
_ALIGN = 64

#: Dictionary provenance sources as stable bitmask positions.
_SOURCE_BITS = (
    (SOURCE_TITLE, 1),
    (SOURCE_REDIRECT, 2),
    (SOURCE_DISAMBIGUATION, 4),
    (SOURCE_ANCHOR, 8),
)

#: LSH gearings a snapshot can embed: short key -> backend name.
GEARINGS = {"g": "kore_lsh_g", "f": "kore_lsh_f"}

#: Entity-flag bits in the ``ids/flags`` section.
_FLAG_ENTITY = 1
_FLAG_STORE = 2


class SnapshotError(KnowledgeBaseError, PermanentError):
    """A snapshot is missing, malformed, corrupt, or read-only.

    Classified permanent: retrying cannot repair a bad image, and the
    loader refuses to serve from one rather than risk a wrong answer.
    """


def _fail(path: str, problem: str) -> "SnapshotError":
    return SnapshotError(f"snapshot {path}: {problem}")


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
class _SectionWriter:
    """Appends named, aligned, checksummed sections to an open file."""

    def __init__(self, handle) -> None:
        self._handle = handle
        self._offset = HEADER_SIZE
        self.sections: List[Dict[str, Any]] = []

    def add(self, name: str, data: bytes) -> None:
        injector = get_injector()
        if injector.enabled:
            injector.fire("snapshot.write")
        pad = (-self._offset) % _ALIGN
        if pad:
            self._handle.write(b"\x00" * pad)
            self._offset += pad
        self._handle.write(data)
        self.sections.append(
            {
                "name": name,
                "offset": self._offset,
                "length": len(data),
                "crc32": zlib.crc32(data) & 0xFFFFFFFF,
            }
        )
        self._offset += len(data)

    def add_array(self, name: str, values: array) -> None:
        self.add(name, values.tobytes())

    def add_json(self, name: str, payload: Any) -> None:
        self.add(
            name,
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            ),
        )

    @property
    def offset(self) -> int:
        return self._offset


def _string_table(strings: Sequence[str]) -> Tuple[bytes, array]:
    """Concatenated UTF-8 blob plus ``int64`` prefix offsets."""
    offsets = array("q", [0])
    chunks: List[bytes] = []
    total = 0
    for text in strings:
        raw = text.encode("utf-8")
        chunks.append(raw)
        total += len(raw)
        offsets.append(total)
    return b"".join(chunks), offsets


def build_snapshot(
    kb: KnowledgeBase,
    path: str,
    scheme: str = "npmi",
    max_keyphrases: Optional[int] = None,
    backend: str = "auto",
    gearings: Sequence[str] = ("g", "f"),
    source_fingerprint: str = "",
    embeddings=None,
) -> Dict[str, Any]:
    """Compile *kb* into a snapshot image at *path*, atomically.

    ``scheme``/``max_keyphrases``/``backend`` mirror
    :class:`~repro.compiled.keyphrases.CompiledKeyphrases` and must match
    the pipeline config the snapshot will serve.  ``gearings`` selects
    which LSH sketch tables to embed (``"g"`` recall-geared, ``"f"``
    fast).  ``embeddings`` optionally embeds a trained
    :class:`~repro.embeddings.model.EmbeddingModel` as zero-copy
    ``emb/*`` sections (the dense pre-ranker and embedding measures then
    attach without training).  Returns the manifest.  The write is
    temp-file + rename: the destination is never left torn, even on
    crash or injected fault.
    """
    for gearing in gearings:
        if gearing not in GEARINGS:
            raise SnapshotError(f"unknown LSH gearing {gearing!r}")
    store = kb.keyphrases
    weights = WeightModel(store, kb.links)
    compiled = CompiledKeyphrases(
        store,
        weights,
        scheme=scheme,
        max_keyphrases=max_keyphrases,
        backend=backend,
    )

    # -- the shared id table: every id any component mentions, sorted.
    ids = sorted(
        set(kb.entity_ids())
        | set(kb.dictionary.entity_ids())
        | set(kb.links.nodes())
        | set(store.entity_ids())
    )
    index_of = {eid: i for i, eid in enumerate(ids)}
    n = len(ids)
    flags = bytearray(n)
    for i, eid in enumerate(ids):
        if eid in kb:
            flags[i] |= _FLAG_ENTITY
        if eid in store:
            flags[i] |= _FLAG_STORE

    # -- compile every store entity up front (also fixes the vocabulary).
    store_ids = [eid for i, eid in enumerate(ids) if flags[i] & _FLAG_STORE]
    for eid in store_ids:
        compiled.sim_model(eid)
        compiled.kore_model(eid)
    vocab = compiled.vocabulary
    vocab_words = [vocab.word_of(wid) for wid in range(len(vocab))]
    vocab_perm = array(
        "i", sorted(range(len(vocab_words)), key=vocab_words.__getitem__)
    )

    # -- LSH sketch tables per requested gearing.
    sketch_tables: Dict[str, Dict[EntityId, Tuple[int, ...]]] = {}
    lsh_settings: Dict[str, Any] = {}
    if gearings:
        from repro.relatedness.kore import KoreRelatedness
        from repro.relatedness.lsh import KoreLshRelatedness, LshSettings

        kore = KoreRelatedness(store, weights)
        for gearing in gearings:
            settings = (
                LshSettings.recall_geared()
                if gearing == "g"
                else LshSettings.fast()
            )
            lsh = KoreLshRelatedness(store, kore, settings)
            lsh.attach_compiled(compiled)
            lsh.precompute()
            sketch_tables[gearing] = lsh.export_sketches()
            lsh_settings[gearing] = {
                "phrase_sketch_len": settings.phrase_sketch_len,
                "phrase_bands": settings.phrase_bands,
                "phrase_rows": settings.phrase_rows,
                "entity_bands": settings.entity_bands,
                "entity_rows": settings.entity_rows,
                "seed": settings.seed,
                "sketch_len": settings.entity_sketch_len,
            }

    manifest: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "scheme": scheme,
        "max_keyphrases": max_keyphrases,
        "backend": backend,
        "source_fingerprint": source_fingerprint,
        "lsh": lsh_settings,
        "embeddings": (
            None
            if embeddings is None
            else {
                "dim": embeddings.dim,
                "words": len(embeddings.words),
                "entities": len(embeddings.entity_ids),
            }
        ),
        "counts": {
            "ids": n,
            "entities": kb.entity_count,
            "store_entities": len(store_ids),
            "vocabulary": len(vocab_words),
            "dictionary_names": len(kb.dictionary),
            "link_edges": kb.links.edge_count,
            "triples": len(kb.triples),
        },
    }

    directory = os.path.dirname(os.path.abspath(path)) or "."
    temp_path = os.path.join(
        directory, f".{os.path.basename(path)}.tmp.{os.getpid()}"
    )
    try:
        with open(temp_path, "wb") as handle:
            handle.write(b"\x00" * HEADER_SIZE)
            writer = _SectionWriter(handle)
            writer.add_json("manifest", manifest)

            blob, offsets = _string_table(vocab_words)
            writer.add("vocab/blob", blob)
            writer.add_array("vocab/offsets", offsets)
            writer.add_array("vocab/perm", vocab_perm)
            word_df = array("q", (store.word_df(word) for word in vocab_words))
            writer.add_array("kp/word_df", word_df)

            blob, offsets = _string_table(ids)
            writer.add("ids/blob", blob)
            writer.add_array("ids/offsets", offsets)
            writer.add("ids/flags", bytes(flags))

            _write_entities(writer, kb, ids, flags)
            writer.add_json(
                "taxonomy",
                {
                    type_name: list(kb.taxonomy.parents(type_name))
                    for type_name in kb.taxonomy.types
                    if type_name != ROOT_TYPE
                },
            )
            writer.add_json(
                "triples",
                [list(triple.as_tuple()) for triple in kb.triples.match()],
            )
            _write_dictionary(writer, kb.dictionary, ids, index_of)
            _write_links(writer, kb.links, ids, index_of)
            _write_keyphrases(writer, store, vocab, ids, flags)
            _write_compiled(writer, compiled, ids, flags)
            for gearing in gearings:
                _write_sketches(
                    writer,
                    gearing,
                    sketch_tables[gearing],
                    lsh_settings[gearing]["sketch_len"],
                    ids,
                )
            if embeddings is not None:
                _write_embeddings(writer, embeddings)

            toc = json.dumps(
                {"sections": writer.sections},
                sort_keys=True,
                separators=(",", ":"),
            ).encode("utf-8")
            toc_offset = writer.offset
            pad = (-toc_offset) % _ALIGN
            handle.write(b"\x00" * pad)
            toc_offset += pad
            handle.write(toc)

            header = bytearray(HEADER_SIZE)
            packed = _HEADER.pack(
                MAGIC,
                FORMAT_VERSION,
                0,
                toc_offset,
                len(toc),
                zlib.crc32(toc) & 0xFFFFFFFF,
                0,
            )
            header[: len(packed)] = packed
            crc = zlib.crc32(bytes(header[: _HEADER.size - 4])) & 0xFFFFFFFF
            header[_HEADER.size - 4 : _HEADER.size] = struct.pack("<I", crc)
            handle.seek(0)
            handle.write(bytes(header))
            handle.flush()
            os.fsync(handle.fileno())
        os.rename(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass
    return manifest


def _write_entities(
    writer: _SectionWriter,
    kb: KnowledgeBase,
    ids: Sequence[EntityId],
    flags: bytearray,
) -> None:
    names: List[str] = []
    domains: List[str] = []
    popularity = array("d")
    type_set: Set[str] = set()
    entities: List[Optional[Entity]] = []
    for i, eid in enumerate(ids):
        entity = kb.maybe_entity(eid) if flags[i] & _FLAG_ENTITY else None
        entities.append(entity)
        names.append(entity.canonical_name if entity else "")
        domains.append(entity.domain if entity else "")
        popularity.append(entity.popularity if entity else 0.0)
        if entity:
            type_set.update(entity.types)
    type_table = sorted(type_set)
    type_index = {name: i for i, name in enumerate(type_table)}
    type_offsets = array("q", [0])
    type_ids = array("i")
    for entity in entities:
        if entity:
            type_ids.extend(type_index[t] for t in entity.types)
        type_offsets.append(len(type_ids))

    blob, offsets = _string_table(names)
    writer.add("ent/name_blob", blob)
    writer.add_array("ent/name_offsets", offsets)
    blob, offsets = _string_table(domains)
    writer.add("ent/domain_blob", blob)
    writer.add_array("ent/domain_offsets", offsets)
    writer.add_array("ent/popularity", popularity)
    blob, offsets = _string_table(type_table)
    writer.add("types/blob", blob)
    writer.add_array("types/offsets", offsets)
    writer.add_array("ent/type_offsets", type_offsets)
    writer.add_array("ent/type_ids", type_ids)


def _write_dictionary(
    writer: _SectionWriter,
    dictionary: Dictionary,
    ids: Sequence[EntityId],
    index_of: Dict[EntityId, int],
) -> None:
    entries = sorted(
        (match_key(name), name) for name in dictionary.all_names()
    )
    ent_offsets = array("q", [0])
    ent_ids = array("i")
    ent_sources = bytearray()
    ent_anchors = array("q")
    for _key, name in entries:
        record = dictionary.record_for(name)
        for eid in sorted(record.entities):
            mask = 0
            for source, bit in _SOURCE_BITS:
                if source in record.entities[eid]:
                    mask |= bit
            ent_ids.append(index_of[eid])
            ent_sources.append(mask)
            ent_anchors.append(record.anchor_counts.get(eid, 0))
        ent_offsets.append(len(ent_ids))

    blob, offsets = _string_table([key for key, _name in entries])
    writer.add("dict/key_blob", blob)
    writer.add_array("dict/key_offsets", offsets)
    blob, offsets = _string_table([name for _key, name in entries])
    writer.add("dict/name_blob", blob)
    writer.add_array("dict/name_offsets", offsets)
    writer.add_array("dict/ent_offsets", ent_offsets)
    writer.add_array("dict/ent_ids", ent_ids)
    writer.add("dict/ent_sources", bytes(ent_sources))
    writer.add_array("dict/ent_anchors", ent_anchors)

    names_idx = array("q", [0])
    all_names: List[str] = []
    for eid in ids:
        all_names.extend(dictionary.names_of(eid))
        names_idx.append(len(all_names))
    writer.add_array("dict/names_idx", names_idx)
    blob, offsets = _string_table(all_names)
    writer.add("dict/names_blob", blob)
    writer.add_array("dict/names_offsets", offsets)


def _write_links(
    writer: _SectionWriter,
    links: LinkGraph,
    ids: Sequence[EntityId],
    index_of: Dict[EntityId, int],
) -> None:
    for prefix, neighbours in (
        ("out", links.outlinks),
        ("in", links.inlinks),
    ):
        offsets = array("q", [0])
        targets = array("i")
        for eid in ids:
            targets.extend(sorted(index_of[t] for t in neighbours(eid)))
            offsets.append(len(targets))
        writer.add_array(f"links/{prefix}_offsets", offsets)
        writer.add_array(f"links/{prefix}_ids", targets)


def _write_keyphrases(
    writer: _SectionWriter,
    store: KeyphraseStore,
    vocab: Vocabulary,
    ids: Sequence[EntityId],
    flags: bytearray,
) -> None:
    ent_offsets = array("q", [0])
    phrase_offsets = array("q", [0])
    tokens = array("i")
    counts = array("q")
    for i, eid in enumerate(ids):
        if flags[i] & _FLAG_STORE:
            phrase_counts = store.keyphrase_counts(eid)
            for phrase in sorted(phrase_counts):
                for word in phrase:
                    wid = vocab.id_of(word)
                    if wid == UNKNOWN:
                        raise SnapshotError(
                            f"keyphrase word {word!r} missing from the "
                            f"compiled vocabulary"
                        )
                    tokens.append(wid)
                phrase_offsets.append(len(tokens))
                counts.append(phrase_counts[phrase])
        ent_offsets.append(len(counts))
    writer.add_array("kp/ent_offsets", ent_offsets)
    writer.add_array("kp/phrase_offsets", phrase_offsets)
    writer.add_array("kp/tokens", tokens)
    writer.add_array("kp/counts", counts)


def _write_compiled(
    writer: _SectionWriter,
    compiled: CompiledKeyphrases,
    ids: Sequence[EntityId],
    flags: bytearray,
) -> None:
    sim_pools = {
        "idx_phrase": array("q", [0]),
        "off_idx": array("q", [0]),
        "idx_tok": array("q", [0]),
        "idx_word": array("q", [0]),
        "wpoff_idx": array("q", [0]),
        "idx_wp": array("q", [0]),
        "phrase_offsets": array("q"),
        "tok_ids": array("i"),
        "tok_weights": array("d"),
        "totals": array("d"),
        "word_ids": array("i"),
        "word_weights": array("d"),
        "wp_offsets": array("q"),
        "wp_ids": array("i"),
    }
    kore_pools = {
        "idx_phrase": array("q", [0]),
        "pwoff_idx": array("q", [0]),
        "idx_pw": array("q", [0]),
        "idx_wtp_w": array("q", [0]),
        "idx_wtp_p": array("q", [0]),
        "wtpoff_idx": array("q", [0]),
        "idx_wg": array("q", [0]),
        "pw_offsets": array("q"),
        "pw_ids": array("i"),
        "pw_gammas": array("d"),
        "phi": array("d"),
        "wtp_wids": array("i"),
        "wtp_offsets": array("q"),
        "wtp_pids": array("i"),
        "wg_wids": array("i"),
        "wg_vals": array("d"),
    }
    for i, eid in enumerate(ids):
        if flags[i] & _FLAG_STORE:
            sim = compiled.sim_model(eid)
            sim_pools["totals"].extend(sim.phrase_totals)
            sim_pools["phrase_offsets"].extend(sim.phrase_offsets)
            sim_pools["tok_ids"].extend(sim.phrase_token_ids)
            sim_pools["tok_weights"].extend(sim.phrase_token_weights)
            sim_pools["word_ids"].extend(sim.word_ids)
            sim_pools["word_weights"].extend(sim.word_weights)
            sim_pools["wp_offsets"].extend(sim.word_phrase_offsets)
            sim_pools["wp_ids"].extend(sim.word_phrase_ids)

            kore = compiled.kore_model(eid)
            kore_pools["phi"].extend(kore.phi)
            kore_pools["pw_offsets"].extend(kore.phrase_word_offsets)
            kore_pools["pw_ids"].extend(kore.phrase_word_ids)
            kore_pools["pw_gammas"].extend(kore.phrase_word_gammas)
            # Inverted index and γ map as sorted-id CSR / pair windows;
            # offsets are entity-local, mirroring SimEntityModel's.
            cursor = 0
            kore_pools["wtp_offsets"].append(0)
            for wid in sorted(kore.word_to_phrases):
                kore_pools["wtp_wids"].append(wid)
                kore_pools["wtp_pids"].extend(kore.word_to_phrases[wid])
                cursor += len(kore.word_to_phrases[wid])
                kore_pools["wtp_offsets"].append(cursor)
            for wid in sorted(kore.word_gammas):
                kore_pools["wg_wids"].append(wid)
                kore_pools["wg_vals"].append(kore.word_gammas[wid])
        _append_sim_indexes(sim_pools)
        _append_kore_indexes(kore_pools)
    for name, pool in sim_pools.items():
        writer.add_array(f"sim/{name}", pool)
    for name, pool in kore_pools.items():
        writer.add_array(f"kore/{name}", pool)


def _append_sim_indexes(sim_pools: Dict[str, array]) -> None:
    sim_pools["idx_phrase"].append(len(sim_pools["totals"]))
    sim_pools["off_idx"].append(len(sim_pools["phrase_offsets"]))
    sim_pools["idx_tok"].append(len(sim_pools["tok_ids"]))
    sim_pools["idx_word"].append(len(sim_pools["word_ids"]))
    sim_pools["wpoff_idx"].append(len(sim_pools["wp_offsets"]))
    sim_pools["idx_wp"].append(len(sim_pools["wp_ids"]))


def _append_kore_indexes(kore_pools: Dict[str, array]) -> None:
    kore_pools["idx_phrase"].append(len(kore_pools["phi"]))
    kore_pools["pwoff_idx"].append(len(kore_pools["pw_offsets"]))
    kore_pools["idx_pw"].append(len(kore_pools["pw_ids"]))
    kore_pools["idx_wtp_w"].append(len(kore_pools["wtp_wids"]))
    kore_pools["idx_wtp_p"].append(len(kore_pools["wtp_pids"]))
    kore_pools["wtpoff_idx"].append(len(kore_pools["wtp_offsets"]))
    kore_pools["idx_wg"].append(len(kore_pools["wg_wids"]))


def _write_sketches(
    writer: _SectionWriter,
    gearing: str,
    sketches: Mapping[EntityId, Tuple[int, ...]],
    sketch_len: int,
    ids: Sequence[EntityId],
) -> None:
    mask = bytearray(len(ids))
    row_of = array("q", [-1]) * len(ids)
    rows = array("q")
    count = 0
    for i, eid in enumerate(ids):
        sketch = sketches.get(eid)
        if sketch is None:
            continue
        if len(sketch) == 0:
            mask[i] = 1
            continue
        if len(sketch) != sketch_len:
            raise SnapshotError(
                f"LSH sketch for {eid!r} has length {len(sketch)}, "
                f"expected {sketch_len}"
            )
        mask[i] = 2
        row_of[i] = count
        rows.extend(sketch)
        count += 1
    writer.add(f"lsh/{gearing}/mask", bytes(mask))
    writer.add_array(f"lsh/{gearing}/row_of", row_of)
    writer.add_array(f"lsh/{gearing}/rows", rows)


def _write_embeddings(writer: _SectionWriter, model) -> None:
    """The joint embedding space as optional (version-2) sections.

    Matrices land as raw float32 row-major bytes on the container's
    64-byte alignment, so the reader reconstructs them with one
    ``np.frombuffer`` over the mapped window — no copy, shared pages
    across workers like every other section.
    """
    blob, offsets = _string_table(model.words)
    writer.add("emb/word_blob", blob)
    writer.add_array("emb/word_offsets", offsets)
    blob, offsets = _string_table(model.entity_ids)
    writer.add("emb/ent_blob", blob)
    writer.add_array("emb/ent_offsets", offsets)
    writer.add("emb/word_vecs", model.word_vectors.tobytes())
    writer.add("emb/ent_vecs", model.entity_vectors.tobytes())
    writer.add_json("emb/meta", {"dim": model.dim, "meta": model.meta})


# ----------------------------------------------------------------------
# Reader core
# ----------------------------------------------------------------------
class _Image:
    """An open, verified snapshot file serving memoryview windows."""

    def __init__(self, path: str, verify: bool = True) -> None:
        self.path = path
        try:
            self._file = open(path, "rb")
        except OSError as exc:
            raise _fail(path, f"cannot open ({exc})") from exc
        try:
            size = os.fstat(self._file.fileno()).st_size
            if size < HEADER_SIZE:
                raise _fail(
                    path, f"file too short ({size} bytes) to hold a header"
                )
            self._mmap = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except SnapshotError:
            self._file.close()
            raise
        except (OSError, ValueError) as exc:
            self._file.close()
            raise _fail(path, f"cannot map ({exc})") from exc
        self._view = memoryview(self._mmap)
        try:
            self._sections = self._parse(size, verify)
        except SnapshotError:
            self.close()
            raise

    def _parse(self, size: int, verify: bool) -> Dict[str, Tuple[int, int]]:
        header = bytes(self._view[: _HEADER.size])
        magic, version, _flags, toc_offset, toc_length, toc_crc, header_crc = (
            _HEADER.unpack(header)
        )
        if magic != MAGIC:
            raise _fail(self.path, f"bad magic {magic!r} (not a snapshot)")
        actual_crc = zlib.crc32(header[:-4]) & 0xFFFFFFFF
        if actual_crc != header_crc:
            raise _fail(
                self.path,
                f"header checksum mismatch "
                f"(stored {header_crc:#x}, computed {actual_crc:#x})",
            )
        if version not in SUPPORTED_VERSIONS:
            raise _fail(
                self.path,
                f"unsupported format version {version} "
                f"(this build reads versions "
                f"{', '.join(map(str, SUPPORTED_VERSIONS))})",
            )
        if toc_offset + toc_length > size:
            raise _fail(
                self.path,
                f"table of contents [{toc_offset}, "
                f"{toc_offset + toc_length}) lies beyond the "
                f"{size}-byte file (truncated?)",
            )
        toc_raw = bytes(self._view[toc_offset : toc_offset + toc_length])
        actual_crc = zlib.crc32(toc_raw) & 0xFFFFFFFF
        if actual_crc != toc_crc:
            raise _fail(
                self.path,
                f"table-of-contents checksum mismatch "
                f"(stored {toc_crc:#x}, computed {actual_crc:#x})",
            )
        try:
            toc = json.loads(toc_raw.decode("utf-8"))
            entries = toc["sections"]
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            raise _fail(
                self.path, f"unreadable table of contents ({exc})"
            ) from exc
        sections: Dict[str, Tuple[int, int]] = {}
        self.toc = entries
        for entry in entries:
            name = entry["name"]
            offset, length = int(entry["offset"]), int(entry["length"])
            if offset + length > size:
                raise _fail(
                    self.path,
                    f"section {name!r} [{offset}, {offset + length}) lies "
                    f"beyond the {size}-byte file (truncated?)",
                )
            if verify:
                actual = (
                    zlib.crc32(self._view[offset : offset + length])
                    & 0xFFFFFFFF
                )
                if actual != int(entry["crc32"]):
                    raise _fail(
                        self.path,
                        f"section {name!r} checksum mismatch (stored "
                        f"{int(entry['crc32']):#x}, computed {actual:#x}) "
                        f"— the image is corrupt",
                    )
            sections[name] = (offset, length)
        return sections

    def raw(self, name: str) -> memoryview:
        try:
            offset, length = self._sections[name]
        except KeyError:
            raise _fail(self.path, f"missing section {name!r}") from None
        return self._view[offset : offset + length]

    def arr(self, name: str, code: str) -> memoryview:
        view = self.raw(name)
        try:
            return view.cast(code)
        except (TypeError, ValueError) as exc:
            raise _fail(
                self.path,
                f"section {name!r} is not a whole number of "
                f"{code!r} elements ({exc})",
            ) from exc

    def js(self, name: str) -> Any:
        raw = bytes(self.raw(name))
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _fail(
                self.path, f"section {name!r} is not valid JSON ({exc})"
            ) from exc

    def has(self, name: str) -> bool:
        return name in self._sections

    def close(self) -> None:
        """Best-effort unmap; exported views keep the mapping alive."""
        try:
            self._view.release()
        except BufferError:
            return
        try:
            self._mmap.close()
        except BufferError:
            pass
        self._file.close()


class _StringTable:
    """Lazily decoded string table over blob + offset windows."""

    __slots__ = ("_blob", "_offsets", "_cache")

    def __init__(self, blob: memoryview, offsets: memoryview) -> None:
        self._blob = blob
        self._offsets = offsets
        self._cache: Dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def raw(self, index: int) -> bytes:
        return bytes(
            self._blob[self._offsets[index] : self._offsets[index + 1]]
        )

    def get(self, index: int) -> str:
        cached = self._cache.get(index)
        if cached is None:
            cached = self.raw(index).decode("utf-8")
            self._cache[index] = cached
        return cached

    def find(self, text: str) -> int:
        """Binary search (UTF-8 byte order == code-point order)."""
        target = text.encode("utf-8")
        lo, hi = 0, len(self)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.raw(mid) < target:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self) and self.raw(lo) == target:
            return lo
        return -1


class _IdTable:
    """The shared sorted id table with per-id component flags."""

    __slots__ = ("strings", "flags")

    def __init__(self, strings: _StringTable, flags: memoryview) -> None:
        self.strings = strings
        self.flags = flags

    def __len__(self) -> int:
        return len(self.strings)

    def find(self, entity_id: EntityId) -> int:
        return self.strings.find(entity_id)

    def get(self, index: int) -> EntityId:
        return self.strings.get(index)


class SnapshotVocabulary:
    """Read-only :class:`Vocabulary` twin backed by the snapshot.

    ``intern`` resolves existing words but refuses to grow the table —
    nothing on the serving path interns new words (the compile step
    interned the full store vocabulary eagerly).
    """

    __slots__ = ("_strings", "_perm", "_ids")

    def __init__(self, strings: _StringTable, perm: memoryview) -> None:
        self._strings = strings
        self._perm = perm
        self._ids: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._strings)

    def __contains__(self, word: str) -> bool:
        return self.id_of(word) != UNKNOWN

    def id_of(self, word: str) -> int:
        cached = self._ids.get(word)
        if cached is not None:
            return cached
        target = word.encode("utf-8")
        strings, perm = self._strings, self._perm
        lo, hi = 0, len(perm)
        while lo < hi:
            mid = (lo + hi) // 2
            if strings.raw(perm[mid]) < target:
                lo = mid + 1
            else:
                hi = mid
        wid = UNKNOWN
        if lo < len(perm) and strings.raw(perm[lo]) == target:
            wid = perm[lo]
        self._ids[word] = wid
        return wid

    def word_of(self, wid: int) -> str:
        if wid < 0 or wid >= len(self._strings):
            raise IndexError(f"unknown word id {wid}")
        return self._strings.get(wid)

    def intern(self, word: str) -> int:
        wid = self.id_of(word)
        if wid == UNKNOWN:
            raise SnapshotError(
                f"cannot intern new word {word!r} into a read-only "
                f"snapshot vocabulary"
            )
        return wid

    def intern_all(self, words: Iterable[str]) -> None:
        for word in words:
            self.intern(word)

    def words(self) -> List[str]:
        """All words in interning order."""
        return [self._strings.get(i) for i in range(len(self._strings))]


# ----------------------------------------------------------------------
# Component facades
# ----------------------------------------------------------------------
def _read_only(what: str) -> SnapshotError:
    return SnapshotError(
        f"snapshot-backed {what} is read-only; use editable_copy() / "
        f"materialize() for a mutable in-memory copy"
    )


class _EntityTable(MappingABC):
    """Lazy ``Mapping[EntityId, Entity]`` over the snapshot id table."""

    def __init__(self, image: _Image, ids: _IdTable) -> None:
        self._ids = ids
        self._names = _StringTable(
            image.raw("ent/name_blob"), image.arr("ent/name_offsets", "q")
        )
        self._domains = _StringTable(
            image.raw("ent/domain_blob"), image.arr("ent/domain_offsets", "q")
        )
        self._popularity = image.arr("ent/popularity", "d")
        self._types = _StringTable(
            image.raw("types/blob"), image.arr("types/offsets", "q")
        )
        self._type_offsets = image.arr("ent/type_offsets", "q")
        self._type_ids = image.arr("ent/type_ids", "i")
        self._cache: Dict[int, Entity] = {}
        self._count: Optional[int] = None

    def _row(self, entity_id: EntityId) -> int:
        index = self._ids.find(entity_id)
        if index < 0 or not self._ids.flags[index] & _FLAG_ENTITY:
            return -1
        return index

    def _entity(self, index: int) -> Entity:
        cached = self._cache.get(index)
        if cached is None:
            lo = self._type_offsets[index]
            hi = self._type_offsets[index + 1]
            cached = Entity(
                entity_id=self._ids.get(index),
                canonical_name=self._names.get(index),
                types=tuple(
                    self._types.get(self._type_ids[i]) for i in range(lo, hi)
                ),
                domain=self._domains.get(index),
                popularity=self._popularity[index],
            )
            self._cache[index] = cached
        return cached

    def __getitem__(self, entity_id: EntityId) -> Entity:
        index = self._row(entity_id)
        if index < 0:
            raise KeyError(entity_id)
        return self._entity(index)

    def __contains__(self, entity_id: object) -> bool:
        return isinstance(entity_id, str) and self._row(entity_id) >= 0

    def get(self, entity_id: EntityId, default: Any = None) -> Any:
        index = self._row(entity_id)
        return self._entity(index) if index >= 0 else default

    def __iter__(self) -> Iterator[EntityId]:
        flags = self._ids.flags
        for index in range(len(self._ids)):
            if flags[index] & _FLAG_ENTITY:
                yield self._ids.get(index)

    def __len__(self) -> int:
        if self._count is None:
            flags = self._ids.flags
            self._count = sum(
                1 for i in range(len(self._ids)) if flags[i] & _FLAG_ENTITY
            )
        return self._count


class SnapshotDictionary(Dictionary):
    """Read-only, lazily decoded mention dictionary."""

    def __init__(self, image: _Image, ids: _IdTable) -> None:
        # Deliberately no super().__init__(): state lives in the image.
        self._ids = ids
        self._keys = _StringTable(
            image.raw("dict/key_blob"), image.arr("dict/key_offsets", "q")
        )
        self._names = _StringTable(
            image.raw("dict/name_blob"), image.arr("dict/name_offsets", "q")
        )
        self._ent_offsets = image.arr("dict/ent_offsets", "q")
        self._ent_ids = image.arr("dict/ent_ids", "i")
        self._ent_sources = image.raw("dict/ent_sources")
        self._ent_anchors = image.arr("dict/ent_anchors", "q")
        self._names_idx = image.arr("dict/names_idx", "q")
        self._names_of = _StringTable(
            image.raw("dict/names_blob"), image.arr("dict/names_offsets", "q")
        )
        self._record_cache: Dict[int, NameRecord] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def add_name(self, name, entity_id, source, anchor_count=0):
        raise _read_only("dictionary")

    def merge_counts(self, counts):
        raise _read_only("dictionary")

    def record_for(self, name: str) -> Optional[NameRecord]:
        index = self._keys.find(match_key(name))
        if index < 0:
            return None
        record = self._record_cache.get(index)
        if record is None:
            entities: Dict[EntityId, Set[str]] = {}
            anchor_counts: Dict[EntityId, int] = {}
            for i in range(
                self._ent_offsets[index], self._ent_offsets[index + 1]
            ):
                eid = self._ids.get(self._ent_ids[i])
                mask = self._ent_sources[i]
                entities[eid] = {
                    source for source, bit in _SOURCE_BITS if mask & bit
                }
                anchors = self._ent_anchors[i]
                if anchors:
                    anchor_counts[eid] = anchors
            record = NameRecord(
                name=self._names.get(index),
                entities=entities,
                anchor_counts=anchor_counts,
            )
            record = self._record_cache.setdefault(index, record)
        return record

    def names_of(self, entity_id: EntityId) -> List[str]:
        index = self._ids.find(entity_id)
        if index < 0:
            return []
        return [
            self._names_of.get(i)
            for i in range(self._names_idx[index], self._names_idx[index + 1])
        ]

    def all_names(self) -> List[str]:
        return sorted(self._names.get(i) for i in range(len(self._names)))

    def entity_ids(self) -> List[EntityId]:
        return [
            self._ids.get(i)
            for i in range(len(self._ids))
            if self._names_idx[i + 1] > self._names_idx[i]
        ]

    def materialize(self) -> Dictionary:
        """A mutable in-memory :class:`Dictionary` with identical content."""
        dictionary = Dictionary()
        for name in self.all_names():
            record = self.record_for(name)
            for eid in sorted(record.entities):
                anchors = record.anchor_counts.get(eid, 0)
                for source in sorted(record.entities[eid]):
                    dictionary.add_name(
                        name,
                        eid,
                        source,
                        anchor_count=anchors
                        if source == SOURCE_ANCHOR
                        else 0,
                    )
        return dictionary


class SnapshotLinkGraph(LinkGraph):
    """Read-only CSR link graph decoding neighbour sets lazily."""

    def __init__(self, image: _Image, ids: _IdTable) -> None:
        self._ids = ids
        self._out_offsets = image.arr("links/out_offsets", "q")
        self._out_ids = image.arr("links/out_ids", "i")
        self._in_offsets = image.arr("links/in_offsets", "q")
        self._in_ids = image.arr("links/in_ids", "i")
        self._out_cache: Dict[int, FrozenSet[EntityId]] = {}
        self._in_cache: Dict[int, FrozenSet[EntityId]] = {}

    def add_link(self, source, target):
        raise _read_only("link graph")

    def add_links(self, edges):
        raise _read_only("link graph")

    def _decode(self, index, offsets, pool, cache) -> FrozenSet[EntityId]:
        cached = cache.get(index)
        if cached is None:
            cached = frozenset(
                self._ids.get(pool[i])
                for i in range(offsets[index], offsets[index + 1])
            )
            cache[index] = cached
        return cached

    def outlinks(self, entity_id: EntityId) -> FrozenSet[EntityId]:
        index = self._ids.find(entity_id)
        if index < 0:
            return frozenset()
        return self._decode(
            index, self._out_offsets, self._out_ids, self._out_cache
        )

    def inlinks(self, entity_id: EntityId) -> FrozenSet[EntityId]:
        index = self._ids.find(entity_id)
        if index < 0:
            return frozenset()
        return self._decode(
            index, self._in_offsets, self._in_ids, self._in_cache
        )

    def outlink_count(self, entity_id: EntityId) -> int:
        index = self._ids.find(entity_id)
        if index < 0:
            return 0
        return self._out_offsets[index + 1] - self._out_offsets[index]

    def inlink_count(self, entity_id: EntityId) -> int:
        index = self._ids.find(entity_id)
        if index < 0:
            return 0
        return self._in_offsets[index + 1] - self._in_offsets[index]

    def has_link(self, source: EntityId, target: EntityId) -> bool:
        return target in self.outlinks(source)

    def shared_inlinks(self, a: EntityId, b: EntityId) -> int:
        ins_a, ins_b = self.inlinks(a), self.inlinks(b)
        if len(ins_a) > len(ins_b):
            ins_a, ins_b = ins_b, ins_a
        return sum(1 for node in ins_a if node in ins_b)

    @property
    def edge_count(self) -> int:
        return len(self._out_ids)

    def _degree(self, index: int) -> int:
        return (
            self._out_offsets[index + 1]
            - self._out_offsets[index]
            + self._in_offsets[index + 1]
            - self._in_offsets[index]
        )

    def node_count(self) -> int:
        return sum(
            1 for i in range(len(self._ids)) if self._degree(i) > 0
        )

    def nodes(self) -> List[EntityId]:
        return [
            self._ids.get(i)
            for i in range(len(self._ids))
            if self._degree(i) > 0
        ]

    def degree_histogram(self) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for index in range(len(self._ids)):
            if self._degree(index) > 0:
                count = self._in_offsets[index + 1] - self._in_offsets[index]
                hist[count] = hist.get(count, 0) + 1
        return hist


class SnapshotKeyphraseStore(KeyphraseStore):
    """Read-only keyphrase store decoding per-entity models lazily."""

    def __init__(
        self, image: _Image, ids: _IdTable, vocab: SnapshotVocabulary
    ) -> None:
        self._ids = ids
        self._vocab = vocab
        self._ent_offsets = image.arr("kp/ent_offsets", "q")
        self._kp_offsets = image.arr("kp/phrase_offsets", "q")
        self._tokens = image.arr("kp/tokens", "i")
        self._counts = image.arr("kp/counts", "q")
        self._word_df_arr = image.arr("kp/word_df", "q")
        self._phrase_cache: Dict[int, Dict[Phrase, int]] = {}
        self._word_cache: Dict[int, Dict[str, int]] = {}
        self._count: Optional[int] = None
        self._global: Optional[
            Tuple[Dict[Phrase, Set[EntityId]], Dict[str, Set[EntityId]]]
        ] = None

    def _row(self, entity_id: EntityId) -> int:
        index = self._ids.find(entity_id)
        if index < 0 or not self._ids.flags[index] & _FLAG_STORE:
            return -1
        return index

    def _phrase_dict(self, index: int) -> Dict[Phrase, int]:
        cached = self._phrase_cache.get(index)
        if cached is None:
            word_of = self._vocab.word_of
            cached = {}
            for p in range(
                self._ent_offsets[index], self._ent_offsets[index + 1]
            ):
                phrase = tuple(
                    word_of(self._tokens[t])
                    for t in range(self._kp_offsets[p], self._kp_offsets[p + 1])
                )
                cached[phrase] = self._counts[p]
            cached = self._phrase_cache.setdefault(index, cached)
        return cached

    def _word_dict(self, index: int) -> Dict[str, int]:
        cached = self._word_cache.get(index)
        if cached is None:
            cached = {}
            for phrase, count in self._phrase_dict(index).items():
                for word in phrase:
                    cached[word] = cached.get(word, 0) + count
            cached = self._word_cache.setdefault(index, cached)
        return cached

    def __len__(self) -> int:
        return self.entity_count

    def __contains__(self, entity_id: EntityId) -> bool:
        return self._row(entity_id) >= 0

    @property
    def entity_count(self) -> int:
        if self._count is None:
            flags = self._ids.flags
            self._count = sum(
                1 for i in range(len(self._ids)) if flags[i] & _FLAG_STORE
            )
        return self._count

    def ensure_entity(self, entity_id: EntityId) -> None:
        if self._row(entity_id) < 0:
            raise _read_only("keyphrase store")

    def add_keyphrase(self, entity_id, phrase, count=1):
        raise _read_only("keyphrase store")

    def keyphrases(self, entity_id: EntityId) -> List[Phrase]:
        index = self._row(entity_id)
        if index < 0:
            return []
        return sorted(self._phrase_dict(index))

    def keyphrase_counts(self, entity_id: EntityId) -> Dict[Phrase, int]:
        index = self._row(entity_id)
        if index < 0:
            return {}
        return dict(self._phrase_dict(index))

    def keywords(self, entity_id: EntityId) -> List[str]:
        index = self._row(entity_id)
        if index < 0:
            return []
        return sorted(self._word_dict(index))

    def keyword_counts(self, entity_id: EntityId) -> Dict[str, int]:
        index = self._row(entity_id)
        if index < 0:
            return {}
        return dict(self._word_dict(index))

    def has_word(self, entity_id: EntityId, word: str) -> bool:
        index = self._row(entity_id)
        return index >= 0 and word in self._word_dict(index)

    def has_phrase(self, entity_id: EntityId, phrase: Phrase) -> bool:
        index = self._row(entity_id)
        return index >= 0 and phrase in self._phrase_dict(index)

    def _inverted(
        self,
    ) -> Tuple[Dict[Phrase, Set[EntityId]], Dict[str, Set[EntityId]]]:
        if self._global is None:
            by_phrase: Dict[Phrase, Set[EntityId]] = {}
            by_word: Dict[str, Set[EntityId]] = {}
            flags = self._ids.flags
            for index in range(len(self._ids)):
                if not flags[index] & _FLAG_STORE:
                    continue
                eid = self._ids.get(index)
                for phrase in self._phrase_dict(index):
                    by_phrase.setdefault(phrase, set()).add(eid)
                for word in self._word_dict(index):
                    by_word.setdefault(word, set()).add(eid)
            self._global = (by_phrase, by_word)
        return self._global

    def phrase_df(self, phrase: Phrase) -> int:
        return len(self._inverted()[0].get(phrase, ()))

    def word_df(self, word: str) -> int:
        wid = self._vocab.id_of(word)
        if wid == UNKNOWN:
            return 0
        return self._word_df_arr[wid]

    def entities_with_word(self, word: str) -> FrozenSet[EntityId]:
        return frozenset(self._inverted()[1].get(word, set()))

    def entities_with_phrase(self, phrase: Phrase) -> FrozenSet[EntityId]:
        return frozenset(self._inverted()[0].get(phrase, set()))

    def entity_ids(self) -> List[EntityId]:
        flags = self._ids.flags
        return [
            self._ids.get(i)
            for i in range(len(self._ids))
            if flags[i] & _FLAG_STORE
        ]

    def vocabulary(self) -> List[str]:
        words = self._vocab.words()
        return sorted(words)

    def top_keyphrases(
        self, entity_id: EntityId, limit: Optional[int] = None
    ) -> List[Phrase]:
        index = self._row(entity_id)
        if index < 0:
            return []
        ordered = sorted(
            self._phrase_dict(index).items(), key=lambda kv: (-kv[1], kv[0])
        )
        if limit is not None:
            ordered = ordered[:limit]
        return [phrase for phrase, _count in ordered]

    def copy(self) -> KeyphraseStore:
        clone = KeyphraseStore()
        for entity_id in self.entity_ids():
            clone.ensure_entity(entity_id)
            for phrase, count in sorted(
                self.keyphrase_counts(entity_id).items()
            ):
                clone.add_keyphrase(entity_id, phrase, count)
        return clone

    def restricted_to(
        self, entity_ids: Iterable[EntityId]
    ) -> KeyphraseStore:
        wanted = set(entity_ids)
        clone = KeyphraseStore()
        for entity_id in sorted(wanted):
            if self._row(entity_id) < 0:
                continue
            clone.ensure_entity(entity_id)
            for phrase, count in sorted(
                self.keyphrase_counts(entity_id).items()
            ):
                clone.add_keyphrase(entity_id, phrase, count)
        return clone


class _CsrIntMap:
    """``{word id -> phrase-index window}`` over sorted CSR windows."""

    __slots__ = ("_wids", "_offsets", "_pids")

    def __init__(
        self, wids: memoryview, offsets: memoryview, pids: memoryview
    ) -> None:
        self._wids = wids
        self._offsets = offsets
        self._pids = pids

    def get(self, wid: int, default: Any = None) -> Any:
        index = bisect_left(self._wids, wid)
        if index < len(self._wids) and self._wids[index] == wid:
            return self._pids[self._offsets[index] : self._offsets[index + 1]]
        return default

    def __len__(self) -> int:
        return len(self._wids)

    def __iter__(self) -> Iterator[int]:
        return iter(self._wids)

    def __getitem__(self, wid: int) -> Any:
        found = self.get(wid)
        if found is None:
            raise KeyError(wid)
        return found


class _SortedPairsMap:
    """``{word id -> float}`` over parallel sorted id/value windows."""

    __slots__ = ("_wids", "_values")

    def __init__(self, wids: memoryview, values: memoryview) -> None:
        self._wids = wids
        self._values = values

    def get(self, wid: int, default: float = 0.0) -> float:
        index = bisect_left(self._wids, wid)
        if index < len(self._wids) and self._wids[index] == wid:
            return self._values[index]
        return default

    def __len__(self) -> int:
        return len(self._wids)

    def __iter__(self) -> Iterator[int]:
        return iter(self._wids)

    def __getitem__(self, wid: int) -> float:
        index = bisect_left(self._wids, wid)
        if index < len(self._wids) and self._wids[index] == wid:
            return self._values[index]
        raise KeyError(wid)


class SnapshotCompiledKeyphrases:
    """Compiled entity models served as memoryview windows.

    Drop-in for :class:`~repro.compiled.keyphrases.CompiledKeyphrases` on
    the scoring path: exposes the same ``scheme`` / ``max_keyphrases`` /
    ``backend`` / ``use_numpy`` / ``vocabulary`` surface plus
    ``sim_model`` / ``kore_model`` / ``index_context`` / ``precompile``.
    Models are *views*, not copies — N workers share the page cache.
    """

    def __init__(
        self,
        image: _Image,
        ids: _IdTable,
        vocabulary: SnapshotVocabulary,
        scheme: str,
        max_keyphrases: Optional[int],
        backend: str,
    ) -> None:
        if backend == "numpy" and not HAVE_NUMPY:
            raise _fail(
                image.path,
                "compiled with backend 'numpy' but numpy is not importable "
                "here; rebuild with --compiled-backend auto or python",
            )
        self._ids = ids
        self.scheme = scheme
        self.max_keyphrases = max_keyphrases
        self.backend = backend
        self.use_numpy = HAVE_NUMPY if backend == "auto" else backend == "numpy"
        self.vocabulary = vocabulary
        self._sim = {
            name: image.arr(f"sim/{name}", code)
            for name, code in (
                ("idx_phrase", "q"),
                ("off_idx", "q"),
                ("idx_tok", "q"),
                ("idx_word", "q"),
                ("wpoff_idx", "q"),
                ("idx_wp", "q"),
                ("phrase_offsets", "q"),
                ("tok_ids", "i"),
                ("tok_weights", "d"),
                ("totals", "d"),
                ("word_ids", "i"),
                ("word_weights", "d"),
                ("wp_offsets", "q"),
                ("wp_ids", "i"),
            )
        }
        self._kore = {
            name: image.arr(f"kore/{name}", code)
            for name, code in (
                ("idx_phrase", "q"),
                ("pwoff_idx", "q"),
                ("idx_pw", "q"),
                ("idx_wtp_w", "q"),
                ("idx_wtp_p", "q"),
                ("wtpoff_idx", "q"),
                ("idx_wg", "q"),
                ("pw_offsets", "q"),
                ("pw_ids", "i"),
                ("pw_gammas", "d"),
                ("phi", "d"),
                ("wtp_wids", "i"),
                ("wtp_offsets", "q"),
                ("wtp_pids", "i"),
                ("wg_wids", "i"),
                ("wg_vals", "d"),
            )
        }
        self._sim_models: Dict[int, SimEntityModel] = {}
        self._kore_models: Dict[int, KoreEntityModel] = {}

    def _row(self, entity_id: EntityId) -> int:
        index = self._ids.find(entity_id)
        if index < 0 or not self._ids.flags[index] & _FLAG_STORE:
            raise SnapshotError(
                f"no compiled keyphrase model for entity {entity_id!r} "
                f"in this snapshot"
            )
        return index

    def sim_model(self, entity_id: EntityId) -> SimEntityModel:
        index = self._row(entity_id)
        model = self._sim_models.get(index)
        if model is None:
            s = self._sim
            model = SimEntityModel(
                s["phrase_offsets"][
                    s["off_idx"][index] : s["off_idx"][index + 1]
                ],
                s["tok_ids"][s["idx_tok"][index] : s["idx_tok"][index + 1]],
                s["tok_weights"][
                    s["idx_tok"][index] : s["idx_tok"][index + 1]
                ],
                s["totals"][
                    s["idx_phrase"][index] : s["idx_phrase"][index + 1]
                ],
                s["word_ids"][
                    s["idx_word"][index] : s["idx_word"][index + 1]
                ],
                s["word_weights"][
                    s["idx_word"][index] : s["idx_word"][index + 1]
                ],
                s["wp_offsets"][
                    s["wpoff_idx"][index] : s["wpoff_idx"][index + 1]
                ],
                s["wp_ids"][s["idx_wp"][index] : s["idx_wp"][index + 1]],
            )
            model = self._sim_models.setdefault(index, model)
        return model

    def kore_model(self, entity_id: EntityId) -> KoreEntityModel:
        index = self._row(entity_id)
        model = self._kore_models.get(index)
        if model is None:
            k = self._kore
            model = KoreEntityModel(
                k["pw_offsets"][
                    k["pwoff_idx"][index] : k["pwoff_idx"][index + 1]
                ],
                k["pw_ids"][k["idx_pw"][index] : k["idx_pw"][index + 1]],
                k["pw_gammas"][k["idx_pw"][index] : k["idx_pw"][index + 1]],
                k["phi"][
                    k["idx_phrase"][index] : k["idx_phrase"][index + 1]
                ],
                _CsrIntMap(
                    k["wtp_wids"][
                        k["idx_wtp_w"][index] : k["idx_wtp_w"][index + 1]
                    ],
                    k["wtp_offsets"][
                        k["wtpoff_idx"][index] : k["wtpoff_idx"][index + 1]
                    ],
                    k["wtp_pids"][
                        k["idx_wtp_p"][index] : k["idx_wtp_p"][index + 1]
                    ],
                ),
                _SortedPairsMap(
                    k["wg_wids"][k["idx_wg"][index] : k["idx_wg"][index + 1]],
                    k["wg_vals"][k["idx_wg"][index] : k["idx_wg"][index + 1]],
                ),
            )
            model = self._kore_models.setdefault(index, model)
        return model

    def precompile(
        self,
        entity_ids: Optional[Iterable[EntityId]] = None,
        kore: bool = False,
    ) -> int:
        if entity_ids is None:
            flags = self._ids.flags
            entity_ids = [
                self._ids.get(i)
                for i in range(len(self._ids))
                if flags[i] & _FLAG_STORE
            ]
        else:
            entity_ids = list(entity_ids)
        for entity_id in entity_ids:
            self.sim_model(entity_id)
            if kore:
                self.kore_model(entity_id)
        return len(entity_ids)

    def index_context(self, context) -> IndexedContext:
        return IndexedContext(context, self.vocabulary)


class SketchTable(MappingABC):
    """Read-only LSH sketch table decoded lazily from the image.

    ``complete`` is True: the table covers every keyphrase-store entity,
    which lets :class:`~repro.relatedness.lsh.KoreLshRelatedness` skip
    its pre-fork ``precompute`` entirely.
    """

    complete = True

    def __init__(
        self, image: _Image, ids: _IdTable, gearing: str, sketch_len: int
    ) -> None:
        self._ids = ids
        self._mask = image.raw(f"lsh/{gearing}/mask")
        self._row_of = image.arr(f"lsh/{gearing}/row_of", "q")
        self._rows = image.arr(f"lsh/{gearing}/rows", "q")
        self._sketch_len = sketch_len
        self._cache: Dict[int, Tuple[int, ...]] = {}
        self._count: Optional[int] = None

    def _sketch_at(self, index: int) -> Optional[Tuple[int, ...]]:
        state = self._mask[index]
        if state == 0:
            return None
        if state == 1:
            return ()
        cached = self._cache.get(index)
        if cached is None:
            start = self._row_of[index] * self._sketch_len
            cached = tuple(self._rows[start : start + self._sketch_len])
            self._cache[index] = cached
        return cached

    def get(self, entity_id: EntityId, default: Any = None) -> Any:
        index = self._ids.find(entity_id)
        if index < 0:
            return default
        sketch = self._sketch_at(index)
        return default if sketch is None else sketch

    def __getitem__(self, entity_id: EntityId) -> Tuple[int, ...]:
        sketch = self.get(entity_id)
        if sketch is None:
            raise KeyError(entity_id)
        return sketch

    def __iter__(self) -> Iterator[EntityId]:
        for index in range(len(self._ids)):
            if self._mask[index]:
                yield self._ids.get(index)

    def __len__(self) -> int:
        if self._count is None:
            self._count = sum(1 for state in self._mask if state)
        return self._count


class SnapshotKnowledgeBase(KnowledgeBase):
    """Read-only :class:`KnowledgeBase` over a mapped snapshot image."""

    def __init__(self, snapshot: "Snapshot") -> None:
        # Deliberately no super().__init__(): every component is a lazy
        # facade over the image, wired below as cached attributes.
        self._snapshot = snapshot

    @property
    def taxonomy(self) -> Taxonomy:
        return self._snapshot.taxonomy

    @property
    def dictionary(self) -> SnapshotDictionary:
        return self._snapshot.dictionary

    @property
    def links(self) -> SnapshotLinkGraph:
        return self._snapshot.links

    @property
    def keyphrases(self) -> SnapshotKeyphraseStore:
        return self._snapshot.store

    @property
    def triples(self) -> TripleStore:
        return self._snapshot.triples

    @property
    def _entities(self) -> _EntityTable:
        return self._snapshot.entity_table

    def add_entity(self, entity: Entity) -> None:
        raise _read_only("knowledge base")

    def materialize(self) -> KnowledgeBase:
        """A fully in-memory, mutable KB with identical content."""
        taxonomy = Taxonomy(
            {
                type_name: tuple(self.taxonomy.parents(type_name))
                for type_name in self.taxonomy.types
                if type_name != ROOT_TYPE
            }
        )
        kb = KnowledgeBase(
            taxonomy=taxonomy,
            dictionary=self.dictionary.materialize(),
            keyphrases=self.keyphrases.copy(),
        )
        kb._entities = {eid: entity for eid, entity in self._entities.items()}
        for source in self.links.nodes():
            for target in sorted(self.links.outlinks(source)):
                kb.links.add_link(source, target)
        for triple in self.triples.match():
            kb.triples.add(*triple.as_tuple())
        return kb

    def editable_copy(self) -> KnowledgeBase:
        view = KnowledgeBase(
            taxonomy=self.taxonomy,
            dictionary=self.dictionary.materialize(),
            links=self.links,
            keyphrases=self.keyphrases.copy(),
            triples=self._snapshot._build_triples(),
        )
        view._entities = dict(self._entities)
        return view


# ----------------------------------------------------------------------
# The snapshot handle
# ----------------------------------------------------------------------
class Snapshot:
    """An open snapshot: lazy component facades plus pipeline assembly."""

    def __init__(self, image: _Image, manifest: Dict[str, Any]) -> None:
        self._image = image
        self.manifest = manifest
        self._cache: Dict[str, Any] = {}

    @property
    def path(self) -> str:
        return self._image.path

    def _cached(self, name: str, builder) -> Any:
        found = self._cache.get(name)
        if found is None:
            found = builder()
            self._cache[name] = found
        return found

    @property
    def id_table(self) -> _IdTable:
        return self._cached(
            "id_table",
            lambda: _IdTable(
                _StringTable(
                    self._image.raw("ids/blob"),
                    self._image.arr("ids/offsets", "q"),
                ),
                self._image.raw("ids/flags"),
            ),
        )

    @property
    def vocabulary(self) -> SnapshotVocabulary:
        return self._cached(
            "vocabulary",
            lambda: SnapshotVocabulary(
                _StringTable(
                    self._image.raw("vocab/blob"),
                    self._image.arr("vocab/offsets", "q"),
                ),
                self._image.arr("vocab/perm", "i"),
            ),
        )

    @property
    def entity_table(self) -> _EntityTable:
        return self._cached(
            "entity_table", lambda: _EntityTable(self._image, self.id_table)
        )

    @property
    def taxonomy(self) -> Taxonomy:
        return self._cached(
            "taxonomy",
            lambda: Taxonomy(
                {
                    type_name: tuple(parents)
                    for type_name, parents in self._image.js(
                        "taxonomy"
                    ).items()
                }
            ),
        )

    def _build_triples(self) -> TripleStore:
        triples = TripleStore()
        for subject, predicate, obj in self._image.js("triples"):
            triples.add(subject, predicate, obj)
        return triples

    @property
    def triples(self) -> TripleStore:
        return self._cached("triples", self._build_triples)

    @property
    def dictionary(self) -> SnapshotDictionary:
        return self._cached(
            "dictionary",
            lambda: SnapshotDictionary(self._image, self.id_table),
        )

    @property
    def links(self) -> SnapshotLinkGraph:
        return self._cached(
            "links", lambda: SnapshotLinkGraph(self._image, self.id_table)
        )

    @property
    def store(self) -> SnapshotKeyphraseStore:
        return self._cached(
            "store",
            lambda: SnapshotKeyphraseStore(
                self._image, self.id_table, self.vocabulary
            ),
        )

    @property
    def kb(self) -> SnapshotKnowledgeBase:
        return self._cached("kb", lambda: SnapshotKnowledgeBase(self))

    @property
    def compiled(self) -> SnapshotCompiledKeyphrases:
        return self._cached(
            "compiled",
            lambda: SnapshotCompiledKeyphrases(
                self._image,
                self.id_table,
                self.vocabulary,
                scheme=self.manifest["scheme"],
                max_keyphrases=self.manifest["max_keyphrases"],
                backend=self.manifest["backend"],
            ),
        )

    @property
    def weights(self) -> WeightModel:
        return self._cached(
            "weights", lambda: WeightModel(self.store, self.links)
        )

    @property
    def has_embeddings(self) -> bool:
        """Whether this image carries the optional ``emb/*`` sections."""
        return self._image.has("emb/meta")

    def _build_embeddings(self):
        import numpy as np

        from repro.embeddings.model import EmbeddingModel

        meta = self._image.js("emb/meta")
        dim = int(meta["dim"])
        words_table = _StringTable(
            self._image.raw("emb/word_blob"),
            self._image.arr("emb/word_offsets", "q"),
        )
        words = [words_table.get(i) for i in range(len(words_table))]
        ents_table = _StringTable(
            self._image.raw("emb/ent_blob"),
            self._image.arr("emb/ent_offsets", "q"),
        )
        entity_ids = [ents_table.get(i) for i in range(len(ents_table))]
        word_vecs = np.frombuffer(
            self._image.raw("emb/word_vecs"), dtype=np.float32
        ).reshape(len(words), dim)
        ent_vecs = np.frombuffer(
            self._image.raw("emb/ent_vecs"), dtype=np.float32
        ).reshape(len(entity_ids), dim)
        return EmbeddingModel(
            words=words,
            entity_ids=entity_ids,
            word_vectors=word_vecs,
            entity_vectors=ent_vecs,
            meta=meta.get("meta", {}),
        )

    @property
    def embeddings(self):
        """The embedded :class:`EmbeddingModel`; matrices stay mapped."""
        if not self.has_embeddings:
            raise _fail(
                self.path,
                "no embedding sections; rebuild with --embeddings",
            )
        return self._cached("embeddings", self._build_embeddings)

    def sketches(self, gearing: str) -> SketchTable:
        settings = self.manifest.get("lsh", {}).get(gearing)
        if settings is None or not self._image.has(f"lsh/{gearing}/mask"):
            raise _fail(
                self.path,
                f"no LSH sketch table for gearing {gearing!r}; rebuild "
                f"the snapshot with that gearing included",
            )
        return self._cached(
            f"sketches/{gearing}",
            lambda: SketchTable(
                self._image,
                self.id_table,
                gearing,
                int(settings["sketch_len"]),
            ),
        )

    def pipeline(self, config=None):
        """Assemble an :class:`AidaDisambiguator` over snapshot facades."""
        from repro.core.config import AidaConfig
        from repro.core.pipeline import AidaDisambiguator

        if config is None:
            config = AidaConfig.full()
        compiled = None
        if config.use_compiled:
            compiled = self.compiled
            if config.keyword_weight_scheme != compiled.scheme:
                raise _fail(
                    self.path,
                    f"compiled with scheme {compiled.scheme!r} but the "
                    f"pipeline wants {config.keyword_weight_scheme!r}; "
                    f"rebuild with --scheme {config.keyword_weight_scheme}",
                )
            if (config.max_keyphrases or None) != compiled.max_keyphrases:
                raise _fail(
                    self.path,
                    f"compiled with max_keyphrases="
                    f"{compiled.max_keyphrases!r} but the pipeline wants "
                    f"{config.max_keyphrases or None!r}; rebuild to match",
                )
        sketches = None
        backend = config.relatedness_backend
        for gearing, backend_name in GEARINGS.items():
            if backend == backend_name:
                sketches = self.sketches(gearing)
        # Embedded matrices win; a config needing embeddings over an
        # image without them (a version-1 snapshot, or one built without
        # --embeddings) falls back to the pipeline's deterministic
        # on-demand training over the snapshot facades.
        embedding_model = None
        if config.needs_embeddings and self.has_embeddings:
            embedding_model = self.embeddings
        relatedness = AidaDisambiguator.build_relatedness(
            self.kb,
            config,
            store=self.store,
            weights=self.weights,
            sketches=sketches,
            embeddings=embedding_model,
        )
        return AidaDisambiguator(
            self.kb,
            relatedness=relatedness,
            config=config,
            keyphrase_store=self.store,
            weight_model=self.weights,
            compiled_keyphrases=compiled,
            embedding_model=embedding_model,
        )

    def sections(self) -> List[Dict[str, Any]]:
        """The table of contents (name/offset/length/crc per section)."""
        return [dict(entry) for entry in self._image.toc]

    def close(self) -> None:
        self._image.close()


class SnapshotPipelineFactory:
    """Picklable factory: workers attach to the snapshot by *path*.

    Unlike the fork/pickle factory, nothing heavy crosses the process
    boundary — each worker maps the image read-only and shares its pages
    with every other worker through the OS page cache.
    """

    def __init__(self, path: str, config=None, verify: bool = True) -> None:
        self.path = path
        self.config = config
        self.verify = verify

    @property
    def source_description(self) -> str:
        """Shown in serving ``/stats`` as the worker pipeline source."""
        return f"snapshot:{self.path}"

    def __call__(self):
        snapshot = load_snapshot(self.path, verify=self.verify)
        return snapshot.pipeline(self.config)


def load_snapshot(path: str, verify: bool = True) -> Snapshot:
    """Map a snapshot image; verifies every checksum unless ``verify=False``.

    Raises :class:`SnapshotError` (a :class:`PermanentError`) on any
    missing, truncated, or corrupt image — never serves a wrong answer.
    """
    image = _Image(path, verify=verify)
    try:
        manifest = image.js("manifest")
    except SnapshotError:
        image.close()
        raise
    if manifest.get("format") not in SUPPORTED_VERSIONS:
        image.close()
        raise _fail(
            path,
            f"manifest format {manifest.get('format')!r} is not a "
            f"supported container version "
            f"({', '.join(map(str, SUPPORTED_VERSIONS))})",
        )
    return Snapshot(image, manifest)


def inspect_snapshot(path: str) -> Dict[str, Any]:
    """Manifest plus section layout, for ``repro snapshot inspect``."""
    snapshot = load_snapshot(path, verify=True)
    try:
        return {
            "path": os.path.abspath(path),
            "file_bytes": os.path.getsize(path),
            "manifest": snapshot.manifest,
            "sections": snapshot.sections(),
        }
    finally:
        snapshot.close()
