"""SPO triple store.

Knowledge bases store facts as subject-property-object triples according to
the RDF data model (Section 2.3.2).  This module is a small in-memory triple
store with the classic six-index layout (SPO/SOP/PSO/POS/OSP/OPS collapsed to
three dictionaries keyed by the bound positions actually queried), supporting
pattern queries where any position may be a wildcard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import KnowledgeBaseError

#: Wildcard marker for pattern queries.
ANY = None


@dataclass(frozen=True)
class Triple:
    """One subject-property-object fact, e.g. (Bob_Dylan, created, Desire)."""

    subject: str
    predicate: str
    obj: str

    def __post_init__(self) -> None:
        if not (self.subject and self.predicate and self.obj):
            raise KnowledgeBaseError(
                f"triple components must be non-empty: {self!r}"
            )

    def as_tuple(self) -> Tuple[str, str, str]:
        """The triple as a plain (s, p, o) tuple."""
        return (self.subject, self.predicate, self.obj)


class TripleStore:
    """In-memory triple store with pattern matching.

    ``match(s, p, o)`` accepts ``None`` (:data:`ANY`) in any position and
    iterates all matching triples.  Insertion is idempotent.
    """

    def __init__(self) -> None:
        self._triples: Set[Tuple[str, str, str]] = set()
        self._by_subject: Dict[str, Set[Tuple[str, str, str]]] = {}
        self._by_predicate: Dict[str, Set[Tuple[str, str, str]]] = {}
        self._by_object: Dict[str, Set[Tuple[str, str, str]]] = {}

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple.as_tuple() in self._triples

    def add(self, subject: str, predicate: str, obj: str) -> bool:
        """Insert a triple; returns False if it was already present."""
        triple = Triple(subject, predicate, obj).as_tuple()
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._by_subject.setdefault(subject, set()).add(triple)
        self._by_predicate.setdefault(predicate, set()).add(triple)
        self._by_object.setdefault(obj, set()).add(triple)
        return True

    def remove(self, subject: str, predicate: str, obj: str) -> bool:
        """Remove a triple; returns False if it was not present."""
        triple = (subject, predicate, obj)
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self._by_subject[subject].discard(triple)
        self._by_predicate[predicate].discard(triple)
        self._by_object[obj].discard(triple)
        return True

    def match(
        self,
        subject: Optional[str] = ANY,
        predicate: Optional[str] = ANY,
        obj: Optional[str] = ANY,
    ) -> Iterator[Triple]:
        """Iterate triples matching the pattern; None matches anything."""
        candidates = self._candidate_set(subject, predicate, obj)
        for s, p, o in sorted(candidates):
            if subject is not ANY and s != subject:
                continue
            if predicate is not ANY and p != predicate:
                continue
            if obj is not ANY and o != obj:
                continue
            yield Triple(s, p, o)

    def _candidate_set(
        self,
        subject: Optional[str],
        predicate: Optional[str],
        obj: Optional[str],
    ) -> Set[Tuple[str, str, str]]:
        # Pick the most selective bound index available.
        indexed: List[Set[Tuple[str, str, str]]] = []
        if subject is not ANY:
            indexed.append(self._by_subject.get(subject, set()))
        if obj is not ANY:
            indexed.append(self._by_object.get(obj, set()))
        if predicate is not ANY:
            indexed.append(self._by_predicate.get(predicate, set()))
        if not indexed:
            return self._triples
        return min(indexed, key=len)

    def objects(self, subject: str, predicate: str) -> List[str]:
        """All objects o with (subject, predicate, o) in the store."""
        return [t.obj for t in self.match(subject, predicate, ANY)]

    def subjects(self, predicate: str, obj: str) -> List[str]:
        """All subjects s with (s, predicate, obj) in the store."""
        return [t.subject for t in self.match(ANY, predicate, obj)]

    def predicates_of(self, subject: str) -> List[str]:
        """Distinct predicates appearing with the given subject."""
        return sorted({t.predicate for t in self.match(subject, ANY, ANY)})
