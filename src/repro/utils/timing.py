"""Wall-clock timing used by the efficiency experiments (Table 4.4) and
the per-stage pipeline instrumentation."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Union


class Stopwatch:
    """Accumulates elapsed time per named phase.

    Usage::

        watch = Stopwatch()
        with watch.measure("coherence"):
            ...
        watch.total("coherence")
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def measure(self, phase: str) -> "_Measurement":
        """Context manager timing one phase occurrence."""
        return _Measurement(self, phase)

    def record(self, phase: str, elapsed: float) -> None:
        """Add an elapsed duration to a phase."""
        self._totals[phase] = self._totals.get(phase, 0.0) + elapsed
        self._counts[phase] = self._counts.get(phase, 0) + 1

    def total(self, phase: str) -> float:
        """Accumulated seconds of a phase."""
        return self._totals.get(phase, 0.0)

    def count(self, phase: str) -> int:
        """Number of recorded occurrences of a phase."""
        return self._counts.get(phase, 0)

    def phases(self) -> List[str]:
        """All phase names, sorted."""
        return sorted(self._totals)


class _Measurement:
    def __init__(self, watch: Stopwatch, phase: str):
        self._watch = watch
        self._phase = phase
        self._start = 0.0

    def __enter__(self) -> "_Measurement":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._watch.record(self._phase, time.perf_counter() - self._start)


@dataclass
class PipelineStats:
    """Per-stage instrumentation of one disambiguation run.

    ``phase_seconds`` maps stage name (``candidate_retrieval``,
    ``feature_computation``, ``coherence_test``, ``graph_build``,
    ``solve``, ``post_process``) to accumulated wall-clock seconds; ``counters`` carries volume/effort
    numbers (mention and candidate counts, solver iterations, heap pops,
    …).  Attached to :class:`repro.types.DisambiguationResult` and kept as
    ``last_stats`` on the disambiguator.
    """

    phase_seconds: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, Union[int, float, str]] = field(default_factory=dict)

    @classmethod
    def from_stopwatch(
        cls,
        watch: "Stopwatch",
        counters: Optional[Mapping[str, Union[int, float, str]]] = None,
    ) -> "PipelineStats":
        """Collect every phase of *watch* plus optional counters."""
        return cls(
            phase_seconds={
                phase: watch.total(phase) for phase in watch.phases()
            },
            counters=dict(counters) if counters else {},
        )

    @classmethod
    def from_registry(
        cls, registry, stage_prefix: str = "pipeline.stage."
    ) -> "PipelineStats":
        """View a :class:`repro.obs.metrics.MetricsRegistry` as stats.

        ``phase_seconds`` comes from the ``{stage_prefix}<name>.seconds``
        histogram sums; ``counters`` from every registry counter.  This
        is the cross-document aggregate view — per-document stats stay on
        each :class:`~repro.types.DisambiguationResult`.
        """
        snapshot = registry.snapshot()
        suffix = ".seconds"
        phase_seconds: Dict[str, float] = {}
        for name, hist in snapshot.get("histograms", {}).items():
            if name.startswith(stage_prefix) and name.endswith(suffix):
                phase = name[len(stage_prefix):-len(suffix)]
                phase_seconds[phase] = float(hist.get("sum", 0.0))
        return cls(
            phase_seconds=phase_seconds,
            counters=dict(snapshot.get("counters", {})),
        )

    @classmethod
    def merge(cls, stats: Iterable["PipelineStats"]) -> "PipelineStats":
        """Fold per-document stats into corpus totals.

        Phase seconds and numeric counters add up; ``relatedness_cache_*``
        counters are *cumulative snapshots* (each document reports the
        shared cache's running totals), so the merged value keeps the
        maximum seen rather than a meaningless sum.  Non-numeric counters
        (e.g. the solver's post-process strategy string) are dropped.
        """
        merged = cls()
        for item in stats:
            if item is None:
                continue
            for phase, seconds in item.phase_seconds.items():
                merged.phase_seconds[phase] = (
                    merged.phase_seconds.get(phase, 0.0) + seconds
                )
            for key, value in item.counters.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                if key.startswith("relatedness_cache_"):
                    previous = merged.counters.get(key, value)
                    merged.counters[key] = max(previous, value)
                else:
                    merged.counters[key] = (
                        merged.counters.get(key, 0) + value
                    )
        return merged

    @property
    def total_seconds(self) -> float:
        """Sum of all recorded phase durations."""
        return sum(self.phase_seconds.values())

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view (benchmark output, logging)."""
        return {
            "phase_seconds": dict(self.phase_seconds),
            "total_seconds": self.total_seconds,
            "counters": dict(self.counters),
        }


@dataclass
class TimingStats:
    """Summary statistics over a list of per-document timings."""

    samples: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        """Record one sample."""
        self.samples.append(value)

    @property
    def mean(self) -> float:
        """Sample mean (0 when empty)."""
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def stddev(self) -> float:
        """Sample standard deviation (0 for fewer than two samples)."""
        n = len(self.samples)
        if n < 2:
            return 0.0
        mean = self.mean
        return (sum((x - mean) ** 2 for x in self.samples) / (n - 1)) ** 0.5

    def quantile(self, q: float) -> float:
        """Empirical quantile by nearest-rank (q in [0, 1]).

        Nearest-rank is ``ceil(q*n) - 1`` (0-based): q=0.9 over 10
        samples is the 9th ordered sample, not the maximum.  The epsilon
        guards against float products like ``q*n = 9.000000000000002``
        ceiling one rank too far.
        """
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = min(
            len(ordered) - 1,
            max(0, math.ceil(q * len(ordered) - 1e-9) - 1),
        )
        return ordered[rank]
