"""Shared utilities: seeded randomness, text normalization, timing."""

from repro.utils.rng import SeededRng, derive_seed
from repro.utils.text import normalize_token, normalize_phrase
from repro.utils.timing import PipelineStats, Stopwatch

__all__ = [
    "SeededRng",
    "derive_seed",
    "normalize_token",
    "normalize_phrase",
    "PipelineStats",
    "Stopwatch",
]
