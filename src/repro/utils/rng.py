"""Deterministic random-number helpers.

Every stochastic component of the library (synthetic-world generation,
perturbation-based confidence, local search) takes an explicit seed so that
experiments are exactly reproducible.  ``derive_seed`` deterministically forks
independent streams from a parent seed and a string label, so adding a new
consumer of randomness never shifts the values another consumer sees.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")

_MASK_64 = (1 << 64) - 1


def derive_seed(seed: int, label: str) -> int:
    """Derive an independent 64-bit child seed from *seed* and *label*."""
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _MASK_64


class SeededRng:
    """A thin, explicitly-seeded wrapper around :class:`random.Random`.

    Exposes only the operations the library actually uses, plus ``fork`` to
    create independent sub-streams.
    """

    def __init__(self, seed: int):
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, label: str) -> "SeededRng":
        """Return a new rng whose stream is independent of this one."""
        return SeededRng(derive_seed(self.seed, label))

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Random integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def gauss(self, mu: float, sigma: float) -> float:
        """Gaussian sample with the given mean and stddev."""
        return self._random.gauss(mu, sigma)

    def choice(self, items: Sequence[T]) -> T:
        """One uniformly chosen item."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """k distinct items (capped at the population size)."""
        k = min(k, len(items))
        return self._random.sample(items, k)

    def shuffle(self, items: List[T]) -> None:
        """Shuffle the list in place."""
        self._random.shuffle(items)

    def shuffled(self, items: Iterable[T]) -> List[T]:
        """A shuffled copy of the items."""
        out = list(items)
        self._random.shuffle(out)
        return out

    def weighted_choice(
        self, items: Sequence[T], weights: Sequence[float]
    ) -> T:
        """Pick one item with probability proportional to its weight."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        return self._random.choices(items, weights=weights, k=1)[0]

    def zipf_weights(self, n: int, exponent: float = 1.0) -> List[float]:
        """Zipfian weights 1/rank**exponent for ranks 1..n (not normalized)."""
        if n <= 0:
            raise ValueError("n must be positive")
        return [1.0 / (rank**exponent) for rank in range(1, n + 1)]

    def subset(self, items: Sequence[T], probability: float) -> List[T]:
        """Keep each item independently with the given probability."""
        return [item for item in items if self._random.random() < probability]

    def maybe(self, probability: float) -> bool:
        """True with the given probability."""
        return self._random.random() < probability

    def pick_k_weighted(
        self,
        items: Sequence[T],
        weights: Sequence[float],
        k: int,
        unique: bool = True,
    ) -> List[T]:
        """Pick *k* items with probability proportional to weight.

        With ``unique=True`` (default) the result contains no duplicates;
        items are drawn without replacement.
        """
        if not unique:
            return self._random.choices(items, weights=weights, k=k)
        chosen: List[T] = []
        pool = list(items)
        pool_weights = list(weights)
        k = min(k, len(pool))
        for _ in range(k):
            total = sum(pool_weights)
            if total <= 0.0:
                break
            pick = self._random.random() * total
            acc = 0.0
            index = 0
            for index, weight in enumerate(pool_weights):
                acc += weight
                if pick <= acc:
                    break
            chosen.append(pool.pop(index))
            pool_weights.pop(index)
        return chosen
