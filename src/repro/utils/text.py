"""Text normalization helpers used by the dictionary and similarity code."""

from __future__ import annotations

from typing import Iterable, List, Tuple


def normalize_token(token: str) -> str:
    """Lower-case a token and strip surrounding punctuation."""
    return token.strip(".,;:!?'\"()[]").lower()


def normalize_phrase(phrase: str) -> str:
    """Normalize a multi-word phrase: collapse whitespace, lower-case."""
    return " ".join(normalize_token(tok) for tok in phrase.split() if tok)


def phrase_tokens(phrase: str) -> Tuple[str, ...]:
    """Split a phrase into normalized, non-empty tokens."""
    return tuple(
        norm for tok in phrase.split() if (norm := normalize_token(tok))
    )


def upper_case_ratio(text: str) -> float:
    """Fraction of alphabetic characters that are upper-case."""
    alpha = [ch for ch in text if ch.isalpha()]
    if not alpha:
        return 0.0
    return sum(1 for ch in alpha if ch.isupper()) / len(alpha)


def is_all_upper(text: str) -> bool:
    """True if the text has alphabetic characters and all are upper-case."""
    alpha = [ch for ch in text if ch.isalpha()]
    return bool(alpha) and all(ch.isupper() for ch in alpha)


def join_tokens(tokens: Iterable[str]) -> str:
    """Join tokens with single spaces."""
    return " ".join(tokens)


def ngrams(tokens: List[str], max_len: int) -> List[Tuple[int, int]]:
    """All (start, end) spans of length 1..max_len over the token list."""
    spans: List[Tuple[int, int]] = []
    n = len(tokens)
    for start in range(n):
        for length in range(1, max_len + 1):
            end = start + length
            if end > n:
                break
            spans.append((start, end))
    return spans
