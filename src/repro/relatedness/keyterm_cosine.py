"""Keyterm cosine relatedness baselines (Section 4.3.2).

Entities are cast into weighted keyterm vectors and compared by cosine
similarity.  Following the experimental setup of Section 4.5.2, keyphrases
are weighted by normalized mutual information µ (Eq. 4.1) and keywords by
IDF; for the keyword variant (KWCS) each word's weight is additionally
multiplied by the average µ weight of the phrases it was taken from.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping

from repro.kb.keyphrases import KeyphraseStore, Phrase
from repro.relatedness.base import EntityRelatedness
from repro.types import EntityId
from repro.weights.model import WeightModel


def cosine(
    vec_a: Mapping[Hashable, float], vec_b: Mapping[Hashable, float]
) -> float:
    """Cosine similarity of two sparse vectors (0 if either is empty)."""
    if not vec_a or not vec_b:
        return 0.0
    if len(vec_a) > len(vec_b):
        vec_a, vec_b = vec_b, vec_a
    dot = sum(
        weight * vec_b[term]
        for term, weight in vec_a.items()
        if term in vec_b
    )
    if dot == 0.0:
        return 0.0
    norm_a = math.sqrt(sum(w * w for w in vec_a.values()))
    norm_b = math.sqrt(sum(w * w for w in vec_b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


class KeyphraseCosineRelatedness(EntityRelatedness):
    """KPCS — cosine over keyphrase vectors with µ weights."""

    name = "KPCS"

    def __init__(self, store: KeyphraseStore, weights: WeightModel):
        super().__init__()
        self._store = store
        self._weights = weights
        self._vectors: Dict[EntityId, Dict[Phrase, float]] = {}

    def _vector(self, entity_id: EntityId) -> Dict[Phrase, float]:
        cached = self._vectors.get(entity_id)
        if cached is None:
            cached = dict(self._weights.keyphrase_weights(entity_id))
            self._vectors[entity_id] = cached
        return cached

    def _compute(self, a: EntityId, b: EntityId) -> float:
        return cosine(self._vector(a), self._vector(b))


class KeywordCosineRelatedness(EntityRelatedness):
    """KWCS — cosine over keyword vectors derived from keyphrases.

    Word weight = IDF(word) × (average µ weight of the entity's phrases
    containing the word), per Section 4.3.2.
    """

    name = "KWCS"

    def __init__(self, store: KeyphraseStore, weights: WeightModel):
        super().__init__()
        self._store = store
        self._weights = weights
        self._vectors: Dict[EntityId, Dict[str, float]] = {}

    def _vector(self, entity_id: EntityId) -> Dict[str, float]:
        cached = self._vectors.get(entity_id)
        if cached is not None:
            return cached
        phrase_weights = self._weights.keyphrase_weights(entity_id)
        phrase_weight_sums: Dict[str, float] = {}
        phrase_counts: Dict[str, int] = {}
        for phrase in self._store.keyphrases(entity_id):
            mu = phrase_weights.get(phrase, 0.0)
            for word in set(phrase):
                phrase_weight_sums[word] = (
                    phrase_weight_sums.get(word, 0.0) + mu
                )
                phrase_counts[word] = phrase_counts.get(word, 0) + 1
        vector: Dict[str, float] = {}
        for word, total in phrase_weight_sums.items():
            average_mu = total / phrase_counts[word]
            weight = self._weights.idf_word(word) * average_mu
            if weight > 0.0:
                vector[word] = weight
        self._vectors[entity_id] = vector
        return vector

    def _compute(self, a: EntityId, b: EntityId) -> float:
        return cosine(self._vector(a), self._vector(b))
