"""Milne–Witten inlink-overlap relatedness (Eq. 3.7).

::

    MW(e, f) = 1 - ( log(max(|Ie|,|If|)) - log(|Ie ∩ If|) )
                   / ( log(N) - log(min(|Ie|,|If|)) )

set to 0 when negative, when either inlink set is empty, or when the
intersection is empty.  This is the normalized Google-distance style measure
derived from Wikipedia's link structure that most prior NED work relies on;
its weakness on link-poor entities motivates KORE.
"""

from __future__ import annotations

import math

from repro.kb.links import LinkGraph
from repro.relatedness.base import EntityRelatedness
from repro.types import EntityId


class MilneWittenRelatedness(EntityRelatedness):
    """The inlink-overlap measure of Eq. 3.7."""
    name = "MW"

    def __init__(self, links: LinkGraph, collection_size: int):
        super().__init__()
        if collection_size < 2:
            raise ValueError("collection_size must be >= 2")
        self._links = links
        self._n = collection_size

    def _compute(self, a: EntityId, b: EntityId) -> float:
        ins_a = self._links.inlinks(a)
        ins_b = self._links.inlinks(b)
        if not ins_a or not ins_b:
            return 0.0
        shared = len(ins_a & ins_b)
        if shared == 0:
            return 0.0
        larger = max(len(ins_a), len(ins_b))
        smaller = min(len(ins_a), len(ins_b))
        denominator = math.log(self._n) - math.log(smaller)
        if denominator <= 0.0:
            return 0.0
        value = 1.0 - (math.log(larger) - math.log(shared)) / denominator
        return max(value, 0.0)
