"""Common interface for entity relatedness measures.

All measures are symmetric functions of two entity ids into [0, 1].  The base
class provides result caching and counts the number of *actual* pairwise
computations — the quantity Table 4.4 reports — so subclasses only implement
``_compute``.  Measures with a pre-clustering stage (LSH) override
``prepare`` and ``should_compare``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, Tuple

from repro.faults.injector import get_injector
from repro.types import EntityId


class EntityRelatedness(ABC):
    """Symmetric, cached entity-entity relatedness in [0, 1]."""

    #: Human-readable measure name (used in benchmark tables).
    name: str = "relatedness"

    def __init__(self) -> None:
        self._cache: Dict[Tuple[EntityId, EntityId], float] = {}
        self.comparisons = 0

    def prepare(self, entities: Iterable[EntityId]) -> None:
        """Hook run once per task over the candidate entity set.

        Pre-clustering measures (LSH) build their buckets here; the default
        does nothing.
        """

    def should_compare(self, a: EntityId, b: EntityId) -> bool:
        """Whether the exact measure should be computed for this pair.

        LSH-based measures return False for pairs sharing no hash bucket;
        such pairs are assumed unrelated (relatedness 0) without counting a
        comparison.
        """
        return True

    def cacheable_pair(self, a: EntityId, b: EntityId) -> bool:
        """Whether an *external* memoizer may retain this pair's value.

        Task-independent measures (MW, Jaccard, KORE, cosine) always
        return True.  Measures whose answer depends on per-task ``prepare``
        state return False for task-dependent values — an LSH-pruned 0.0
        holds only for the candidate set it was pruned against, so a
        cross-document LRU (:class:`repro.relatedness.caching
        .CachingRelatedness`) must not carry it into the next document.
        The measure's *own* ``_cache`` is exempt: ``prepare`` clears it.
        """
        return True

    @staticmethod
    def canonical_pair(
        a: EntityId, b: EntityId
    ) -> Tuple[EntityId, EntityId]:
        """The unique ordered form of an unordered entity pair.

        All measures are symmetric, so every cache lookup, comparison
        count, and ``_compute`` call goes through this single
        canonicalization — subclasses never see a ``(b, a)`` variant of a
        pair they already answered as ``(a, b)``.
        """
        return (a, b) if a <= b else (b, a)

    def compute_pair(self, a: EntityId, b: EntityId) -> float:
        """Uncached relatedness of a pair, order-insensitive.

        Canonicalizes the pair, applies ``should_compare`` pruning, counts
        the comparison, and clamps the subclass value into [0, 1].  This is
        the single computation path shared by :meth:`relatedness` and by
        external memoizers such as
        :class:`repro.relatedness.caching.CachingRelatedness`, which must
        be observationally identical to the wrapped measure.
        """
        if a == b:
            return 1.0
        first, second = self.canonical_pair(a, b)
        if not self.should_compare(first, second):
            return 0.0
        injector = get_injector()
        if injector.enabled:
            # The ``relatedness`` chaos site: every *actual* pairwise
            # computation, cached wrappers included (their hits never
            # reach this path — a warm cache really is more reliable).
            injector.fire("relatedness")
        self.comparisons += 1
        value = float(self._compute(first, second))
        return min(max(value, 0.0), 1.0)

    def compute_uncounted(self, a: EntityId, b: EntityId) -> float:
        """The raw clamped measure value, bypassing the accounting.

        No pruning, no chaos-site firing, no comparison counting — the
        delegation path for wrappers (LSH) whose own ``compute_pair``
        already performed all three for the pair.  Calling this directly
        therefore never double-fires the ``relatedness`` fault site and
        never double-increments ``comparisons``.
        """
        if a == b:
            return 1.0
        first, second = self.canonical_pair(a, b)
        value = float(self._compute(first, second))
        return min(max(value, 0.0), 1.0)

    def relatedness(self, a: EntityId, b: EntityId) -> float:
        """Relatedness of the pair; identical ids are fully related."""
        if a == b:
            return 1.0
        key = self.canonical_pair(a, b)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        value = self.compute_pair(key[0], key[1])
        self._cache[key] = value
        return value

    @abstractmethod
    def _compute(self, a: EntityId, b: EntityId) -> float:
        """Compute the raw measure for a canonical (a <= b) pair."""

    def reset_stats(self) -> None:
        """Clear the cache and the comparison counter."""
        self._cache.clear()
        self.comparisons = 0

    def rank_candidates(
        self, seed: EntityId, candidates: Iterable[EntityId]
    ) -> list:
        """Candidates sorted by descending relatedness to *seed* (ties by
        id) — the operation the relatedness gold standard evaluates."""
        pool = list(candidates)
        return sorted(
            pool, key=lambda eid: (-self.relatedness(seed, eid), eid)
        )
