"""KORE — keyphrase overlap relatedness (Section 4.3.3).

Phrase overlap (Eq. 4.3) is the weighted Jaccard of the two phrases' keyword
sets, with entity-specific keyword weights γ::

    PO(p, q) = sum_{w in p∩q} min(γe(w), γf(w))
             / sum_{w in p∪q} max(γe(w), γf(w))

KORE (Eq. 4.4) aggregates PO over all phrase pairs, squaring PO to penalize
partial overlap and re-weighting by the lesser phrase weight ϕ::

    KORE(e, f) = sum_{p,q} PO(p,q)^2 · min(ϕe(p), ϕf(q))
               / ( sum_p ϕe(p) + sum_q ϕf(q) )

Per the experiments, ϕ uses µ (normalized MI) phrase weights and γ uses IDF
keyword weights.  Only phrase pairs sharing at least one word can have
PO > 0, so the implementation indexes phrases by word to skip the rest:
per phrase of the first entity, candidate partners are deduplicated with
a seen-set of integer phrase indices (no materialized set of tuple
pairs), and the per-entity ``sum(ϕ)`` halves of the denominator are
cached alongside ϕ itself.

With a :class:`~repro.compiled.keyphrases.CompiledKeyphrases` attached,
the whole measure runs on flat id arrays (sorted-id merges for the
min/max weighted Jaccard) — score-equivalent within 1e-9.

The LSH-pruned production backends (§4.4.2,
:class:`~repro.relatedness.lsh.KoreLshRelatedness`) wrap this measure
and score only band-colliding pairs through
:meth:`~repro.relatedness.base.EntityRelatedness.compute_uncounted`, so
the wrapper owns the comparison counter and the ``relatedness`` fault
site fires once per surviving pair — never here a second time.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Set, Tuple

from repro.kb.keyphrases import KeyphraseStore, Phrase
from repro.relatedness.base import EntityRelatedness
from repro.types import EntityId
from repro.weights.model import WeightModel


def phrase_overlap(
    phrase_p: Sequence[str],
    phrase_q: Sequence[str],
    gamma_e: Mapping[str, float],
    gamma_f: Mapping[str, float],
) -> float:
    """Eq. 4.3 — weighted Jaccard overlap of two phrases' word sets."""
    words_p = set(phrase_p)
    words_q = set(phrase_q)
    numerator = sum(
        min(gamma_e.get(word, 0.0), gamma_f.get(word, 0.0))
        for word in words_p & words_q
    )
    if numerator == 0.0:
        return 0.0
    denominator = sum(
        max(gamma_e.get(word, 0.0), gamma_f.get(word, 0.0))
        for word in words_p | words_q
    )
    if denominator <= 0.0:
        return 0.0
    return numerator / denominator


class KoreRelatedness(EntityRelatedness):
    """Keyphrase overlap relatedness with µ phrase / IDF word weights."""

    name = "KORE"

    def __init__(
        self,
        store: KeyphraseStore,
        weights: WeightModel,
        squared: bool = True,
        compiled=None,
    ):
        super().__init__()
        self._store = store
        self._weights = weights
        #: Squaring PO penalizes partially overlapping phrases (the paper's
        #: choice); ``squared=False`` is the ablation knob.
        self.squared = squared
        self.compiled = compiled
        self._phrase_weight_cache: Dict[EntityId, Dict[Phrase, float]] = {}
        self._phi_sum_cache: Dict[EntityId, float] = {}
        self._gamma_cache: Dict[EntityId, Dict[str, float]] = {}
        self._phrase_list_cache: Dict[EntityId, List[Phrase]] = {}
        self._word_index_cache: Dict[EntityId, Dict[str, List[int]]] = {}

    def attach_compiled(self, compiled) -> None:
        """Switch this measure onto a compiled keyphrase model."""
        self.compiled = compiled

    # ------------------------------------------------------------------
    # Per-entity cached models
    # ------------------------------------------------------------------
    def _phi(self, entity_id: EntityId) -> Dict[Phrase, float]:
        cached = self._phrase_weight_cache.get(entity_id)
        if cached is None:
            cached = dict(self._weights.keyphrase_weights(entity_id))
            self._phrase_weight_cache[entity_id] = cached
        return cached

    def _phi_sum(self, entity_id: EntityId) -> float:
        """Cached ``sum(ϕ.values())`` — one half of the denominator."""
        cached = self._phi_sum_cache.get(entity_id)
        if cached is None:
            cached = sum(self._phi(entity_id).values())
            self._phi_sum_cache[entity_id] = cached
        return cached

    def _gamma(self, entity_id: EntityId) -> Dict[str, float]:
        cached = self._gamma_cache.get(entity_id)
        if cached is None:
            cached = self._weights.keyword_weights(entity_id, scheme="idf")
            self._gamma_cache[entity_id] = cached
        return cached

    def _phrases(self, entity_id: EntityId) -> List[Phrase]:
        """Cached sorted phrase list (``keyphrases`` sorts per call)."""
        cached = self._phrase_list_cache.get(entity_id)
        if cached is None:
            cached = self._store.keyphrases(entity_id)
            self._phrase_list_cache[entity_id] = cached
        return cached

    def _word_index(self, entity_id: EntityId) -> Dict[str, List[int]]:
        """word -> indices (into ``_phrases``) of phrases containing it."""
        cached = self._word_index_cache.get(entity_id)
        if cached is None:
            cached = {}
            for index, phrase in enumerate(self._phrases(entity_id)):
                for word in set(phrase):
                    cached.setdefault(word, []).append(index)
            self._word_index_cache[entity_id] = cached
        return cached

    # ------------------------------------------------------------------
    # The measure
    # ------------------------------------------------------------------
    def _compute(self, a: EntityId, b: EntityId) -> float:
        if self.compiled is not None:
            from repro.compiled.scoring import kore_score

            return kore_score(
                self.compiled.kore_model(a),
                self.compiled.kore_model(b),
                squared=self.squared,
            )
        phi_a = self._phi(a)
        phi_b = self._phi(b)
        denominator = self._phi_sum(a) + self._phi_sum(b)
        if denominator <= 0.0:
            return 0.0
        gamma_a = self._gamma(a)
        gamma_b = self._gamma(b)
        # Restrict to phrase pairs sharing at least one word; a per-phrase
        # seen-set of integer indices dedupes partners found through
        # several shared words.
        phrases_b = self._phrases(b)
        index_b = self._word_index(b)
        numerator = 0.0
        for phrase_p in self._phrases(a):
            weight_p = phi_a.get(phrase_p, 0.0)
            seen: Set[int] = set()
            for word in set(phrase_p):
                for q in index_b.get(word, ()):
                    if q in seen:
                        continue
                    seen.add(q)
                    phrase_q = phrases_b[q]
                    po = phrase_overlap(
                        phrase_p, phrase_q, gamma_a, gamma_b
                    )
                    if po == 0.0:
                        continue
                    if self.squared:
                        po = po * po
                    numerator += po * min(
                        weight_p, phi_b.get(phrase_q, 0.0)
                    )
        return numerator / denominator
