"""Shared, thread-safe memoization of entity relatedness.

Every measure already memoizes within one instance (the base-class cache),
but a corpus run that builds one pipeline per document — or fans documents
out over a worker pool — recomputes the same Milne–Witten/KORE pairs from
scratch for every document.  :class:`CachingRelatedness` wraps any
:class:`~repro.relatedness.base.EntityRelatedness` in a symmetric-key LRU
that several pipelines (and several threads) can share, with hit/miss/
eviction counters that the pipeline surfaces through
:class:`~repro.utils.timing.PipelineStats`.

The wrapper is observationally identical to the wrapped measure: values go
through the same :meth:`~repro.relatedness.base.EntityRelatedness
.compute_pair` canonicalization/pruning/clamping path, so a cached corpus
run is bit-identical to an uncached one.

Thread-safety notes: the LRU itself is guarded by a lock; the wrapped
measure's ``_compute`` runs *outside* the lock, so concurrent first
requests for the same pair may compute it twice (both arriving at the same
value — every measure is deterministic).  After warm-up no pair is ever
recomputed.  Measures with per-task ``prepare`` state (LSH pre-clustering)
keep that state thread-local and are shareable like the stateless-prepare
measures (MW, Jaccard, KORE, cosine); values they report as task-dependent
through :meth:`~repro.relatedness.base.EntityRelatedness.cacheable_pair`
(LSH-pruned zeros) are answered but never stored, so a pair pruned under
one document's candidate set cannot leak a stale 0.0 into the next.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.obs import get_metrics
from repro.relatedness.base import EntityRelatedness
from repro.types import EntityId


@dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of the cache counters.

    ``hits + misses`` equals the number of non-identical-pair lookups;
    ``computations`` is the wrapped measure's comparison counter (it can
    exceed ``misses`` only through benign concurrent double-computation of
    a pair's very first request).
    """

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: Optional[int]
    computations: int

    @property
    def lookups(self) -> int:
        """Total lookups answered (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view (pipeline counters, benchmark records)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "maxsize": self.maxsize,
            "computations": self.computations,
            "hit_rate": self.hit_rate,
        }


class CachingRelatedness(EntityRelatedness):
    """Memoizing, thread-safe LRU wrapper around a relatedness measure.

    Parameters
    ----------
    inner:
        The measure to memoize.  Its ``prepare``/``should_compare``
        behaviour is delegated unchanged.
    maxsize:
        Upper bound on cached pairs; least-recently-used pairs are evicted
        beyond it.  ``None`` (the default) means unbounded — the right
        setting for batch runs over a closed candidate universe.
    """

    def __init__(
        self, inner: EntityRelatedness, maxsize: Optional[int] = None
    ):
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be None or >= 1")
        super().__init__()
        self._inner = inner
        self._maxsize = maxsize
        self._lru: "OrderedDict[Tuple[EntityId, EntityId], float]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        # Last values pushed to the global metrics registry (delta base),
        # guarded by its own lock so publishing never blocks lookups.
        self._publish_lock = threading.Lock()
        self._published: Dict[str, int] = {}
        self.name = f"cached({inner.name})"

    # ------------------------------------------------------------------
    # Delegation
    # ------------------------------------------------------------------
    @property
    def inner(self) -> EntityRelatedness:
        """The wrapped measure."""
        return self._inner

    @property
    def maxsize(self) -> Optional[int]:
        """The configured LRU capacity (``None`` = unbounded)."""
        return self._maxsize

    def prepare(self, entities: Iterable[EntityId]) -> None:
        self._inner.prepare(entities)

    def should_compare(self, a: EntityId, b: EntityId) -> bool:
        return self._inner.should_compare(a, b)

    def cacheable_pair(self, a: EntityId, b: EntityId) -> bool:
        return self._inner.cacheable_pair(a, b)

    def _compute(self, a: EntityId, b: EntityId) -> float:
        # Only reachable through the inherited ``relatedness`` (which this
        # class overrides); kept for the abstract contract.
        return self._inner.compute_pair(a, b)

    # ------------------------------------------------------------------
    # The memoized lookup
    # ------------------------------------------------------------------
    def relatedness(self, a: EntityId, b: EntityId) -> float:
        """Relatedness of the pair, served from the shared LRU."""
        if a == b:
            return 1.0
        key = self.canonical_pair(a, b)
        with self._lock:
            value = self._lru.get(key)
            if value is not None:
                self._lru.move_to_end(key)
                self._hits += 1
                return value
            self._misses += 1
        # Compute outside the lock: a slow KORE pair must not serialize
        # every other thread's lookups.
        value = self._inner.compute_pair(key[0], key[1])
        if not self._inner.cacheable_pair(key[0], key[1]):
            # Task-dependent value (an LSH-pruned 0.0): valid for this
            # lookup but not for a cache shared across documents.
            return value
        with self._lock:
            if key not in self._lru:
                self._lru[key] = value
                if (
                    self._maxsize is not None
                    and len(self._lru) > self._maxsize
                ):
                    self._lru.popitem(last=False)
                    self._evictions += 1
            else:
                self._lru.move_to_end(key)
        return value

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_stats(self) -> CacheStats:
        """A consistent snapshot of the counters.

        Snapshot points double as the metrics publication points: the
        deltas since the previous snapshot are folded into the global
        :mod:`repro.obs` registry as ``relatedness.cache.*`` counters
        (no-ops while observability is disabled), keeping the lookup hot
        path free of any metrics work.
        """
        with self._lock:
            stats = CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._lru),
                maxsize=self._maxsize,
                computations=self._inner.comparisons,
            )
        self._publish_metrics(stats)
        return stats

    def _publish_metrics(self, stats: CacheStats) -> None:
        metrics = get_metrics()
        if not metrics.enabled:
            return
        totals = {
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "computations": stats.computations,
        }
        with self._publish_lock:
            for key, total in totals.items():
                delta = total - self._published.get(key, 0)
                if delta > 0:
                    metrics.counter(f"relatedness.cache.{key}").inc(delta)
                    self._published[key] = total
            metrics.gauge("relatedness.cache.size").set(stats.size)

    def reset_stats(self) -> None:
        """Clear the LRU, the counters, and the wrapped measure's stats."""
        with self._lock:
            self._lru.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0
        with self._publish_lock:
            self._published.clear()
        super().reset_stats()
        self._inner.reset_stats()
