"""Entity-entity semantic relatedness measures (Chapters 3 and 4).

* :class:`MilneWittenRelatedness` — Wikipedia-inlink overlap (Eq. 3.7).
* :class:`InlinkJaccardRelatedness` — plain Jaccard on inlink sets.
* :class:`KeywordCosineRelatedness` (KWCS) and
  :class:`KeyphraseCosineRelatedness` (KPCS) — cosine baselines (Eq. 4.2).
* :class:`KoreRelatedness` — keyphrase overlap relatedness (Eq. 4.3–4.4).
* :class:`KoreLshRelatedness` — KORE accelerated by two-stage min-hash/LSH
  pre-clustering (Section 4.4.2), in recall-geared (G) and fast (F) settings.
* :class:`CachingRelatedness` — thread-safe shared LRU memoization of any
  measure, for batch/corpus runs (see :mod:`repro.core.batch`).
"""

from repro.relatedness.base import EntityRelatedness
from repro.relatedness.caching import CacheStats, CachingRelatedness
from repro.relatedness.milne_witten import MilneWittenRelatedness
from repro.relatedness.jaccard import InlinkJaccardRelatedness
from repro.relatedness.keyterm_cosine import (
    KeywordCosineRelatedness,
    KeyphraseCosineRelatedness,
)
from repro.relatedness.kore import KoreRelatedness, phrase_overlap
from repro.relatedness.lsh import KoreLshRelatedness, LshSettings

__all__ = [
    "EntityRelatedness",
    "CacheStats",
    "CachingRelatedness",
    "MilneWittenRelatedness",
    "InlinkJaccardRelatedness",
    "KeywordCosineRelatedness",
    "KeyphraseCosineRelatedness",
    "KoreRelatedness",
    "phrase_overlap",
    "KoreLshRelatedness",
    "LshSettings",
]
