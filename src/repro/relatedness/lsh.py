"""Two-stage hashing acceleration for KORE (Section 4.4.2).

Stage 1 (KB-wide, precomputed): every keyphrase is min-hash-sketched over its
word set and bucketed by LSH banding, grouping near-duplicate phrases.  Each
entity is then represented by the *set of phrase-bucket ids* of its phrases,
preserving the notion of partial phrase matches.

Stage 2 (per task, over the candidate entity set): entities are min-hash-
sketched over their phrase-bucket id sets and bucketed by a second LSH.  The
exact KORE measure is computed only for entity pairs sharing at least one
stage-two bucket; all other pairs are assumed unrelated (relatedness 0).

The paper's settings (KORE_LSH-G: 200 bands × 1 row; KORE_LSH-F: 1000 bands
× 2 rows over millions of entities) are scaled down for the synthetic KB —
the *geometry* (G: single-row bands → recall-geared; F: two-row bands →
aggressive pruning) is preserved, the sketch lengths are configurable.

Sharing and state:

* Stage-one artifacts (phrase buckets, entity bucket sets, entity sketches)
  depend only on the static KB, are built once — eagerly via
  :meth:`KoreLshRelatedness.precompute`, which the pipeline runs at
  construction, mirroring the paper's offline stage — and are read-only
  afterwards, so one measure instance can serve a whole worker pool.  For
  process pools, :meth:`export_sketches` lets the parent ship the
  precomputed sketches to workers instead of having each re-sketch the KB.
* Stage-two artifacts (the allowed-pair set and the pair cache) are
  *per task* and live in thread-local storage: concurrent batch threads
  each ``prepare()`` their own document's candidate set without clobbering
  one another.
"""

from __future__ import annotations

import threading
import time
from array import array
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.hashing.lsh import LshIndex, band_signature
from repro.hashing.minhash import MinHasher, element_id
from repro.kb.keyphrases import KeyphraseStore, Phrase
from repro.obs import get_metrics
from repro.relatedness.base import EntityRelatedness
from repro.relatedness.kore import KoreRelatedness
from repro.types import EntityId


@dataclass(frozen=True)
class LshSettings:
    """Geometry of the two LSH stages.

    ``phrase_*`` controls stage one (keyphrase grouping); ``entity_*``
    controls stage two (entity grouping).  ``phrase_sketch_len`` must equal
    ``phrase_bands * phrase_rows`` — the banding consumes the sketch
    exactly (enforced here so a mismatch fails loudly at construction
    instead of silently producing empty-band bucket ids).
    """

    phrase_sketch_len: int = 4
    phrase_bands: int = 2
    phrase_rows: int = 2
    entity_bands: int = 24
    entity_rows: int = 1
    seed: int = 17

    def __post_init__(self) -> None:
        for field_name in (
            "phrase_sketch_len",
            "phrase_bands",
            "phrase_rows",
            "entity_bands",
            "entity_rows",
        ):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")
        if self.phrase_sketch_len != self.phrase_bands * self.phrase_rows:
            raise ValueError(
                f"phrase_sketch_len {self.phrase_sketch_len} != "
                f"phrase_bands*phrase_rows = "
                f"{self.phrase_bands * self.phrase_rows}"
            )

    @property
    def entity_sketch_len(self) -> int:
        """Length of the stage-two entity sketches (bands x rows)."""
        return self.entity_bands * self.entity_rows

    @staticmethod
    def recall_geared(seed: int = 17) -> "LshSettings":
        """KORE_LSH-G: single-row entity bands, high recall.

        24 single-coordinate bands keep every coherence-relevant pair on
        the golden corpus while computing under a third of exact KORE's
        comparisons (see ``benchmarks/bench_lsh.py``).
        """
        return LshSettings(entity_bands=24, entity_rows=1, seed=seed)

    @staticmethod
    def fast(seed: int = 17) -> "LshSettings":
        """KORE_LSH-F: two-row entity bands, aggressive pruning."""
        return LshSettings(entity_bands=80, entity_rows=2, seed=seed)


class _OverlaySketches(Mapping):
    """A read-only sketch table with a writable overlay.

    Wraps a lazy mapping (e.g. a snapshot's mmap-backed ``SketchTable``)
    by reference — no copy, no upfront decode — while still letting
    :meth:`KoreLshRelatedness._entity_sketch` memoize locally computed
    sketches for ids the base table does not cover.
    """

    __slots__ = ("_base", "_overlay")

    def __init__(self, base: Mapping) -> None:
        self._base = base
        self._overlay: Dict[EntityId, Tuple[int, ...]] = {}

    def get(self, key, default=None):
        if key in self._overlay:
            return self._overlay[key]
        return self._base.get(key, default)

    def __getitem__(self, key):
        if key in self._overlay:
            return self._overlay[key]
        return self._base[key]

    def __setitem__(self, key, value) -> None:
        self._overlay[key] = value

    def __contains__(self, key) -> bool:
        return key in self._overlay or key in self._base

    def __iter__(self):
        seen = set(self._overlay)
        yield from self._overlay
        for key in self._base:
            if key not in seen:
                yield key

    def __len__(self) -> int:
        return len(set(self._overlay) | set(self._base))


class _TaskState(threading.local):
    """Per-thread stage-two state: one concurrent task per thread."""

    def __init__(self) -> None:
        self.allowed: Set[Tuple[EntityId, EntityId]] = set()
        self.prepared = False
        self.cache: Dict[Tuple[EntityId, EntityId], float] = {}


class KoreLshRelatedness(EntityRelatedness):
    """KORE with two-stage LSH pre-clustering.

    Wraps an exact :class:`~repro.relatedness.kore.KoreRelatedness`:
    pairs surviving stage-two banding get the exact (possibly compiled)
    KORE value; pruned pairs are 0.0 without computation.  The wrapper's
    ``comparisons`` counter is the Table 4.4 quantity — the inner
    measure's accounting is bypassed entirely (one pair = one fault-site
    fire = one count).
    """

    def __init__(
        self,
        store: KeyphraseStore,
        kore: KoreRelatedness,
        settings: Optional[LshSettings] = None,
        name: str = "KORE_LSH",
        sketches: Optional[
            Mapping[EntityId, Tuple[int, ...]]
        ] = None,
    ):
        # The thread-local slot must exist before the base constructor
        # assigns ``_cache`` (a property over it, see below).
        self._task = _TaskState()
        super().__init__()
        self.name = name
        self._store = store
        self._kore = kore
        self._settings = settings if settings is not None else LshSettings()
        self._phrase_hasher = MinHasher(
            self._settings.phrase_sketch_len, seed=self._settings.seed
        )
        self._entity_hasher = MinHasher(
            self._settings.entity_sketch_len,
            seed=self._settings.seed + 1,
        )
        self._phrase_buckets: Dict[Phrase, Tuple[str, ...]] = {}
        self._entity_bucket_sets: Dict[EntityId, FrozenSet[str]] = {}
        #: Entity id -> stage-two sketch; the empty tuple marks entities
        #: without keyphrases (never indexed, relatedness 0 by definition).
        if sketches is None:
            self._entity_sketches = {}
        elif isinstance(sketches, dict):
            self._entity_sketches = dict(sketches)
        else:
            # A lazy read-only mapping (e.g. a snapshot SketchTable):
            # keep it by reference — zero copy, zero decode — and buffer
            # any locally computed sketches in an overlay.
            self._entity_sketches = _OverlaySketches(sketches)
        #: Whether the supplied table already covers every store entity
        #: (snapshot tables and cached whole-KB exports advertise this
        #: via a ``complete`` attribute), letting :meth:`precompute`
        #: skip the KB-wide stage-one pass entirely.
        self._sketches_complete = bool(getattr(sketches, "complete", False))
        # Element-id memo for stage-one word hashing; replaced by a flat
        # array over vocabulary ids when a compiled layer is attached.
        self._word_eids: Dict[str, int] = {}
        self._vocab = None
        self._eid_table: Optional[array] = None
        #: Cumulative pruning statistics across prepare() calls (all
        #: threads), for benchmarks that run without a metrics registry.
        self.prepared_tasks = 0
        self.pruned_pairs = 0
        self.survived_pairs = 0
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Thread-local pair cache (the base class reads/clears ``_cache``)
    # ------------------------------------------------------------------
    @property
    def _cache(self) -> Dict[Tuple[EntityId, EntityId], float]:
        return self._task.cache

    @_cache.setter
    def _cache(self, value) -> None:
        # The base constructor assigns a fresh dict; the thread-local one
        # is authoritative, so the assignment is absorbed.
        pass

    @property
    def settings(self) -> LshSettings:
        """The stage geometry this measure was built with."""
        return self._settings

    @property
    def inner(self) -> KoreRelatedness:
        """The wrapped exact measure (compiled models attach through it)."""
        return self._kore

    # ------------------------------------------------------------------
    # Stage 1: keyphrase grouping (cached per phrase)
    # ------------------------------------------------------------------
    def attach_compiled(self, compiled) -> None:
        """Reuse a compiled layer's vocabulary for stage-one hashing.

        Word element ids are then memoized in a flat array indexed by
        interned word id instead of a per-word dict.  The wrapped exact
        measure is attached separately (the pipeline walks the ``inner``
        chain).
        """
        vocab = getattr(compiled, "vocabulary", None)
        if vocab is None or len(vocab) == 0:
            return
        self._vocab = vocab
        self._eid_table = array("q", [-1]) * len(vocab)

    def _word_element_id(self, word: str) -> int:
        table = self._eid_table
        if table is not None:
            wid = self._vocab.id_of(word)
            if 0 <= wid < len(table):
                eid = table[wid]
                if eid < 0:
                    eid = element_id(word)
                    table[wid] = eid
                return eid
        eid = self._word_eids.get(word)
        if eid is None:
            eid = element_id(word)
            self._word_eids[word] = eid
        return eid

    def _phrase_bucket_ids(self, phrase: Phrase) -> Tuple[str, ...]:
        cached = self._phrase_buckets.get(phrase)
        if cached is not None:
            return cached
        sketch = self._phrase_hasher.sketch_ids(
            self._word_element_id(word) for word in set(phrase)
        )
        ids = tuple(
            f"b{band}:{total}"
            for band, total in band_signature(
                sketch,
                self._settings.phrase_bands,
                self._settings.phrase_rows,
            )
        )
        self._phrase_buckets[phrase] = ids
        return ids

    def _entity_bucket_set(self, entity_id: EntityId) -> FrozenSet[str]:
        cached = self._entity_bucket_sets.get(entity_id)
        if cached is not None:
            return cached
        buckets: Set[str] = set()
        for phrase in self._store.keyphrases(entity_id):
            buckets.update(self._phrase_bucket_ids(phrase))
        frozen = frozenset(buckets)
        self._entity_bucket_sets[entity_id] = frozen
        return frozen

    def _entity_sketch(self, entity_id: EntityId) -> Tuple[int, ...]:
        sketch = self._entity_sketches.get(entity_id)
        if sketch is None:
            # Sketches depend only on the entity's (static) keyphrase
            # set, so they are precomputed once — as in the paper,
            # where stage one runs offline over the whole KB.  An
            # entity without keyphrases gets the empty sentinel: the
            # uniform maxima sketch would make all such entities
            # collide in every band, admitting O(k²) spurious pairs
            # whose exact relatedness is 0 by definition.
            bucket_set = self._entity_bucket_set(entity_id)
            if bucket_set:
                sketch = self._entity_hasher.sketch(bucket_set)
            else:
                sketch = ()
            self._entity_sketches[entity_id] = sketch
        return sketch

    def precompute(
        self, entity_ids: Optional[Iterable[EntityId]] = None
    ) -> int:
        """Sketch entities ahead of time (the whole KB by default).

        Idempotent — already-sketched entities are skipped — and meant to
        run once before a measure is shared read-only across workers.
        Returns the number of entities covered.

        When the measure was constructed over a table that advertises
        whole-KB coverage (``complete = True`` — snapshot tables and
        cached exports), the KB-wide pass is a guaranteed no-op and is
        skipped without touching the store, which is what makes worker
        attach O(1) instead of O(KB).
        """
        if entity_ids is None and self._sketches_complete:
            return 0
        start = time.perf_counter()
        ids = (
            list(entity_ids)
            if entity_ids is not None
            else self._store.entity_ids()
        )
        computed = 0
        for entity_id in ids:
            if self._entity_sketches.get(entity_id) is None:
                self._entity_sketch(entity_id)
                computed += 1
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("relatedness.lsh.sketched").inc(computed)
            metrics.histogram("relatedness.lsh.precompute_ms").observe(
                (time.perf_counter() - start) * 1000.0
            )
        return len(ids)

    def export_sketches(self) -> Dict[EntityId, Tuple[int, ...]]:
        """A picklable copy of the sketch table (process-pool hand-off)."""
        return dict(self._entity_sketches)

    # ------------------------------------------------------------------
    # Stage 2: entity grouping at task run-time
    # ------------------------------------------------------------------
    def prepare(self, entities: Iterable[EntityId]) -> None:
        """Build the per-task entity LSH and the allowed-pair set.

        The resulting state is thread-local: each batch-worker thread
        prepares its own document without disturbing the others.
        """
        start = time.perf_counter()
        index = LshIndex(
            self._settings.entity_bands, self._settings.entity_rows
        )
        universe = sorted(set(entities))
        for entity_id in universe:
            sketch = self._entity_sketch(entity_id)
            if not sketch:
                continue  # no keyphrases -> relatedness 0 by definition
            index.add(entity_id, sketch)
        task = self._task
        task.allowed = index.candidate_pairs()
        task.prepared = True
        # A new task invalidates cached zero decisions from the old one.
        task.cache.clear()
        survived = len(task.allowed)
        total = len(universe) * (len(universe) - 1) // 2
        pruned = total - survived
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        with self._stats_lock:
            self.prepared_tasks += 1
            self.pruned_pairs += pruned
            self.survived_pairs += survived
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("relatedness.lsh.pruned").inc(pruned)
            metrics.counter("relatedness.lsh.survived").inc(survived)
            metrics.histogram("relatedness.lsh.prepare_ms").observe(
                elapsed_ms
            )

    def should_compare(self, a: EntityId, b: EntityId) -> bool:
        """Whether the pair shares a stage-two bucket."""
        task = self._task
        if not task.prepared:
            return True  # without preparation, behave like exact KORE
        return self.canonical_pair(a, b) in task.allowed

    def cacheable_pair(self, a: EntityId, b: EntityId) -> bool:
        """Surviving pairs carry the task-independent exact value and may
        be memoized across documents; pruned zeros are task-dependent and
        must not outlive this ``prepare``."""
        return self.should_compare(a, b)

    def _compute(self, a: EntityId, b: EntityId) -> float:
        # Uncounted delegation: this wrapper's compute_pair already fired
        # the chaos site and counted the comparison for the pair, so the
        # inner measure must not do either a second time.
        return self._kore.compute_uncounted(a, b)

    @property
    def allowed_pair_count(self) -> int:
        """Number of pairs surviving pre-clustering (this thread's task)."""
        return len(self._task.allowed)


# ----------------------------------------------------------------------
# Process-wide sketch-export cache (keyed by KB fingerprint + geometry)
# ----------------------------------------------------------------------
class CompleteSketches(dict):
    """A sketch export known to cover every store entity.

    The ``complete`` marker lets a :class:`KoreLshRelatedness` built over
    this table skip its KB-wide :meth:`~KoreLshRelatedness.precompute`
    pass entirely — the table is already the whole stage-one output.
    """

    complete = True


_EXPORT_CACHE_LOCK = threading.Lock()
_EXPORT_CACHE: Dict[Tuple[str, LshSettings], CompleteSketches] = {}


def cached_sketch_export(
    fingerprint: str, settings: LshSettings
) -> Optional[CompleteSketches]:
    """The cached whole-KB sketch export for this KB + geometry, if any.

    Sketches depend only on the store contents and the LSH geometry, so a
    (KB fingerprint, settings) pair fully determines the table: repeated
    serve/evaluate starts against the same on-disk KB reuse one export
    instead of re-sketching the KB before every worker fork.
    """
    with _EXPORT_CACHE_LOCK:
        return _EXPORT_CACHE.get((fingerprint, settings))


def store_sketch_export(
    fingerprint: str,
    settings: LshSettings,
    sketches: Mapping,
) -> CompleteSketches:
    """Cache a whole-KB export; returns the (complete-marked) table."""
    table = (
        sketches
        if isinstance(sketches, CompleteSketches)
        else CompleteSketches(sketches)
    )
    with _EXPORT_CACHE_LOCK:
        _EXPORT_CACHE[(fingerprint, settings)] = table
    return table


def clear_sketch_export_cache() -> None:
    """Drop every cached export (tests and long-lived tools)."""
    with _EXPORT_CACHE_LOCK:
        _EXPORT_CACHE.clear()
