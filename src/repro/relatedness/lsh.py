"""Two-stage hashing acceleration for KORE (Section 4.4.2).

Stage 1 (KB-wide, precomputed): every keyphrase is min-hash-sketched over its
word set and bucketed by LSH banding, grouping near-duplicate phrases.  Each
entity is then represented by the *set of phrase-bucket ids* of its phrases,
preserving the notion of partial phrase matches.

Stage 2 (per task, over the candidate entity set): entities are min-hash-
sketched over their phrase-bucket id sets and bucketed by a second LSH.  The
exact KORE measure is computed only for entity pairs sharing at least one
stage-two bucket; all other pairs are assumed unrelated (relatedness 0).

The paper's settings (KORE_LSH-G: 200 bands × 1 row; KORE_LSH-F: 1000 bands
× 2 rows over millions of entities) are scaled down for the synthetic KB —
the *geometry* (G: single-row bands → recall-geared; F: two-row bands →
aggressive pruning) is preserved, the sketch lengths are configurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.hashing.lsh import LshIndex
from repro.hashing.minhash import MinHasher
from repro.kb.keyphrases import KeyphraseStore, Phrase
from repro.relatedness.base import EntityRelatedness
from repro.relatedness.kore import KoreRelatedness
from repro.types import EntityId


@dataclass(frozen=True)
class LshSettings:
    """Geometry of the two LSH stages.

    ``phrase_*`` controls stage one (keyphrase grouping); ``entity_*``
    controls stage two (entity grouping).
    """

    phrase_sketch_len: int = 4
    phrase_bands: int = 2
    phrase_rows: int = 2
    entity_bands: int = 40
    entity_rows: int = 1
    seed: int = 17

    @staticmethod
    def recall_geared(seed: int = 17) -> "LshSettings":
        """KORE_LSH-G: single-row entity bands, high recall."""
        return LshSettings(
            entity_bands=40, entity_rows=1, seed=seed
        )

    @staticmethod
    def fast(seed: int = 17) -> "LshSettings":
        """KORE_LSH-F: two-row entity bands, aggressive pruning."""
        return LshSettings(
            entity_bands=80, entity_rows=2, seed=seed
        )


class KoreLshRelatedness(EntityRelatedness):
    """KORE with two-stage LSH pre-clustering."""

    def __init__(
        self,
        store: KeyphraseStore,
        kore: KoreRelatedness,
        settings: Optional[LshSettings] = None,
        name: str = "KORE_LSH",
    ):
        super().__init__()
        self.name = name
        self._store = store
        self._kore = kore
        self._settings = settings if settings is not None else LshSettings()
        self._phrase_hasher = MinHasher(
            self._settings.phrase_sketch_len, seed=self._settings.seed
        )
        self._entity_hasher = MinHasher(
            self._settings.entity_bands * self._settings.entity_rows,
            seed=self._settings.seed + 1,
        )
        self._phrase_buckets: Dict[Phrase, Tuple[str, ...]] = {}
        self._entity_bucket_sets: Dict[EntityId, FrozenSet[str]] = {}
        self._entity_sketches: Dict[EntityId, Tuple[int, ...]] = {}
        self._allowed_pairs: Set[Tuple[EntityId, EntityId]] = set()
        self._prepared = False

    # ------------------------------------------------------------------
    # Stage 1: keyphrase grouping (cached per phrase)
    # ------------------------------------------------------------------
    def _phrase_bucket_ids(self, phrase: Phrase) -> Tuple[str, ...]:
        cached = self._phrase_buckets.get(phrase)
        if cached is not None:
            return cached
        sketch = self._phrase_hasher.sketch(phrase)
        bands = self._settings.phrase_bands
        rows = self._settings.phrase_rows
        ids = tuple(
            f"b{band}:{sum(sketch[band * rows:(band + 1) * rows])}"
            for band in range(bands)
        )
        self._phrase_buckets[phrase] = ids
        return ids

    def _entity_bucket_set(self, entity_id: EntityId) -> FrozenSet[str]:
        cached = self._entity_bucket_sets.get(entity_id)
        if cached is not None:
            return cached
        buckets: Set[str] = set()
        for phrase in self._store.keyphrases(entity_id):
            buckets.update(self._phrase_bucket_ids(phrase))
        frozen = frozenset(buckets)
        self._entity_bucket_sets[entity_id] = frozen
        return frozen

    # ------------------------------------------------------------------
    # Stage 2: entity grouping at task run-time
    # ------------------------------------------------------------------
    def prepare(self, entities: Iterable[EntityId]) -> None:
        """Build the per-task entity LSH and the allowed-pair set."""
        index = LshIndex(
            self._settings.entity_bands, self._settings.entity_rows
        )
        for entity_id in sorted(set(entities)):
            sketch = self._entity_sketches.get(entity_id)
            if sketch is None:
                # Sketches depend only on the entity's (static) keyphrase
                # set, so they are precomputed once — as in the paper,
                # where stage one runs offline over the whole KB.
                bucket_set = self._entity_bucket_set(entity_id)
                sketch = self._entity_hasher.sketch(bucket_set)
                self._entity_sketches[entity_id] = sketch
            index.add(entity_id, sketch)
        self._allowed_pairs = index.candidate_pairs()
        self._prepared = True
        # A new task invalidates cached zero decisions from the old one.
        self._cache.clear()

    def should_compare(self, a: EntityId, b: EntityId) -> bool:
        """Whether the pair shares a stage-two bucket."""
        if not self._prepared:
            return True  # without preparation, behave like exact KORE
        return self.canonical_pair(a, b) in self._allowed_pairs

    def _compute(self, a: EntityId, b: EntityId) -> float:
        return self._kore.relatedness(a, b)

    @property
    def allowed_pair_count(self) -> int:
        """Number of pairs surviving pre-clustering."""
        return len(self._allowed_pairs)
