"""Jaccard similarity on inlink sets.

Ceccarelli et al. (Section 2.2.3) found plain Jaccard on the entity link
sets to be a competitive single measure; it also backs the Guo-et-al-style
baseline.  Included as a simple link-based alternative to Milne–Witten.
"""

from __future__ import annotations

from repro.kb.links import LinkGraph
from repro.relatedness.base import EntityRelatedness
from repro.types import EntityId


class InlinkJaccardRelatedness(EntityRelatedness):
    """Jaccard similarity of the two inlink sets."""
    name = "Jaccard"

    def __init__(self, links: LinkGraph):
        super().__init__()
        self._links = links

    def _compute(self, a: EntityId, b: EntityId) -> float:
        ins_a = self._links.inlinks(a)
        ins_b = self._links.inlinks(b)
        if not ins_a or not ins_b:
            return 0.0
        union = len(ins_a | ins_b)
        if union == 0:
            return 0.0
        return len(ins_a & ins_b) / union
