"""The weighted mention-entity graph (Section 3.4.1).

Nodes are the mentions of the input text plus their candidate entities; a
mention-entity edge carries (a combination of) popularity and similarity, an
entity-entity edge carries coherence.  Both edge families are scaled to
[0, 1] and rescaled so their averages match, then balanced by the γ
parameter (coherence weight) — exactly the construction of Section 3.6.1:
entity-entity weights are multiplied by γ, mention-entity weights by (1-γ).

The graph supports incremental entity removal with the bookkeeping
Algorithm 1 needs to run in O(E log V):

* **weighted degrees** are maintained under removal; ``remove_entity``
  returns the live neighbours whose degree changed so callers can keep
  priority queues fresh;
* **taboo status** ("last remaining candidate of some mention") is answered
  in O(1) from per-mention live-candidate counters instead of re-sorting
  candidate lists;
* **checkpoints** — removals are logged in order, so recording the current
  state is O(1) (``checkpoint`` returns the removal count) and
  ``rollback`` undoes removals in reverse, restoring degrees and counters
  incrementally.

The frozenset-based ``snapshot``/``restore`` API is kept for callers that
need arbitrary (non-prefix) state resets; it recomputes counters from
scratch and invalidates outstanding checkpoints.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.errors import GraphError
from repro.types import EntityId, Mention

#: Mentions are addressed by their index in the document's mention list.
MentionIndex = int


class MentionEntityGraph:
    """Weighted undirected graph over mentions and candidate entities."""

    def __init__(self, mentions: List[Mention]):
        self.mentions = list(mentions)
        self._me: Dict[MentionIndex, Dict[EntityId, float]] = {
            index: {} for index in range(len(mentions))
        }
        self._entity_mentions: Dict[EntityId, Set[MentionIndex]] = {}
        self._ee: Dict[EntityId, Dict[EntityId, float]] = {}
        self._degree: Dict[EntityId, float] = {}
        self._removed: Set[EntityId] = set()
        #: Live (non-removed) candidate count per mention.
        self._live_candidates: Dict[MentionIndex, int] = {
            index: 0 for index in range(len(mentions))
        }
        #: Number of mentions for which the entity is the sole live
        #: candidate; > 0 means the entity is taboo.
        self._taboo_count: Dict[EntityId, int] = {}
        #: Ordered removal log: (entity, ((mention, survivor), ...),
        #: ((neighbour, degree before the removal), ...)).  The survivors
        #: became sole candidates through this removal; the recorded
        #: neighbour degrees make ``rollback`` a bit-exact inverse (adding
        #: the edge weight back would drift by float rounding).
        self._removal_log: List[
            Tuple[
                EntityId,
                Tuple[Tuple[MentionIndex, EntityId], ...],
                Tuple[Tuple[EntityId, float], ...],
            ]
        ] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_mention_entity_edge(
        self, mention_index: MentionIndex, entity_id: EntityId, weight: float
    ) -> None:
        """Set the weight of a mention-entity edge."""
        if mention_index not in self._me:
            raise GraphError(f"unknown mention index {mention_index}")
        is_new = entity_id not in self._me[mention_index]
        previous = self._me[mention_index].get(entity_id, 0.0)
        self._me[mention_index][entity_id] = weight
        self._entity_mentions.setdefault(entity_id, set()).add(mention_index)
        self._ee.setdefault(entity_id, {})
        self._degree[entity_id] = (
            self._degree.get(entity_id, 0.0) - previous + weight
        )
        if is_new and entity_id not in self._removed:
            count = self._live_candidates[mention_index] + 1
            self._live_candidates[mention_index] = count
            if count == 1:
                self._bump_taboo(entity_id, +1)
            elif count == 2:
                # The previously sole candidate is no longer critical.
                other = self._sole_live_candidate(
                    mention_index, excluding=entity_id
                )
                if other is not None:
                    self._bump_taboo(other, -1)

    def add_entity_entity_edge(
        self, a: EntityId, b: EntityId, weight: float
    ) -> None:
        """Set the weight of a coherence edge (symmetric)."""
        if a == b:
            return
        if a not in self._entity_mentions or b not in self._entity_mentions:
            raise GraphError(
                "coherence edges require both entities to be candidates"
            )
        previous = self._ee.setdefault(a, {}).get(b, 0.0)
        self._ee[a][b] = weight
        self._ee.setdefault(b, {})[a] = weight
        delta = weight - previous
        self._degree[a] = self._degree.get(a, 0.0) + delta
        self._degree[b] = self._degree.get(b, 0.0) + delta

    def rescale_and_balance(self, gamma: float) -> None:
        """Scale both edge families to [0,1], equalize their averages, and
        apply the γ coherence balance in place."""
        if not 0.0 <= gamma <= 1.0:
            raise GraphError("gamma must be in [0, 1]")
        self._scale_me_to_unit()
        self._scale_ee_to_unit()
        me_avg = self._average(self._iter_me())
        ee_avg = self._average(self._iter_ee())
        if me_avg > 0.0 and ee_avg > 0.0:
            # Rescale entity-entity weights to match the mention-entity
            # average, then balance with gamma.
            factor = me_avg / ee_avg
            for a, b, weight in list(self._iter_ee()):
                self._set_ee(a, b, weight * factor)
        for index, entity_id, weight in list(self._iter_me()):
            self._set_me(index, entity_id, weight * (1.0 - gamma))
        for a, b, weight in list(self._iter_ee()):
            # The average-equalization factor can exceed 1/γ when the
            # coherence family is dominated by a few strong edges, so the
            # balanced weight is clamped to keep the documented [0, 1]
            # invariant of both edge families.
            self._set_ee(a, b, min(weight * gamma, 1.0))
        self._recompute_degrees()

    def _scale_me_to_unit(self) -> None:
        edges = list(self._iter_me())
        low, high = self._bounds(edges)
        for index, entity_id, weight in edges:
            self._set_me(index, entity_id, self._unit(weight, low, high))

    def _scale_ee_to_unit(self) -> None:
        edges = list(self._iter_ee())
        low, high = self._bounds(edges)
        for a, b, weight in edges:
            self._set_ee(a, b, self._unit(weight, low, high))

    @staticmethod
    def _bounds(edges) -> Tuple[float, float]:
        weights = [w for *_ids, w in edges]
        if not weights:
            return (0.0, 0.0)
        return (min(weights), max(weights))

    @staticmethod
    def _unit(weight: float, low: float, high: float) -> float:
        # Scale into [0, 1] by the family maximum.  Dividing by the max
        # (rather than min-max normalizing) preserves relative magnitudes
        # and keeps the degenerate two-edge case meaningful.
        if high > 0.0:
            return max(weight, 0.0) / high
        return 0.0

    @staticmethod
    def _average(edges) -> float:
        weights = [w for *_ids, w in edges]
        return sum(weights) / len(weights) if weights else 0.0

    def _iter_me(self) -> Iterable[Tuple[MentionIndex, EntityId, float]]:
        for index in sorted(self._me):
            for entity_id in sorted(self._me[index]):
                yield index, entity_id, self._me[index][entity_id]

    def _iter_ee(self) -> Iterable[Tuple[EntityId, EntityId, float]]:
        for a in sorted(self._ee):
            for b in sorted(self._ee[a]):
                if a < b:
                    yield a, b, self._ee[a][b]

    def _set_me(
        self, index: MentionIndex, entity_id: EntityId, weight: float
    ) -> None:
        self._me[index][entity_id] = weight

    def _set_ee(self, a: EntityId, b: EntityId, weight: float) -> None:
        self._ee[a][b] = weight
        self._ee[b][a] = weight

    def _recompute_degrees(self) -> None:
        self._degree = {}
        for index, entity_id, weight in self._iter_me():
            self._degree[entity_id] = (
                self._degree.get(entity_id, 0.0) + weight
            )
        for a, b, weight in self._iter_ee():
            self._degree[a] = self._degree.get(a, 0.0) + weight
            self._degree[b] = self._degree.get(b, 0.0) + weight

    # ------------------------------------------------------------------
    # Incremental bookkeeping helpers
    # ------------------------------------------------------------------
    def _bump_taboo(self, entity_id: EntityId, delta: int) -> None:
        count = self._taboo_count.get(entity_id, 0) + delta
        if count:
            self._taboo_count[entity_id] = count
        else:
            self._taboo_count.pop(entity_id, None)

    def _sole_live_candidate(
        self, mention_index: MentionIndex, excluding: EntityId
    ):
        for eid in self._me[mention_index]:
            if eid != excluding and eid not in self._removed:
                return eid
        return None

    def _recompute_candidate_state(self) -> None:
        """Rebuild live-candidate and taboo counters from scratch (used
        after non-incremental state resets)."""
        self._live_candidates = {
            index: sum(
                1 for eid in cands if eid not in self._removed
            )
            for index, cands in self._me.items()
        }
        self._taboo_count = {}
        for index, count in self._live_candidates.items():
            if count == 1:
                survivor = self._sole_live_candidate(index, excluding=None)
                if survivor is not None:
                    self._bump_taboo(survivor, +1)
        self._removal_log = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def mention_count(self) -> int:
        """Number of mention nodes."""
        return len(self.mentions)

    def active_entities(self) -> List[EntityId]:
        """Entity nodes not yet removed, sorted."""
        return sorted(
            eid for eid in self._entity_mentions if eid not in self._removed
        )

    def entity_count(self) -> int:
        """Number of active entity nodes."""
        return len(self._entity_mentions) - len(self._removed)

    def is_active(self, entity_id: EntityId) -> bool:
        """Whether the entity is a known, non-removed node."""
        return (
            entity_id in self._entity_mentions
            and entity_id not in self._removed
        )

    def candidates_of(self, mention_index: MentionIndex) -> List[EntityId]:
        """Active candidate entities of a mention."""
        return sorted(
            eid
            for eid in self._me[mention_index]
            if eid not in self._removed
        )

    def live_candidate_count(self, mention_index: MentionIndex) -> int:
        """Number of active candidates of a mention (O(1))."""
        return self._live_candidates[mention_index]

    def mentions_of(self, entity_id: EntityId) -> FrozenSet[MentionIndex]:
        """Mentions the (active) entity is a candidate for."""
        if entity_id in self._removed:
            return frozenset()
        return frozenset(self._entity_mentions.get(entity_id, set()))

    def me_weight(
        self, mention_index: MentionIndex, entity_id: EntityId
    ) -> float:
        """Weight of a mention-entity edge (0 when absent)."""
        return self._me[mention_index].get(entity_id, 0.0)

    def ee_weight(self, a: EntityId, b: EntityId) -> float:
        """Weight of a coherence edge (0 when absent)."""
        return self._ee.get(a, {}).get(b, 0.0)

    def ee_neighbors(self, entity_id: EntityId) -> List[EntityId]:
        """Active coherence neighbours of an entity."""
        return sorted(
            other
            for other in self._ee.get(entity_id, {})
            if other not in self._removed
        )

    def weighted_degree(self, entity_id: EntityId) -> float:
        """Total incident edge weight of an entity node (Section 3.4.2),
        counting only edges to non-removed nodes."""
        if entity_id in self._removed:
            return 0.0
        return self._degree.get(entity_id, 0.0)

    def minimum_weighted_degree(self) -> float:
        """Minimum weighted degree over active entities."""
        active = self.active_entities()
        if not active:
            return 0.0
        return min(self.weighted_degree(eid) for eid in active)

    def is_taboo(self, entity_id: EntityId) -> bool:
        """An entity is taboo if it is the last remaining candidate for any
        mention it is connected to.  Answered in O(1) from counters."""
        if entity_id in self._removed:
            return False
        return self._taboo_count.get(entity_id, 0) > 0

    # ------------------------------------------------------------------
    # Mutation (used by the greedy algorithm)
    # ------------------------------------------------------------------
    def remove_entity(
        self, entity_id: EntityId
    ) -> List[Tuple[EntityId, float]]:
        """Remove a non-taboo entity node and update degrees and taboo
        counters incrementally.

        Returns the live coherence neighbours whose weighted degree
        changed, as (entity, new degree) pairs, so callers maintaining a
        priority queue can push fresh entries.
        """
        if entity_id in self._removed:
            return []
        if self.is_taboo(entity_id):
            raise GraphError(
                f"cannot remove taboo entity {entity_id!r}: it is the last "
                "candidate of a mention"
            )
        self._removed.add(entity_id)
        # Live-candidate counters: every mention of this entity loses one
        # candidate; a mention dropping to a single candidate makes the
        # survivor taboo.
        new_critical: List[Tuple[MentionIndex, EntityId]] = []
        for index in self._entity_mentions.get(entity_id, ()):
            count = self._live_candidates[index] - 1
            self._live_candidates[index] = count
            if count == 1:
                survivor = self._sole_live_candidate(
                    index, excluding=entity_id
                )
                if survivor is not None:
                    self._bump_taboo(survivor, +1)
                    new_critical.append((index, survivor))
        # Degrees of entity neighbours shrink by the shared edge weight;
        # mention nodes carry no tracked degree.
        affected: List[Tuple[EntityId, float]] = []
        previous_degrees: List[Tuple[EntityId, float]] = []
        for other, weight in self._ee.get(entity_id, {}).items():
            if other not in self._removed:
                before = self._degree.get(other, 0.0)
                previous_degrees.append((other, before))
                degree = before - weight
                self._degree[other] = degree
                affected.append((other, degree))
        self._removal_log.append(
            (entity_id, tuple(new_critical), tuple(previous_degrees))
        )
        return affected

    def restrict_to_entities(self, keep: Iterable[EntityId]) -> None:
        """Remove all entities not in *keep* (pre-processing phase)."""
        keep_set = set(keep)
        for entity_id in self.active_entities():
            if entity_id not in keep_set and not self.is_taboo(entity_id):
                self.remove_entity(entity_id)

    # ------------------------------------------------------------------
    # Checkpoints (O(1) state recording for Algorithm 1's main loop)
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """O(1) marker for the current state: the number of removals so
        far.  Valid until a non-prefix reset (``restore``) happens."""
        return len(self._removal_log)

    def rollback(self, checkpoint: int) -> None:
        """Undo removals in reverse order until only the first
        *checkpoint* removals remain, restoring degrees and taboo
        counters incrementally."""
        if checkpoint > len(self._removal_log):
            raise GraphError(
                f"checkpoint {checkpoint} is ahead of the removal log "
                f"({len(self._removal_log)} entries)"
            )
        while len(self._removal_log) > checkpoint:
            entity_id, new_critical, previous_degrees = (
                self._removal_log.pop()
            )
            for _index, survivor in new_critical:
                self._bump_taboo(survivor, -1)
            for index in self._entity_mentions.get(entity_id, ()):
                self._live_candidates[index] += 1
            self._removed.discard(entity_id)
            # Undoing in exact reverse order means the live set now equals
            # the one at removal time, so the entity's own stored degree
            # is valid again; neighbours get their recorded pre-removal
            # degrees back bit-exactly.
            for other, before in previous_degrees:
                self._degree[other] = before

    def canonicalize_degrees(self) -> None:
        """Recompute every active entity's degree from scratch in sorted
        summation order.

        Incremental decrements (and the graph-construction accumulation
        order) can leave degrees a few ulps away from a canonical
        recomputation; calling this gives a summation-order-independent
        state, so downstream consumers (e.g. the local search's
        degree-proportional sampling) see identical values no matter how
        the current active set was reached.  Outstanding
        :meth:`checkpoint` markers become invalid.
        """
        degrees: Dict[EntityId, float] = {}
        for entity_id, mention_set in self._entity_mentions.items():
            if entity_id in self._removed:
                continue
            total = 0.0
            for index in sorted(mention_set):
                total += self._me[index].get(entity_id, 0.0)
            for other in sorted(self._ee.get(entity_id, {})):
                if other not in self._removed:
                    total += self._ee[entity_id][other]
            degrees[entity_id] = total
        self._degree = degrees
        self._removal_log = []

    def snapshot(self) -> FrozenSet[EntityId]:
        """The current active entity set (used to record best solutions)."""
        return frozenset(self.active_entities())

    def restore(self, snapshot: FrozenSet[EntityId]) -> None:
        """Reset the removed set so exactly *snapshot* is active.

        This is a full (non-incremental) reset: counters are recomputed
        and outstanding :meth:`checkpoint` markers become invalid.
        """
        all_entities = set(self._entity_mentions)
        self._removed = all_entities - set(snapshot)
        self.canonicalize_degrees()
        self._recompute_candidate_state()
