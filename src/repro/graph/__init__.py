"""Mention-entity graph model and the dense-subgraph algorithm (Sec. 3.4)."""

from repro.graph.mention_entity_graph import MentionEntityGraph
from repro.graph.dense_subgraph import (
    DenseSubgraphConfig,
    GreedyDenseSubgraph,
    SolverStats,
)
from repro.graph.synthetic import SyntheticGraphSpec, synthetic_graph

__all__ = [
    "MentionEntityGraph",
    "DenseSubgraphConfig",
    "GreedyDenseSubgraph",
    "SolverStats",
    "SyntheticGraphSpec",
    "synthetic_graph",
]
