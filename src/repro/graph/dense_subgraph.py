"""Greedy dense-subgraph disambiguation (Algorithm 1, Section 3.4.2).

Three phases:

1. **Pre-processing** — restrict the graph to the ``prune_factor × #mentions``
   entities with the smallest sum of squared shortest-path distances to the
   mention nodes (taboo entities are always kept).
2. **Main loop** — iteratively remove the non-taboo entity with the lowest
   weighted degree; track the iteration maximizing
   ``min weighted degree of entities / #entities`` and keep that subgraph.
3. **Post-processing** — the best subgraph may still contain several
   candidates per mention.  If the number of full mention→entity
   combinations is feasible, enumerate them exhaustively and pick the
   assignment with the largest total edge weight (mention-entity edges of
   the chosen pairs plus coherence edges among chosen entities); otherwise
   run a degree-proportional randomized local search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import GraphError
from repro.graph.mention_entity_graph import MentionEntityGraph
from repro.graph.shortest_paths import entity_mention_distances
from repro.types import EntityId
from repro.utils.rng import SeededRng


@dataclass(frozen=True)
class DenseSubgraphConfig:
    """Knobs of Algorithm 1.

    ``prune_factor`` — keep this many entities per mention in pre-processing
    (the paper's experimentally determined choice is 5).
    ``enumeration_limit`` — maximum number of full assignments to enumerate
    exhaustively in post-processing.
    ``local_search_iterations`` — iterations of the randomized local search
    used when enumeration is infeasible.
    ``seed`` — seed for the local search.
    """

    prune_factor: int = 5
    enumeration_limit: int = 20000
    local_search_iterations: int = 500
    seed: int = 42

    def __post_init__(self) -> None:
        if self.prune_factor < 1:
            raise GraphError("prune_factor must be >= 1")
        if self.enumeration_limit < 1:
            raise GraphError("enumeration_limit must be >= 1")


class GreedyDenseSubgraph:
    """Runs Algorithm 1 on a prepared mention-entity graph."""

    def __init__(self, config: Optional[DenseSubgraphConfig] = None):
        self.config = config if config is not None else DenseSubgraphConfig()

    def solve(self, graph: MentionEntityGraph) -> Dict[int, EntityId]:
        """Disambiguate: one entity per mention (mentions without any
        candidate are absent from the result)."""
        if graph.mention_count == 0:
            return {}
        self._preprocess(graph)
        best = self._main_loop(graph)
        graph.restore(best)
        return self._postprocess(graph)

    # ------------------------------------------------------------------
    # Phase 1: distance-based pruning
    # ------------------------------------------------------------------
    def _preprocess(self, graph: MentionEntityGraph) -> None:
        limit = self.config.prune_factor * graph.mention_count
        entities = graph.active_entities()
        if len(entities) <= limit:
            return
        distances = entity_mention_distances(graph)
        ranked = sorted(entities, key=lambda eid: (distances[eid], eid))
        graph.restrict_to_entities(ranked[:limit])

    # ------------------------------------------------------------------
    # Phase 2: greedy removal maximizing min-weighted-degree density
    # ------------------------------------------------------------------
    def _main_loop(self, graph: MentionEntityGraph) -> FrozenSet[EntityId]:
        best_snapshot = graph.snapshot()
        best_objective = self._objective(graph)
        while True:
            victim = self._lowest_degree_non_taboo(graph)
            if victim is None:
                break
            graph.remove_entity(victim)
            objective = self._objective(graph)
            if objective > best_objective:
                best_objective = objective
                best_snapshot = graph.snapshot()
        return best_snapshot

    @staticmethod
    def _objective(graph: MentionEntityGraph) -> float:
        count = graph.entity_count()
        if count == 0:
            return 0.0
        return graph.minimum_weighted_degree() / count

    @staticmethod
    def _lowest_degree_non_taboo(
        graph: MentionEntityGraph,
    ) -> Optional[EntityId]:
        best: Optional[EntityId] = None
        best_degree = float("inf")
        for entity_id in graph.active_entities():
            if graph.is_taboo(entity_id):
                continue
            degree = graph.weighted_degree(entity_id)
            if degree < best_degree or (
                degree == best_degree
                and (best is None or entity_id < best)
            ):
                best = entity_id
                best_degree = degree
        return best

    # ------------------------------------------------------------------
    # Phase 3: final one-entity-per-mention selection
    # ------------------------------------------------------------------
    def _postprocess(self, graph: MentionEntityGraph) -> Dict[int, EntityId]:
        per_mention: List[Tuple[int, List[EntityId]]] = []
        for index in range(graph.mention_count):
            candidates = graph.candidates_of(index)
            if candidates:
                per_mention.append((index, candidates))
        if not per_mention:
            return {}
        combinations = 1
        feasible = True
        for _index, candidates in per_mention:
            combinations *= len(candidates)
            if combinations > self.config.enumeration_limit:
                feasible = False
                break
        if feasible:
            assignment = self._enumerate(graph, per_mention)
        else:
            assignment = self._local_search(graph, per_mention)
        return assignment

    def _enumerate(
        self,
        graph: MentionEntityGraph,
        per_mention: Sequence[Tuple[int, List[EntityId]]],
    ) -> Dict[int, EntityId]:
        best_assignment: Dict[int, EntityId] = {}
        best_score = float("-inf")
        indices = [index for index, _c in per_mention]
        pools = [candidates for _i, candidates in per_mention]
        choice = [0] * len(pools)
        while True:
            assignment = {
                indices[slot]: pools[slot][choice[slot]]
                for slot in range(len(pools))
            }
            score = self._assignment_score(graph, assignment)
            if score > best_score:
                best_score = score
                best_assignment = assignment
            # Odometer increment.
            slot = len(pools) - 1
            while slot >= 0:
                choice[slot] += 1
                if choice[slot] < len(pools[slot]):
                    break
                choice[slot] = 0
                slot -= 1
            if slot < 0:
                break
        return best_assignment

    def _local_search(
        self,
        graph: MentionEntityGraph,
        per_mention: Sequence[Tuple[int, List[EntityId]]],
    ) -> Dict[int, EntityId]:
        rng = SeededRng(self.config.seed)
        # Start greedily: best mention-entity edge per mention.
        current = {
            index: max(
                candidates,
                key=lambda eid: (graph.me_weight(index, eid), eid),
            )
            for index, candidates in per_mention
        }
        current_score = self._assignment_score(graph, current)
        best = dict(current)
        best_score = current_score
        pools = dict(per_mention)
        indices = [index for index, _c in per_mention]
        for _step in range(self.config.local_search_iterations):
            index = rng.choice(indices)
            candidates = pools[index]
            if len(candidates) < 2:
                continue
            # Candidates are sampled proportionally to weighted degree.
            weights = [
                graph.weighted_degree(eid) + 1e-9 for eid in candidates
            ]
            proposal = rng.weighted_choice(candidates, weights)
            if proposal == current[index]:
                continue
            previous = current[index]
            current[index] = proposal
            score = self._assignment_score(graph, current)
            if score >= current_score:
                current_score = score
                if score > best_score:
                    best_score = score
                    best = dict(current)
            else:
                current[index] = previous
        return best

    @staticmethod
    def _assignment_score(
        graph: MentionEntityGraph, assignment: Dict[int, EntityId]
    ) -> float:
        """Total edge weight of an assignment: chosen mention-entity edges
        plus coherence among the distinct chosen entities."""
        score = 0.0
        for index, entity_id in assignment.items():
            score += graph.me_weight(index, entity_id)
        chosen = sorted(set(assignment.values()))
        for i, a in enumerate(chosen):
            for b in chosen[i + 1 :]:
                score += graph.ee_weight(a, b)
        return score
