"""Greedy dense-subgraph disambiguation (Algorithm 1, Section 3.4.2).

Three phases:

1. **Pre-processing** — restrict the graph to the ``prune_factor × #mentions``
   entities with the smallest sum of squared shortest-path distances to the
   mention nodes (taboo entities are always kept).
2. **Main loop** — iteratively remove the non-taboo entity with the lowest
   weighted degree; track the iteration maximizing
   ``min weighted degree of entities / #entities`` and keep that subgraph.
3. **Post-processing** — the best subgraph may still contain several
   candidates per mention.  If the number of full mention→entity
   combinations is feasible, enumerate them exhaustively and pick the
   assignment with the largest total edge weight (mention-entity edges of
   the chosen pairs plus coherence edges among chosen entities); otherwise
   run a degree-proportional randomized local search.

The main loop runs in O(E log V) using two lazy-deletion min-heaps keyed by
``(weighted degree, entity id)``:

* a **victim heap** over non-taboo entities — degree changes push fresh
  entries, and entries whose recorded degree no longer matches the live
  degree (or whose entity was removed / became taboo) are discarded on pop;
* a **minimum heap** over all active entities, peeked to evaluate the
  density objective incrementally.

Best iterations are recorded as O(1) graph checkpoints (removal-prefix
indices) instead of frozenset snapshots.  The heap path and the reference
O(V²)-scan path (``DenseSubgraphConfig.exact_reference``) pick identical
victims — both use the exact argmin of ``(degree, entity id)`` — so their
results are bit-identical.
"""

from __future__ import annotations

import heapq
import logging
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import GraphError
from repro.faults.deadline import check_budget
from repro.faults.injector import get_injector
from repro.graph.mention_entity_graph import MentionEntityGraph
from repro.graph.shortest_paths import entity_mention_distances
from repro.obs import get_metrics, get_tracer, log_event
from repro.types import EntityId
from repro.utils.rng import SeededRng

_LOG = logging.getLogger("repro.solver")


@dataclass(frozen=True)
class DenseSubgraphConfig:
    """Knobs of Algorithm 1.

    ``prune_factor`` — keep this many entities per mention in pre-processing
    (the paper's experimentally determined choice is 5).
    ``enumeration_limit`` — maximum number of full assignments to enumerate
    exhaustively in post-processing.
    ``local_search_iterations`` — iterations of the randomized local search
    used when enumeration is infeasible.
    ``seed`` — seed for the local search.
    ``exact_reference`` — run the original O(V²·M log V) full-rescan main
    loop instead of the incremental heap loop.  Both produce identical
    assignments; the reference path exists for cross-checking and
    benchmarking.
    """

    prune_factor: int = 5
    enumeration_limit: int = 20000
    local_search_iterations: int = 500
    seed: int = 42
    exact_reference: bool = False

    def __post_init__(self) -> None:
        if self.prune_factor < 1:
            raise GraphError("prune_factor must be >= 1")
        if self.enumeration_limit < 1:
            raise GraphError("enumeration_limit must be >= 1")


@dataclass
class SolverStats:
    """Counters of one :meth:`GreedyDenseSubgraph.solve` run."""

    #: Entities alive when the main loop started (after pre-pruning).
    initial_entities: int = 0
    #: Entities in the best (densest) subgraph.
    best_entities: int = 0
    #: Main-loop iterations (= entity removals).
    iterations: int = 0
    #: Heap pops, including discarded stale entries (0 on the reference
    #: scan path).
    heap_pops: int = 0
    #: Best-subgraph checkpoints taken (times the density objective
    #: improved, including the initial state).
    checkpoints: int = 0
    #: Best value of the min-weighted-degree density objective.
    best_objective: float = 0.0
    #: Post-processing strategy used: "enumerate", "local_search" or "".
    postprocess: str = ""

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (for PipelineStats counters and benchmarks)."""
        return {
            "initial_entities": self.initial_entities,
            "best_entities": self.best_entities,
            "iterations": self.iterations,
            "heap_pops": self.heap_pops,
            "checkpoints": self.checkpoints,
            "best_objective": self.best_objective,
            "postprocess": self.postprocess,
        }


class GreedyDenseSubgraph:
    """Runs Algorithm 1 on a prepared mention-entity graph."""

    def __init__(self, config: Optional[DenseSubgraphConfig] = None):
        self.config = config if config is not None else DenseSubgraphConfig()
        #: Counters of the most recent :meth:`solve` call.
        self.last_stats = SolverStats()

    def solve(self, graph: MentionEntityGraph) -> Dict[int, EntityId]:
        """Disambiguate: one entity per mention (mentions without any
        candidate are absent from the result)."""
        stats = SolverStats()
        self.last_stats = stats
        if graph.mention_count == 0:
            return {}
        tracer = get_tracer()
        with tracer.span("solver.preprocess", category="solver"):
            self._preprocess(graph)
        stats.initial_entities = graph.entity_count()
        with tracer.span("solver.main_loop", category="solver"):
            if self.config.exact_reference:
                best = self._main_loop_reference(graph, stats)
                graph.restore(best)
            else:
                best_checkpoint = self._main_loop(graph, stats)
                graph.rollback(best_checkpoint)
                # The reference path's restore() recomputes degrees from
                # scratch; canonicalize here so both paths hand
                # bit-identical degrees to the post-processing local
                # search.
                graph.canonicalize_degrees()
        stats.best_entities = graph.entity_count()
        with tracer.span("solver.postprocess", category="solver"):
            assignment = self._postprocess(graph)
        self._publish_observations(stats)
        return assignment

    @staticmethod
    def _publish_observations(stats: SolverStats) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("solver.solves").inc()
            metrics.counter("solver.iterations").inc(stats.iterations)
            metrics.counter("solver.heap_pops").inc(stats.heap_pops)
            metrics.counter("solver.checkpoints").inc(stats.checkpoints)
            if stats.postprocess:
                metrics.counter(
                    f"solver.postprocess.{stats.postprocess}"
                ).inc()
        if _LOG.isEnabledFor(logging.DEBUG):
            log_event(
                _LOG,
                "solver.solve",
                initial_entities=stats.initial_entities,
                best_entities=stats.best_entities,
                iterations=stats.iterations,
                heap_pops=stats.heap_pops,
                checkpoints=stats.checkpoints,
                postprocess=stats.postprocess,
            )

    # ------------------------------------------------------------------
    # Phase 1: distance-based pruning
    # ------------------------------------------------------------------
    def _preprocess(self, graph: MentionEntityGraph) -> None:
        limit = self.config.prune_factor * graph.mention_count
        entities = graph.active_entities()
        if len(entities) <= limit:
            return
        distances = entity_mention_distances(graph)
        ranked = sorted(entities, key=lambda eid: (distances[eid], eid))
        graph.restrict_to_entities(ranked[:limit])

    # ------------------------------------------------------------------
    # Phase 2: greedy removal maximizing min-weighted-degree density
    # ------------------------------------------------------------------
    def _main_loop(
        self, graph: MentionEntityGraph, stats: SolverStats
    ) -> int:
        """Incremental heap loop; returns the best graph checkpoint."""
        best_checkpoint = graph.checkpoint()
        stats.checkpoints += 1
        victim_heap: List[Tuple[float, EntityId]] = []
        min_heap: List[Tuple[float, EntityId]] = []
        for entity_id in graph.active_entities():
            degree = graph.weighted_degree(entity_id)
            min_heap.append((degree, entity_id))
            if not graph.is_taboo(entity_id):
                victim_heap.append((degree, entity_id))
        heapq.heapify(victim_heap)
        heapq.heapify(min_heap)
        best_objective = self._peek_objective(graph, min_heap, stats)
        stats.best_objective = best_objective
        injector = get_injector()
        while True:
            check_budget("solver.iteration")
            if injector.enabled:
                injector.fire("solver.iteration")
            victim = self._pop_victim(graph, victim_heap, stats)
            if victim is None:
                break
            stats.iterations += 1
            for entity_id, degree in graph.remove_entity(victim):
                heapq.heappush(min_heap, (degree, entity_id))
                if not graph.is_taboo(entity_id):
                    heapq.heappush(victim_heap, (degree, entity_id))
            objective = self._peek_objective(graph, min_heap, stats)
            if objective > best_objective:
                best_objective = objective
                best_checkpoint = graph.checkpoint()
                stats.checkpoints += 1
        stats.best_objective = best_objective
        return best_checkpoint

    @staticmethod
    def _pop_victim(
        graph: MentionEntityGraph,
        victim_heap: List[Tuple[float, EntityId]],
        stats: SolverStats,
    ) -> Optional[EntityId]:
        """Lowest (degree, entity id) among active non-taboo entities.

        Lazy deletion: entries whose degree is stale are discarded (a
        fresh entry was pushed when the degree changed); taboo status is
        monotone during removal, so taboo entries are discarded too.
        """
        while victim_heap:
            degree, entity_id = heapq.heappop(victim_heap)
            stats.heap_pops += 1
            if not graph.is_active(entity_id):
                continue
            if graph.weighted_degree(entity_id) != degree:
                continue
            if graph.is_taboo(entity_id):
                continue
            return entity_id
        return None

    @staticmethod
    def _peek_objective(
        graph: MentionEntityGraph,
        min_heap: List[Tuple[float, EntityId]],
        stats: SolverStats,
    ) -> float:
        """``min weighted degree / entity count`` without a full rescan."""
        count = graph.entity_count()
        if count == 0:
            return 0.0
        while min_heap:
            degree, entity_id = min_heap[0]
            if (
                graph.is_active(entity_id)
                and graph.weighted_degree(entity_id) == degree
            ):
                return degree / count
            heapq.heappop(min_heap)
            stats.heap_pops += 1
        return 0.0

    def _main_loop_reference(
        self, graph: MentionEntityGraph, stats: SolverStats
    ) -> FrozenSet[EntityId]:
        """The original full-rescan loop (kept for cross-checking)."""
        best_snapshot = graph.snapshot()
        stats.checkpoints += 1
        best_objective = self._objective(graph)
        injector = get_injector()
        while True:
            check_budget("solver.iteration")
            if injector.enabled:
                injector.fire("solver.iteration")
            victim = self._lowest_degree_non_taboo(graph)
            if victim is None:
                break
            stats.iterations += 1
            graph.remove_entity(victim)
            objective = self._objective(graph)
            if objective > best_objective:
                best_objective = objective
                best_snapshot = graph.snapshot()
                stats.checkpoints += 1
        stats.best_objective = best_objective
        return best_snapshot

    @staticmethod
    def _objective(graph: MentionEntityGraph) -> float:
        count = graph.entity_count()
        if count == 0:
            return 0.0
        return graph.minimum_weighted_degree() / count

    @staticmethod
    def _lowest_degree_non_taboo(
        graph: MentionEntityGraph,
    ) -> Optional[EntityId]:
        # Argmin of the (degree, entity id) tuple — the same key the heap
        # path orders by, so victim choice is deterministic even when
        # different float summation orders produce near-equal degrees.
        best_key: Optional[Tuple[float, EntityId]] = None
        for entity_id in graph.active_entities():
            if graph.is_taboo(entity_id):
                continue
            key = (graph.weighted_degree(entity_id), entity_id)
            if best_key is None or key < best_key:
                best_key = key
        return best_key[1] if best_key is not None else None

    # ------------------------------------------------------------------
    # Phase 3: final one-entity-per-mention selection
    # ------------------------------------------------------------------
    def _postprocess(self, graph: MentionEntityGraph) -> Dict[int, EntityId]:
        per_mention: List[Tuple[int, List[EntityId]]] = []
        for index in range(graph.mention_count):
            candidates = graph.candidates_of(index)
            if candidates:
                per_mention.append((index, candidates))
        if not per_mention:
            return {}
        combinations = 1
        feasible = True
        for _index, candidates in per_mention:
            combinations *= len(candidates)
            if combinations > self.config.enumeration_limit:
                feasible = False
                break
        if feasible:
            self.last_stats.postprocess = "enumerate"
            assignment = self._enumerate(graph, per_mention)
        else:
            self.last_stats.postprocess = "local_search"
            assignment = self._local_search(graph, per_mention)
        return assignment

    def _enumerate(
        self,
        graph: MentionEntityGraph,
        per_mention: Sequence[Tuple[int, List[EntityId]]],
    ) -> Dict[int, EntityId]:
        best_assignment: Dict[int, EntityId] = {}
        best_score = float("-inf")
        indices = [index for index, _c in per_mention]
        pools = [candidates for _i, candidates in per_mention]
        choice = [0] * len(pools)
        while True:
            assignment = {
                indices[slot]: pools[slot][choice[slot]]
                for slot in range(len(pools))
            }
            score = self._assignment_score(graph, assignment)
            if score > best_score:
                best_score = score
                best_assignment = assignment
            # Odometer increment.
            slot = len(pools) - 1
            while slot >= 0:
                choice[slot] += 1
                if choice[slot] < len(pools[slot]):
                    break
                choice[slot] = 0
                slot -= 1
            if slot < 0:
                break
        return best_assignment

    def _local_search(
        self,
        graph: MentionEntityGraph,
        per_mention: Sequence[Tuple[int, List[EntityId]]],
    ) -> Dict[int, EntityId]:
        rng = SeededRng(self.config.seed)
        # Start greedily: best mention-entity edge per mention.
        current = {
            index: max(
                candidates,
                key=lambda eid: (graph.me_weight(index, eid), eid),
            )
            for index, candidates in per_mention
        }
        current_score = self._assignment_score(graph, current)
        best = dict(current)
        best_score = current_score
        pools = dict(per_mention)
        indices = [index for index, _c in per_mention]
        for _step in range(self.config.local_search_iterations):
            index = rng.choice(indices)
            candidates = pools[index]
            if len(candidates) < 2:
                continue
            # Candidates are sampled proportionally to weighted degree.
            weights = [
                graph.weighted_degree(eid) + 1e-9 for eid in candidates
            ]
            proposal = rng.weighted_choice(candidates, weights)
            if proposal == current[index]:
                continue
            previous = current[index]
            current[index] = proposal
            score = self._assignment_score(graph, current)
            if score >= current_score:
                current_score = score
                if score > best_score:
                    best_score = score
                    best = dict(current)
            else:
                current[index] = previous
        return best

    @staticmethod
    def _assignment_score(
        graph: MentionEntityGraph, assignment: Dict[int, EntityId]
    ) -> float:
        """Total edge weight of an assignment: chosen mention-entity edges
        plus coherence among the distinct chosen entities."""
        score = 0.0
        for index, entity_id in assignment.items():
            score += graph.me_weight(index, entity_id)
        chosen = sorted(set(assignment.values()))
        for i, a in enumerate(chosen):
            for b in chosen[i + 1 :]:
                score += graph.ee_weight(a, b)
        return score
