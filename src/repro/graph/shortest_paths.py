"""Shortest weighted paths from mentions to entities (pre-processing phase).

Algorithm 1 prunes the mention-entity graph before the greedy loop: for each
entity node, the distance to the set of all mention nodes is computed as the
sum of squared shortest-path distances, and only the entities closest to the
mentions are kept.  Edge *distance* is ``1 - weight`` (weights live in
[0, 1] after rescaling), floored at a small epsilon so zero-weight edges do
not create free paths.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Tuple

from repro.graph.mention_entity_graph import MentionEntityGraph
from repro.types import EntityId

_EPSILON = 1e-6
#: Distance assigned when a mention is unreachable from an entity.
UNREACHABLE = 1.0e9


def _edge_distance(weight: float) -> float:
    return max(1.0 - weight, _EPSILON)


def distances_from_mention(
    graph: MentionEntityGraph, mention_index: int
) -> Dict[EntityId, float]:
    """Dijkstra from one mention node over the full bipartite+coherence
    graph; returns shortest distances to every reachable entity."""
    start: Hashable = ("m", mention_index)
    best: Dict[Hashable, float] = {start: 0.0}
    heap: List[Tuple[float, int, Hashable]] = [(0.0, 0, start)]
    tiebreak = 1
    result: Dict[EntityId, float] = {}
    while heap:
        dist, _tb, node = heapq.heappop(heap)
        if dist > best.get(node, UNREACHABLE):
            continue
        for neighbor, weight in _neighbors(graph, node):
            candidate = dist + _edge_distance(weight)
            if candidate < best.get(neighbor, UNREACHABLE):
                best[neighbor] = candidate
                heapq.heappush(heap, (candidate, tiebreak, neighbor))
                tiebreak += 1
    for node, dist in best.items():
        if isinstance(node, tuple) and node[0] == "m":
            continue
        result[node] = dist
    return result


def _neighbors(graph: MentionEntityGraph, node: Hashable):
    if isinstance(node, tuple) and node[0] == "m":
        index = node[1]
        for entity_id in graph.candidates_of(index):
            yield entity_id, graph.me_weight(index, entity_id)
        return
    entity_id = node
    for index in sorted(graph.mentions_of(entity_id)):
        yield ("m", index), graph.me_weight(index, entity_id)
    for other in graph.ee_neighbors(entity_id):
        yield other, graph.ee_weight(entity_id, other)


def entity_mention_distances(
    graph: MentionEntityGraph,
) -> Dict[EntityId, float]:
    """Sum of squared shortest-path distances from each entity to all
    mentions (Section 3.4.2's pre-processing criterion)."""
    totals: Dict[EntityId, float] = {
        eid: 0.0 for eid in graph.active_entities()
    }
    for index in range(graph.mention_count):
        from_mention = distances_from_mention(graph, index)
        for entity_id in totals:
            dist = from_mention.get(entity_id, UNREACHABLE)
            totals[entity_id] += min(dist, UNREACHABLE) ** 2
    return totals
