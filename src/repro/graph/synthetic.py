"""Seeded synthetic mention-entity graphs and link worlds.

Used by the solver-equivalence tests, the solver performance benchmark,
and the relatedness differential tests: all need families of inputs of
controlled size that are bit-identical across runs and across the
reference/optimized code paths being compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.graph.mention_entity_graph import MentionEntityGraph
from repro.kb.links import LinkGraph
from repro.types import EntityId, Mention
from repro.utils.rng import SeededRng


@dataclass(frozen=True)
class SyntheticGraphSpec:
    """Shape of a synthetic candidate graph.

    ``mentions`` × ``candidates_per_mention`` entity nodes are created
    (disjoint candidate pools per mention, plus a ``shared_fraction`` of
    entities that are additionally injected into the next mention's pool,
    which exercises the metonymy/shared-candidate paths).  Each entity gets
    coherence edges to roughly ``ee_neighbors`` random other entities.
    """

    mentions: int = 10
    candidates_per_mention: int = 5
    ee_neighbors: int = 4
    shared_fraction: float = 0.1
    gamma: float = 0.4
    seed: int = 0


def synthetic_graph(spec: SyntheticGraphSpec) -> MentionEntityGraph:
    """Build a seeded random graph; identical spec → identical graph."""
    rng = SeededRng(spec.seed)
    mentions = [
        Mention(surface=f"m{i}", start=i * 2, end=i * 2 + 1)
        for i in range(spec.mentions)
    ]
    graph = MentionEntityGraph(mentions)
    entities = []
    for index in range(spec.mentions):
        for k in range(spec.candidates_per_mention):
            entity_id = f"E{index:03d}_{k:03d}"
            entities.append(entity_id)
            graph.add_mention_entity_edge(
                index, entity_id, rng.uniform(0.05, 1.0)
            )
            if (
                spec.mentions > 1
                and rng.maybe(spec.shared_fraction)
            ):
                graph.add_mention_entity_edge(
                    (index + 1) % spec.mentions,
                    entity_id,
                    rng.uniform(0.05, 1.0),
                )
    for entity_id in entities:
        for other in rng.sample(entities, spec.ee_neighbors):
            if other != entity_id:
                graph.add_entity_entity_edge(
                    entity_id, other, rng.uniform(0.05, 1.0)
                )
    graph.rescale_and_balance(spec.gamma)
    return graph


@dataclass(frozen=True)
class SyntheticLinkWorldSpec:
    """Shape of a synthetic entity-link world.

    ``entities`` nodes named ``E000`` … receive roughly ``mean_outlinks``
    outgoing links each, drawn toward a Zipf-weighted target distribution
    so some entities are link-rich hubs and others link-poor — the regime
    split the link-based relatedness measures care about.
    """

    entities: int = 40
    mean_outlinks: int = 8
    zipf_exponent: float = 1.0
    seed: int = 0


def synthetic_entity_ids(count: int) -> List[EntityId]:
    """The canonical entity-id vocabulary of the synthetic worlds."""
    return [f"E{index:03d}" for index in range(count)]


def synthetic_link_world(spec: SyntheticLinkWorldSpec) -> LinkGraph:
    """Build a seeded random link graph; identical spec → identical graph.

    Used by the relatedness differential tests, which need many small,
    structurally varied link worlds to compare a measure against its
    cached wrapper pair-for-pair.
    """
    rng = SeededRng(spec.seed)
    entities = synthetic_entity_ids(spec.entities)
    weights = rng.zipf_weights(len(entities), spec.zipf_exponent)
    links = LinkGraph()
    for source in entities:
        fanout = rng.randint(0, max(2 * spec.mean_outlinks, 1))
        for target in rng.pick_k_weighted(entities, weights, fanout):
            if target != source:
                links.add_link(source, target)
    return links
