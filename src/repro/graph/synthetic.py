"""Seeded synthetic mention-entity graphs.

Used by the solver-equivalence tests and the solver performance benchmark:
both need families of graphs of controlled size (mentions × candidates per
mention, coherence density) that are bit-identical across runs and across
the reference/incremental solver paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.mention_entity_graph import MentionEntityGraph
from repro.types import Mention
from repro.utils.rng import SeededRng


@dataclass(frozen=True)
class SyntheticGraphSpec:
    """Shape of a synthetic candidate graph.

    ``mentions`` × ``candidates_per_mention`` entity nodes are created
    (disjoint candidate pools per mention, plus a ``shared_fraction`` of
    entities that are additionally injected into the next mention's pool,
    which exercises the metonymy/shared-candidate paths).  Each entity gets
    coherence edges to roughly ``ee_neighbors`` random other entities.
    """

    mentions: int = 10
    candidates_per_mention: int = 5
    ee_neighbors: int = 4
    shared_fraction: float = 0.1
    gamma: float = 0.4
    seed: int = 0


def synthetic_graph(spec: SyntheticGraphSpec) -> MentionEntityGraph:
    """Build a seeded random graph; identical spec → identical graph."""
    rng = SeededRng(spec.seed)
    mentions = [
        Mention(surface=f"m{i}", start=i * 2, end=i * 2 + 1)
        for i in range(spec.mentions)
    ]
    graph = MentionEntityGraph(mentions)
    entities = []
    for index in range(spec.mentions):
        for k in range(spec.candidates_per_mention):
            entity_id = f"E{index:03d}_{k:03d}"
            entities.append(entity_id)
            graph.add_mention_entity_edge(
                index, entity_id, rng.uniform(0.05, 1.0)
            )
            if (
                spec.mentions > 1
                and rng.maybe(spec.shared_fraction)
            ):
                graph.add_mention_entity_edge(
                    (index + 1) % spec.mentions,
                    entity_id,
                    rng.uniform(0.05, 1.0),
                )
    for entity_id in entities:
        for other in rng.sample(entities, spec.ee_neighbors):
            if other != entity_id:
                graph.add_entity_entity_edge(
                    entity_id, other, rng.uniform(0.05, 1.0)
                )
    graph.rescale_and_balance(spec.gamma)
    return graph
