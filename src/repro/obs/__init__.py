"""Observability: hierarchical tracing, metrics, structured logging.

Three pillars, each with a near-free disabled default so the pipeline
carries zero configuration burden and ≈zero overhead until a caller opts
in (gated by ``benchmarks/bench_obs_overhead.py``):

* **Tracing** (:mod:`repro.obs.tracing`) — hierarchical spans
  (corpus → document → pipeline stage → solver phase) with thread-local
  span stacks, exported as JSON Lines or Chrome ``trace_event`` files
  loadable in ``chrome://tracing``/Perfetto.  Enable with
  ``set_tracer(Tracer())``.
* **Metrics** (:mod:`repro.obs.metrics`) — a thread-safe registry of
  counters, gauges and fixed-bucket histograms (p50/p90/p99) whose
  snapshots are picklable and mergeable, so ``BatchRunner`` fans numbers
  in from thread *and* process workers.  Enable with
  ``set_metrics(MetricsRegistry())``.
* **Logging** (:mod:`repro.obs.logging`) — the ``repro.*`` stdlib logger
  hierarchy with one ``configure_logging(level, json=False)`` entry
  point and key=value / JSON-line event records via ``log_event``.

The serving telemetry plane builds on these: request-scoped
:class:`TraceContext` propagation across thread/process executors
(:mod:`repro.obs.context`), time-windowed rates and rolling quantiles
(:mod:`repro.obs.window`), Prometheus text exposition
(:mod:`repro.obs.prometheus`), SLO/error-budget accounting
(:mod:`repro.obs.slo`) and trace-file latency breakdowns
(:mod:`repro.obs.report`).

See ``docs/observability.md`` for the span taxonomy and metric naming
convention.
"""

from repro.obs.context import (
    TraceContext,
    TraceSink,
    current_context,
    new_request_id,
    new_trace_id,
    set_context,
    use_context,
)
from repro.obs.logging import (
    JsonFormatter,
    KeyValueFormatter,
    configure_logging,
    get_logger,
    log_event,
    parse_level,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    get_metrics,
    set_metrics,
)
from repro.obs.prometheus import render as render_prometheus
from repro.obs.prometheus import validate_exposition
from repro.obs.slo import SloTracker
from repro.obs.tracing import (
    DEFAULT_MAX_SPANS,
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
)
from repro.obs.window import WindowedCounter, WindowedHistogram

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_SPANS",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "KeyValueFormatter",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "SloTracker",
    "SpanRecord",
    "TraceContext",
    "TraceSink",
    "Tracer",
    "WindowedCounter",
    "WindowedHistogram",
    "configure_logging",
    "current_context",
    "get_logger",
    "get_metrics",
    "get_tracer",
    "log_event",
    "new_request_id",
    "new_trace_id",
    "parse_level",
    "render_prometheus",
    "set_context",
    "set_metrics",
    "set_tracer",
    "use_context",
    "validate_exposition",
]
