"""Hierarchical span tracing (corpus → document → stage → solver phase).

A :class:`Tracer` records *spans* — named, timed regions of execution —
with thread-local span stacks so concurrently traced documents (the
``BatchRunner`` thread executor) nest correctly per worker thread.  Spans
are created with a context manager or a decorator::

    tracer = Tracer()
    with tracer.span("graph_build", category="stage", doc_id="d1"):
        ...

    @tracer.traced("solve")
    def solve(...): ...

Finished spans are buffered in memory and exported either as JSON Lines
(one span object per line, for ad-hoc ``jq`` analysis) or as the Chrome
``trace_event`` format — a file loadable in ``chrome://tracing`` or
`Perfetto <https://ui.perfetto.dev>`_ with matched ``B``/``E`` duration
events per thread.

The disabled path is near-free: :data:`NULL_TRACER` (a
:class:`NullTracer`) hands out one shared no-op span object, allocating
nothing per call.  The process-wide tracer defaults to it; enable tracing
with :func:`set_tracer`.  ``benchmarks/bench_obs_overhead.py`` gates the
disabled-path overhead at ≤2% of pipeline run-time.
"""

from __future__ import annotations

import functools
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass
class SpanRecord:
    """One finished span.

    ``start``/``duration`` are seconds on the tracer's monotonic clock
    (``start`` is relative to the tracer's construction); ``wall_start``
    is an absolute ``time.time()`` epoch for correlation with logs.
    """

    name: str
    category: str
    start: float
    duration: float
    tid: int
    span_id: int
    parent_id: Optional[int]
    depth: int
    enter_seq: int
    exit_seq: int
    wall_start: float
    args: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly view (the JSONL exporter's line payload)."""
        return {
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "duration": self.duration,
            "tid": self.tid,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "wall_start": self.wall_start,
            "args": dict(self.args),
        }


class _SpanContext:
    """Context manager for one span of an enabled tracer."""

    __slots__ = ("_tracer", "_name", "_category", "_args", "_record")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        args: Dict[str, Any],
    ):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args
        self._record: Optional[SpanRecord] = None

    def __enter__(self) -> "_SpanContext":
        self._record = self._tracer._open(
            self._name, self._category, self._args
        )
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._close(self._record)

    def add_args(self, **args: Any) -> None:
        """Attach extra key/value payload to the open span."""
        if self._record is not None:
            self._record.args.update(args)


class Tracer:
    """Collects hierarchical spans with per-thread span stacks."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._seq = itertools.count(1)
        self._epoch = time.perf_counter()
        self._wall_epoch = time.time()

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    def span(
        self, name: str, category: str = "", **args: Any
    ) -> _SpanContext:
        """Context manager recording one span under the current parent."""
        return _SpanContext(self, name, category, args)

    def traced(
        self, name: Optional[str] = None, category: str = ""
    ) -> Callable:
        """Decorator tracing every call of the wrapped function."""

        def decorate(fn: Callable) -> Callable:
            span_name = name if name is not None else fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(span_name, category=category):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def current_span(self) -> Optional[SpanRecord]:
        """The innermost open span of the calling thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # Internal open/close (called by _SpanContext)
    # ------------------------------------------------------------------
    def _open(
        self, name: str, category: str, args: Dict[str, Any]
    ) -> SpanRecord:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        parent = stack[-1] if stack else None
        now = time.perf_counter()
        record = SpanRecord(
            name=name,
            category=category,
            start=now - self._epoch,
            duration=0.0,
            tid=threading.get_ident(),
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            depth=len(stack),
            enter_seq=next(self._seq),
            exit_seq=0,
            wall_start=self._wall_epoch + (now - self._epoch),
            args=dict(args) if args else {},
        )
        stack.append(record)
        return record

    def _close(self, record: Optional[SpanRecord]) -> None:
        if record is None:
            return
        now = time.perf_counter()
        # A minimum 1ns duration keeps B/E event pairs strictly ordered
        # even for spans below the clock resolution.
        record.duration = max(
            now - self._epoch - record.start, 1e-9
        )
        record.exit_seq = next(self._seq)
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is record:
            stack.pop()
        elif stack and record in stack:  # unbalanced exit — be forgiving
            stack.remove(record)
        with self._lock:
            self._records.append(record)

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def records(self) -> List[SpanRecord]:
        """A snapshot of every finished span so far."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        """Drop all finished spans."""
        with self._lock:
            self._records.clear()

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per finished span; returns span count."""
        records = sorted(self.records(), key=lambda r: r.enter_seq)
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.as_dict()))
                handle.write("\n")
        return len(records)

    def chrome_trace_events(self) -> List[Dict[str, Any]]:
        """Finished spans as Chrome ``trace_event`` ``B``/``E`` pairs.

        Events are sorted by timestamp with the original enter/exit
        sequence as tie-break, so nesting is preserved per thread and
        ``ts`` is globally non-decreasing.
        """
        pid = os.getpid()
        events: List[Dict[str, Any]] = []
        for record in self.records():
            begin_ts = record.start * 1e6
            end_ts = (record.start + record.duration) * 1e6
            begin = {
                "name": record.name,
                "cat": record.category or "span",
                "ph": "B",
                "ts": begin_ts,
                "pid": pid,
                "tid": record.tid,
            }
            if record.args:
                begin["args"] = dict(record.args)
            end = {
                "name": record.name,
                "cat": record.category or "span",
                "ph": "E",
                "ts": end_ts,
                "pid": pid,
                "tid": record.tid,
            }
            events.append((begin_ts, record.enter_seq, begin))
            events.append((end_ts, record.exit_seq, end))
        events.sort(key=lambda item: (item[0], item[1]))
        return [event for _ts, _seq, event in events]

    def export_chrome(self, path: str) -> int:
        """Write a ``chrome://tracing``/Perfetto-loadable trace file.

        Returns the number of events written (two per span).
        """
        events = self.chrome_trace_events()
        payload = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": {"tracer": "repro.obs", "pid": os.getpid()},
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")
        return len(events)


class _NullSpan:
    """Shared no-op span: the whole disabled-tracing hot path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def add_args(self, **args: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """API-compatible tracer that records nothing and allocates nothing."""

    enabled = False

    def span(
        self, name: str, category: str = "", **args: Any
    ) -> _NullSpan:
        return _NULL_SPAN

    def traced(
        self, name: Optional[str] = None, category: str = ""
    ) -> Callable:
        def decorate(fn: Callable) -> Callable:
            return fn

        return decorate

    def current_span(self) -> None:
        return None

    def records(self) -> List[SpanRecord]:
        return []

    def clear(self) -> None:
        pass

    def chrome_trace_events(self) -> List[Dict[str, Any]]:
        return []


#: The process-wide disabled tracer (shared singleton).
NULL_TRACER = NullTracer()

_tracer: object = NULL_TRACER


def get_tracer():
    """The process-wide tracer (``NULL_TRACER`` unless enabled)."""
    return _tracer


def set_tracer(tracer) -> object:
    """Install *tracer* process-wide; returns the previous one.

    Pass ``None`` (or :data:`NULL_TRACER`) to disable tracing again.
    """
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous
