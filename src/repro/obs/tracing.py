"""Hierarchical span tracing (corpus → document → stage → solver phase).

A :class:`Tracer` records *spans* — named, timed regions of execution —
with thread-local span stacks so concurrently traced documents (the
``BatchRunner`` thread executor) nest correctly per worker thread.  Spans
are created with a context manager or a decorator::

    tracer = Tracer()
    with tracer.span("graph_build", category="stage", doc_id="d1"):
        ...

    @tracer.traced("solve")
    def solve(...): ...

Finished spans are buffered in memory and exported either as JSON Lines
(one span object per line, for ad-hoc ``jq`` analysis) or as the Chrome
``trace_event`` format — a file loadable in ``chrome://tracing`` or
`Perfetto <https://ui.perfetto.dev>`_ with matched ``B``/``E`` duration
events per thread.

The disabled path is near-free: :data:`NULL_TRACER` (a
:class:`NullTracer`) hands out one shared no-op span object, allocating
nothing per call.  The process-wide tracer defaults to it; enable tracing
with :func:`set_tracer`.  ``benchmarks/bench_obs_overhead.py`` gates the
disabled-path overhead at ≤2% of pipeline run-time.
"""

from __future__ import annotations

import collections
import functools
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional

from repro.obs.context import current_context

#: Default span-retention cap: a long-running ``serve`` process keeps at
#: most this many finished spans in memory (oldest evicted first).
DEFAULT_MAX_SPANS = 65_536


@dataclass
class SpanRecord:
    """One finished span.

    ``start``/``duration`` are seconds on the tracer's monotonic clock
    (``start`` is relative to the tracer's construction); ``wall_start``
    is an absolute ``time.time()`` epoch for correlation with logs.
    """

    name: str
    category: str
    start: float
    duration: float
    tid: int
    span_id: int
    parent_id: Optional[int]
    depth: int
    enter_seq: int
    exit_seq: int
    wall_start: float
    args: Dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[str] = None
    request_id: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly view (the JSONL exporter's line payload)."""
        payload = {
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "duration": self.duration,
            "tid": self.tid,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "wall_start": self.wall_start,
            "args": dict(self.args),
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        return payload


class _SpanContext:
    """Context manager for one span of an enabled tracer."""

    __slots__ = ("_tracer", "_name", "_category", "_args", "_record")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        args: Dict[str, Any],
    ):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args
        self._record: Optional[SpanRecord] = None

    def __enter__(self) -> "_SpanContext":
        self._record = self._tracer._open(
            self._name, self._category, self._args
        )
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._close(self._record)

    def add_args(self, **args: Any) -> None:
        """Attach extra key/value payload to the open span."""
        if self._record is not None:
            self._record.args.update(args)


class Tracer:
    """Collects hierarchical spans with per-thread span stacks.

    Retention is bounded: once ``max_spans`` finished spans are held,
    the oldest is evicted per append (counted in :attr:`dropped_spans`
    and the ``obs.tracer.dropped_spans`` counter when metrics are on).

    ``span_id_base`` offsets the span-id sequence so tracers living in
    different worker *processes* mint ids in disjoint ranges — absorbed
    worker spans then never collide with parent-side ids and the
    parent/child links inside a request's tree stay unambiguous.
    """

    enabled = True

    def __init__(
        self,
        max_spans: int = DEFAULT_MAX_SPANS,
        span_id_base: int = 0,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self._lock = threading.Lock()
        self._records: Deque[SpanRecord] = collections.deque()
        self._local = threading.local()
        self._ids = itertools.count(span_id_base + 1)
        self._seq = itertools.count(1)
        self._epoch = time.perf_counter()
        self._wall_epoch = time.time()
        self.max_spans = int(max_spans)
        self.span_id_base = int(span_id_base)
        self.dropped_spans = 0
        # Tail-sampling support: spans grouped per trace, plus the set
        # of record identities already handed out via take/discard (kept
        # lazily in the deque, compacted once they dominate it).
        self._trace_index: Dict[str, List[SpanRecord]] = {}
        self._detached: set = set()

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    def span(
        self, name: str, category: str = "", **args: Any
    ) -> _SpanContext:
        """Context manager recording one span under the current parent."""
        return _SpanContext(self, name, category, args)

    def traced(
        self, name: Optional[str] = None, category: str = ""
    ) -> Callable:
        """Decorator tracing every call of the wrapped function."""

        def decorate(fn: Callable) -> Callable:
            span_name = name if name is not None else fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(span_name, category=category):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def current_span(self) -> Optional[SpanRecord]:
        """The innermost open span of the calling thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # Internal open/close (called by _SpanContext)
    # ------------------------------------------------------------------
    def _open(
        self, name: str, category: str, args: Dict[str, Any]
    ) -> SpanRecord:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        parent = stack[-1] if stack else None
        parent_id = parent.span_id if parent is not None else None
        context = current_context()
        trace_id = request_id = None
        if context is not None:
            trace_id = context.trace_id
            request_id = context.request_id
            # The trace's first span on this thread — no local parent,
            # or a local parent belonging to no/another trace (an
            # infrastructure span like ``batch.run``) — re-parents onto
            # the originating request span so the tree connects across
            # executor hops.
            if context.parent_span_id is not None and (
                parent is None or parent.trace_id != trace_id
            ):
                parent_id = context.parent_span_id
        now = time.perf_counter()
        record = SpanRecord(
            name=name,
            category=category,
            start=now - self._epoch,
            duration=0.0,
            tid=threading.get_ident(),
            span_id=next(self._ids),
            parent_id=parent_id,
            depth=len(stack),
            enter_seq=next(self._seq),
            exit_seq=0,
            wall_start=self._wall_epoch + (now - self._epoch),
            args=dict(args) if args else {},
            trace_id=trace_id,
            request_id=request_id,
        )
        stack.append(record)
        return record

    def _close(self, record: Optional[SpanRecord]) -> None:
        if record is None:
            return
        now = time.perf_counter()
        # A minimum 1ns duration keeps B/E event pairs strictly ordered
        # even for spans below the clock resolution.
        record.duration = max(
            now - self._epoch - record.start, 1e-9
        )
        record.exit_seq = next(self._seq)
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is record:
            stack.pop()
        elif stack and record in stack:  # unbalanced exit — be forgiving
            stack.remove(record)
        with self._lock:
            self._append_locked(record)

    def _append_locked(self, record: SpanRecord) -> None:
        if len(self._records) - len(self._detached) >= self.max_spans:
            self._evict_oldest_locked()
        self._records.append(record)
        if record.trace_id is not None:
            self._trace_index.setdefault(record.trace_id, []).append(
                record
            )

    def _evict_oldest_locked(self) -> None:
        while self._records:
            oldest = self._records.popleft()
            key = id(oldest)
            if key in self._detached:
                self._detached.discard(key)
                continue
            self.dropped_spans += 1
            if oldest.trace_id is not None:
                siblings = self._trace_index.get(oldest.trace_id)
                if siblings is not None:
                    try:
                        siblings.remove(oldest)
                    except ValueError:
                        pass
                    if not siblings:
                        del self._trace_index[oldest.trace_id]
            from repro.obs.metrics import get_metrics

            get_metrics().counter("obs.tracer.dropped_spans").inc()
            return

    # ------------------------------------------------------------------
    # Manual spans and cross-process fan-in
    # ------------------------------------------------------------------
    def allocate_span_id(self) -> int:
        """Reserve a span id without opening a span.

        The serving front door allocates the request root span's id
        eagerly so downstream executors can re-parent onto it *before*
        the root span itself is closed and recorded.
        """
        return next(self._ids)

    def record_span(
        self,
        name: str,
        category: str = "",
        *,
        wall_start: float,
        duration: float,
        span_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        trace_id: Optional[str] = None,
        request_id: Optional[str] = None,
        depth: int = 0,
        **args: Any,
    ) -> SpanRecord:
        """Record an already-timed span from wall-clock endpoints.

        Used for regions timed on clocks other than the tracer's
        ``perf_counter`` epoch — e.g. queue-wait measured on the asyncio
        loop — and for the eagerly-allocated request root span.
        """
        enter = next(self._seq)
        record = SpanRecord(
            name=name,
            category=category,
            start=wall_start - self._wall_epoch,
            duration=max(duration, 1e-9),
            tid=threading.get_ident(),
            span_id=span_id if span_id is not None else next(self._ids),
            parent_id=parent_id,
            depth=depth,
            enter_seq=enter,
            exit_seq=next(self._seq),
            wall_start=wall_start,
            args=dict(args) if args else {},
            trace_id=trace_id,
            request_id=request_id,
        )
        with self._lock:
            self._append_locked(record)
        return record

    def absorb(self, span_dicts: Iterable[Dict[str, Any]]) -> int:
        """Fold worker-process span dicts into this tracer.

        The worker exported ``as_dict()`` payloads (its own epoch is
        meaningless here, so ``start`` is recomputed from ``wall_start``
        against this tracer's epoch); span/parent ids are kept verbatim —
        the per-process ``span_id_base`` ranges keep them collision-free.
        Returns the number of spans absorbed.
        """
        rows = sorted(span_dicts, key=lambda row: row.get("wall_start", 0.0))
        absorbed = 0
        with self._lock:
            for row in rows:
                enter = next(self._seq)
                record = SpanRecord(
                    name=row["name"],
                    category=row.get("category", ""),
                    start=row["wall_start"] - self._wall_epoch,
                    duration=row["duration"],
                    tid=row.get("tid", 0),
                    span_id=row["span_id"],
                    parent_id=row.get("parent_id"),
                    depth=row.get("depth", 0),
                    enter_seq=enter,
                    exit_seq=next(self._seq),
                    wall_start=row["wall_start"],
                    args=dict(row.get("args", {})),
                    trace_id=row.get("trace_id"),
                    request_id=row.get("request_id"),
                )
                self._append_locked(record)
                absorbed += 1
        return absorbed

    # ------------------------------------------------------------------
    # Tail sampling: per-trace retrieval
    # ------------------------------------------------------------------
    def take_trace(self, trace_id: str) -> List[Dict[str, Any]]:
        """Detach and return one trace's spans as export-ready dicts.

        The spans leave the retention buffer (the tail sampler either
        spools them or drops them — either way the tracer is done with
        them), so a serving process that takes or discards every
        finished request holds no per-request span memory long-term.
        """
        with self._lock:
            records = self._trace_index.pop(trace_id, [])
            for record in records:
                self._detached.add(id(record))
            self._maybe_compact_locked()
        records.sort(key=lambda r: (r.wall_start, r.enter_seq))
        return [record.as_dict() for record in records]

    def discard_trace(self, trace_id: str) -> int:
        """Drop one trace's spans; returns how many were dropped."""
        with self._lock:
            records = self._trace_index.pop(trace_id, [])
            for record in records:
                self._detached.add(id(record))
            self._maybe_compact_locked()
        return len(records)

    def _maybe_compact_locked(self) -> None:
        # Amortised: rebuild the deque only once detached spans dominate.
        if len(self._detached) < 256:
            return
        if len(self._detached) * 2 < len(self._records):
            return
        self._records = collections.deque(
            record
            for record in self._records
            if id(record) not in self._detached
        )
        self._detached.clear()

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def records(self) -> List[SpanRecord]:
        """A snapshot of every finished span still retained."""
        with self._lock:
            if not self._detached:
                return list(self._records)
            return [
                record
                for record in self._records
                if id(record) not in self._detached
            ]

    def clear(self) -> None:
        """Drop all finished spans."""
        with self._lock:
            self._records.clear()
            self._trace_index.clear()
            self._detached.clear()

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per finished span; returns span count."""
        records = sorted(self.records(), key=lambda r: r.enter_seq)
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.as_dict()))
                handle.write("\n")
        return len(records)

    def chrome_trace_events(self) -> List[Dict[str, Any]]:
        """Finished spans as Chrome ``trace_event`` ``B``/``E`` pairs.

        Events are sorted by timestamp with the original enter/exit
        sequence as tie-break, so nesting is preserved per thread and
        ``ts`` is globally non-decreasing.
        """
        pid = os.getpid()
        events: List[Dict[str, Any]] = []
        for record in self.records():
            begin_ts = record.start * 1e6
            end_ts = (record.start + record.duration) * 1e6
            begin = {
                "name": record.name,
                "cat": record.category or "span",
                "ph": "B",
                "ts": begin_ts,
                "pid": pid,
                "tid": record.tid,
            }
            if record.args:
                begin["args"] = dict(record.args)
            end = {
                "name": record.name,
                "cat": record.category or "span",
                "ph": "E",
                "ts": end_ts,
                "pid": pid,
                "tid": record.tid,
            }
            events.append((begin_ts, record.enter_seq, begin))
            events.append((end_ts, record.exit_seq, end))
        events.sort(key=lambda item: (item[0], item[1]))
        return [event for _ts, _seq, event in events]

    def export_chrome(self, path: str) -> int:
        """Write a ``chrome://tracing``/Perfetto-loadable trace file.

        Returns the number of events written (two per span).
        """
        events = self.chrome_trace_events()
        payload = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": {"tracer": "repro.obs", "pid": os.getpid()},
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")
        return len(events)


class _NullSpan:
    """Shared no-op span: the whole disabled-tracing hot path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def add_args(self, **args: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """API-compatible tracer that records nothing and allocates nothing."""

    enabled = False
    dropped_spans = 0
    max_spans = 0
    span_id_base = 0

    def span(
        self, name: str, category: str = "", **args: Any
    ) -> _NullSpan:
        return _NULL_SPAN

    def traced(
        self, name: Optional[str] = None, category: str = ""
    ) -> Callable:
        def decorate(fn: Callable) -> Callable:
            return fn

        return decorate

    def current_span(self) -> None:
        return None

    def allocate_span_id(self) -> int:
        return 0

    def record_span(self, name: str, category: str = "", **kwargs: Any) -> None:
        return None

    def absorb(self, span_dicts: Iterable[Dict[str, Any]]) -> int:
        return 0

    def take_trace(self, trace_id: str) -> List[Dict[str, Any]]:
        return []

    def discard_trace(self, trace_id: str) -> int:
        return 0

    def records(self) -> List[SpanRecord]:
        return []

    def clear(self) -> None:
        pass

    def chrome_trace_events(self) -> List[Dict[str, Any]]:
        return []


#: The process-wide disabled tracer (shared singleton).
NULL_TRACER = NullTracer()

_tracer: object = NULL_TRACER


def get_tracer():
    """The process-wide tracer (``NULL_TRACER`` unless enabled)."""
    return _tracer


def set_tracer(tracer) -> object:
    """Install *tracer* process-wide; returns the previous one.

    Pass ``None`` (or :data:`NULL_TRACER`) to disable tracing again.
    """
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous
