"""Trace-file analysis: per-stage critical-path latency breakdown.

``repro obs report trace.jsonl`` answers the operator's question "where
did the time go?" from the JSONL span trees the serving tail sampler
spools (or any ``Tracer.export_jsonl`` file):

* spans are grouped into traces by ``trace_id`` (spans without one fall
  into a single anonymous trace, so plain batch trace files work too);
* each trace becomes a span tree via ``parent_id``;
* a span's **self time** is its duration minus the time covered by its
  children (overlapping children — parallel executor fan-out — are
  union-merged first, so concurrent children are not double-counted);
* self time aggregates per span name into the breakdown table, ranked
  by total, with each stage's share of summed request wall time.

The module is pure analysis — no tracer state — so it can digest trace
files from another host.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["load_spans", "group_traces", "build_report", "render_report"]


def load_spans(paths: Sequence[str]) -> List[Dict[str, Any]]:
    """Read span dicts from JSONL trace files (blank lines skipped)."""
    spans: List[Dict[str, Any]] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except ValueError as error:
                    raise ValueError(
                        f"{path}:{line_no}: not a JSON span: {error}"
                    ) from None
                if isinstance(row, dict) and "name" in row:
                    spans.append(row)
    return spans


def group_traces(
    spans: Iterable[Dict[str, Any]]
) -> Dict[str, List[Dict[str, Any]]]:
    """Spans bucketed by ``trace_id`` (missing id → one shared bucket)."""
    traces: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        traces.setdefault(span.get("trace_id") or "", []).append(span)
    return traces


def _merged_cover(intervals: List[Tuple[float, float]]) -> float:
    """Total length covered by the union of (start, end) intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    covered = 0.0
    cursor_start, cursor_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cursor_end:
            covered += cursor_end - cursor_start
            cursor_start, cursor_end = start, end
        else:
            cursor_end = max(cursor_end, end)
    covered += cursor_end - cursor_start
    return covered


def _self_times(
    trace: List[Dict[str, Any]]
) -> List[Tuple[Dict[str, Any], float]]:
    """(span, self_seconds) for each span of one trace."""
    children: Dict[Any, List[Dict[str, Any]]] = {}
    ids = {span.get("span_id") for span in trace}
    for span in trace:
        parent = span.get("parent_id")
        if parent in ids:
            children.setdefault(parent, []).append(span)
    out: List[Tuple[Dict[str, Any], float]] = []
    for span in trace:
        duration = float(span.get("duration", 0.0))
        kids = children.get(span.get("span_id"), [])
        intervals = []
        start = float(span.get("wall_start", 0.0))
        end = start + duration
        for kid in kids:
            kid_start = float(kid.get("wall_start", 0.0))
            kid_end = kid_start + float(kid.get("duration", 0.0))
            # Clamp to the parent window; a child that reports outside
            # it (clock skew across processes) cannot subtract more
            # time than the parent actually spans.
            clipped = (max(kid_start, start), min(kid_end, end))
            if clipped[1] > clipped[0]:
                intervals.append(clipped)
        out.append((span, max(0.0, duration - _merged_cover(intervals))))
    return out


def _roots(trace: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    ids = {span.get("span_id") for span in trace}
    return [
        span for span in trace if span.get("parent_id") not in ids
    ]


def build_report(
    spans: Iterable[Dict[str, Any]],
    slo_ms: Optional[float] = None,
) -> Dict[str, Any]:
    """Aggregate spans into the per-stage breakdown structure.

    Returns ``{"traces", "spans", "total_ms", "slow_traces", "stages"}``
    where ``stages`` is a list of rows sorted by total self time::

        {"name", "count", "total_ms", "mean_ms", "max_ms", "share"}

    ``share`` is the stage's fraction of summed root-span wall time —
    the per-stage critical-path breakdown (self times of one trace sum
    to at most its root's duration when the tree is well-formed).
    """
    traces = group_traces(spans)
    stage: Dict[str, Dict[str, float]] = {}
    span_count = 0
    total_request_seconds = 0.0
    slow_traces = 0
    trace_durations: List[float] = []

    for trace in traces.values():
        span_count += len(trace)
        roots = _roots(trace)
        trace_seconds = sum(
            float(root.get("duration", 0.0)) for root in roots
        )
        total_request_seconds += trace_seconds
        trace_durations.append(trace_seconds)
        if slo_ms is not None and trace_seconds * 1000.0 > slo_ms:
            slow_traces += 1
        for span, self_seconds in _self_times(trace):
            row = stage.setdefault(
                span["name"],
                {"count": 0.0, "total": 0.0, "max": 0.0},
            )
            row["count"] += 1
            row["total"] += self_seconds
            row["max"] = max(row["max"], self_seconds)

    rows = []
    for name, row in stage.items():
        total_ms = row["total"] * 1000.0
        rows.append(
            {
                "name": name,
                "count": int(row["count"]),
                "total_ms": total_ms,
                "mean_ms": total_ms / row["count"] if row["count"] else 0.0,
                "max_ms": row["max"] * 1000.0,
                "share": (
                    row["total"] / total_request_seconds
                    if total_request_seconds > 0
                    else 0.0
                ),
            }
        )
    rows.sort(key=lambda r: r["total_ms"], reverse=True)

    return {
        "traces": len(traces),
        "spans": span_count,
        "total_ms": total_request_seconds * 1000.0,
        "slow_traces": slow_traces if slo_ms is not None else None,
        "slo_ms": slo_ms,
        "stages": rows,
    }


def render_report(report: Dict[str, Any]) -> str:
    """The breakdown as a fixed-width table for terminal output."""
    lines = []
    header = (
        f"traces: {report['traces']}  spans: {report['spans']}  "
        f"request time: {report['total_ms']:.1f} ms"
    )
    if report.get("slo_ms") is not None:
        header += (
            f"  slo: {report['slo_ms']:.0f} ms"
            f"  breaching: {report['slow_traces']}"
        )
    lines.append(header)
    lines.append("")
    name_width = max(
        [len("stage")] + [len(r["name"]) for r in report["stages"]]
    )
    lines.append(
        f"{'stage':<{name_width}}  {'count':>7}  {'total ms':>10}  "
        f"{'mean ms':>9}  {'max ms':>9}  {'share':>6}"
    )
    lines.append(
        "-" * (name_width + 2 + 7 + 2 + 10 + 2 + 9 + 2 + 9 + 2 + 6)
    )
    for row in report["stages"]:
        lines.append(
            f"{row['name']:<{name_width}}  {row['count']:>7}  "
            f"{row['total_ms']:>10.2f}  {row['mean_ms']:>9.3f}  "
            f"{row['max_ms']:>9.3f}  {row['share']:>5.1%}"
        )
    return "\n".join(lines)
