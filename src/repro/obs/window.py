"""Time-windowed metrics: rates and rolling quantiles over a bucket ring.

The cumulative counters/histograms of :mod:`repro.obs.metrics` answer
"how much since boot"; a live dashboard and the SLO tracker need "how
much *lately*".  Both windowed metric kinds here keep a ring of
fixed-interval buckets keyed by the **absolute** interval index
``int(now / interval)``:

* writes land in the current interval's slot;
* reads merge every slot younger than the window and ignore the rest —
  old samples age out by arithmetic, no sweeper thread;
* absolute indexing makes snapshots mergeable across processes (all
  workers share the wall clock), which is how windowed series ride the
  existing ``BatchRunner`` metric fan-in.

The clock is injectable so tests can plant old samples and watch them
age out deterministically.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import DEFAULT_BUCKETS, SNAPSHOT_QUANTILES

__all__ = ["WindowedCounter", "WindowedHistogram"]

#: Default rolling window: one minute in twelve 5-second buckets.
DEFAULT_WINDOW_SECONDS = 60.0
DEFAULT_WINDOW_BUCKETS = 12


class _WindowBase:
    """Ring bookkeeping shared by both windowed metric kinds."""

    def __init__(
        self,
        name: str,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        window_buckets: int = DEFAULT_WINDOW_BUCKETS,
        clock: Callable[[], float] = time.time,
    ):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")
        if window_buckets < 1:
            raise ValueError("window_buckets must be >= 1")
        self.name = name
        self.window_seconds = float(window_seconds)
        self.window_buckets = int(window_buckets)
        self.interval = self.window_seconds / self.window_buckets
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: Dict[int, object] = {}

    def _slot_index(self) -> int:
        return int(self._clock() / self.interval)

    def _live_indexes(self, now_index: Optional[int] = None) -> List[int]:
        """Indexes inside the window; also evicts everything older."""
        if now_index is None:
            now_index = self._slot_index()
        oldest = now_index - self.window_buckets + 1
        stale = [index for index in self._ring if index < oldest]
        for index in stale:
            del self._ring[index]
        return sorted(self._ring)

    def _reset(self) -> None:
        with self._lock:
            self._ring.clear()


class WindowedCounter(_WindowBase):
    """Event count over the rolling window, with a per-second rate."""

    def inc(self, amount: float = 1.0) -> None:
        """Count *amount* events now."""
        index = self._slot_index()
        with self._lock:
            self._ring[index] = self._ring.get(index, 0.0) + amount

    @property
    def total(self) -> float:
        """Events inside the window."""
        with self._lock:
            return sum(
                self._ring[index] for index in self._live_indexes()
            )

    def rate(self) -> float:
        """Events per second over the window."""
        return self.total / self.window_seconds

    def snapshot(self) -> Dict[str, object]:
        """Picklable view (``ring`` keys are absolute interval indexes)."""
        with self._lock:
            live = self._live_indexes()
            return {
                "window_seconds": self.window_seconds,
                "window_buckets": self.window_buckets,
                "total": sum(self._ring[index] for index in live),
                "rate": (
                    sum(self._ring[index] for index in live)
                    / self.window_seconds
                ),
                "ring": {
                    str(index): self._ring[index] for index in live
                },
            }

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold another process's snapshot in (absolute-index aligned)."""
        with self._lock:
            for key, amount in snapshot.get("ring", {}).items():
                index = int(key)
                self._ring[index] = self._ring.get(index, 0.0) + amount
            self._live_indexes()


class _HistogramSlot:
    """One interval's worth of histogram state."""

    __slots__ = ("bucket_counts", "count", "sum", "min", "max")

    def __init__(self, slots: int):
        self.bucket_counts = [0] * slots
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")


class WindowedHistogram(_WindowBase):
    """Fixed-bound histogram whose quantiles cover only the window.

    Same nearest-rank estimate as the cumulative
    :class:`~repro.obs.metrics.Histogram`, computed over the merged
    bucket counts of the live ring slots — p99 therefore *forgets* any
    sample older than ``window_seconds``.
    """

    def __init__(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        window_buckets: int = DEFAULT_WINDOW_BUCKETS,
        clock: Callable[[], float] = time.time,
    ):
        super().__init__(name, window_seconds, window_buckets, clock)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                "histogram buckets must be strictly increasing and "
                "non-empty"
            )
        self.bounds = bounds

    def observe(self, value: float) -> None:
        """Record one sample now."""
        slot_index = self._slot_index()
        bucket = bisect.bisect_left(self.bounds, value)
        with self._lock:
            slot = self._ring.get(slot_index)
            if slot is None:
                slot = _HistogramSlot(len(self.bounds) + 1)
                self._ring[slot_index] = slot
            slot.bucket_counts[bucket] += 1
            slot.count += 1
            slot.sum += value
            if value < slot.min:
                slot.min = value
            if value > slot.max:
                slot.max = value

    def _merged_locked(self) -> Tuple[List[int], int, float, float, float]:
        counts = [0] * (len(self.bounds) + 1)
        total = 0
        value_sum = 0.0
        lo, hi = float("inf"), float("-inf")
        for index in self._live_indexes():
            slot = self._ring[index]
            for position, bucket_count in enumerate(slot.bucket_counts):
                counts[position] += bucket_count
            total += slot.count
            value_sum += slot.sum
            lo = min(lo, slot.min)
            hi = max(hi, slot.max)
        return counts, total, value_sum, lo, hi

    @property
    def count(self) -> int:
        """Samples inside the window."""
        with self._lock:
            return self._merged_locked()[1]

    def rate(self) -> float:
        """Samples per second over the window."""
        return self.count / self.window_seconds

    def quantile(self, q: float) -> float:
        """Nearest-rank windowed quantile (0.0 while the window is empty)."""
        with self._lock:
            counts, total, _sum, _lo, hi = self._merged_locked()
        if total == 0:
            return 0.0
        rank = min(total, max(1, math.ceil(q * total - 1e-9)))
        cumulative = 0
        for position, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if position < len(self.bounds):
                    return min(self.bounds[position], hi)
                return hi
        return hi

    def snapshot(self) -> Dict[str, object]:
        """Picklable view: windowed count/sum/rate/min/max/quantiles."""
        with self._lock:
            counts, total, value_sum, lo, hi = self._merged_locked()
            ring = {
                str(index): {
                    "bucket_counts": list(slot.bucket_counts),
                    "count": slot.count,
                    "sum": slot.sum,
                    "min": slot.min,
                    "max": slot.max,
                }
                for index, slot in self._ring.items()
            }
        snap: Dict[str, object] = {
            "window_seconds": self.window_seconds,
            "window_buckets": self.window_buckets,
            "bounds": list(self.bounds),
            "count": total,
            "sum": value_sum,
            "rate": total / self.window_seconds,
            "min": lo if total else 0.0,
            "max": hi if total else 0.0,
            "ring": ring,
        }
        for label, q in SNAPSHOT_QUANTILES:
            snap[label] = self._quantile_of(counts, total, hi, q)
        return snap

    def _quantile_of(
        self, counts: List[int], total: int, hi: float, q: float
    ) -> float:
        if total == 0:
            return 0.0
        rank = min(total, max(1, math.ceil(q * total - 1e-9)))
        cumulative = 0
        for position, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if position < len(self.bounds):
                    return min(self.bounds[position], hi)
                return hi
        return hi

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold another process's snapshot in (absolute-index aligned)."""
        if list(snapshot.get("bounds", self.bounds)) != list(self.bounds):
            raise ValueError(
                f"cannot merge windowed histogram {self.name!r}: bucket "
                "bounds differ"
            )
        with self._lock:
            for key, row in snapshot.get("ring", {}).items():
                index = int(key)
                slot = self._ring.get(index)
                if slot is None:
                    slot = _HistogramSlot(len(self.bounds) + 1)
                    self._ring[index] = slot
                for position, bucket_count in enumerate(
                    row["bucket_counts"]
                ):
                    slot.bucket_counts[position] += bucket_count
                slot.count += row["count"]
                slot.sum += row["sum"]
                slot.min = min(slot.min, row["min"])
                slot.max = max(slot.max, row["max"])
            self._live_indexes()
