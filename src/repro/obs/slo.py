"""SLO accounting: good/bad requests, error budget, rolling burn rate.

One :class:`SloTracker` watches the serving path's latency objective
("99% of requests complete within ``slo_ms``").  Every finished request
is recorded as *good* (no error, latency within the SLO) or *bad*;
the tracker keeps both cumulative totals (for the error budget) and a
rolling window (for the burn rate an alert would page on).

Burn rate follows the SRE-workbook convention: the windowed bad-request
fraction divided by the error budget (``1 - objective``).  A burn rate
of 1.0 means the service is spending budget exactly as fast as the
objective allows; 14.4 is the classic "page now" threshold for a
99.9% objective over one hour.

The tracker also answers the tail-sampling question: a request whose
latency breaches the SLO (or that errored) is the kind whose full span
tree is worth keeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

from repro.obs.window import (
    DEFAULT_WINDOW_BUCKETS,
    DEFAULT_WINDOW_SECONDS,
    WindowedCounter,
)

__all__ = ["SloTracker"]


class SloTracker:
    """Good/bad request accounting against a latency objective."""

    def __init__(
        self,
        slo_ms: float,
        objective: float = 0.99,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        window_buckets: int = DEFAULT_WINDOW_BUCKETS,
        clock: Callable[[], float] = time.time,
    ):
        if slo_ms <= 0:
            raise ValueError("slo_ms must be > 0")
        if not 0.0 < objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        self.slo_ms = float(slo_ms)
        self.objective = float(objective)
        self.error_budget = 1.0 - self.objective
        self._lock = threading.Lock()
        self._good_total = 0
        self._bad_total = 0
        self._windowed_good = WindowedCounter(
            "slo.good", window_seconds, window_buckets, clock
        )
        self._windowed_bad = WindowedCounter(
            "slo.bad", window_seconds, window_buckets, clock
        )

    def record(self, latency_ms: float, error: bool = False) -> bool:
        """Account one finished request; returns True when it was good."""
        good = not error and latency_ms <= self.slo_ms
        with self._lock:
            if good:
                self._good_total += 1
            else:
                self._bad_total += 1
        (self._windowed_good if good else self._windowed_bad).inc()
        return good

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """All requests recorded since construction."""
        with self._lock:
            return self._good_total + self._bad_total

    @property
    def bad_total(self) -> int:
        """Bad requests recorded since construction."""
        with self._lock:
            return self._bad_total

    def compliance(self) -> float:
        """Cumulative good fraction (1.0 before any traffic)."""
        with self._lock:
            total = self._good_total + self._bad_total
            if total == 0:
                return 1.0
            return self._good_total / total

    def burn_rate(self) -> float:
        """Windowed budget burn: bad fraction / error budget.

        0.0 with no traffic in the window; 1.0 means budget spends at
        exactly the sustainable rate; >1 means the budget runs out
        before the objective period does.
        """
        good = self._windowed_good.total
        bad = self._windowed_bad.total
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / self.error_budget

    def budget_remaining(self) -> float:
        """Fraction of the cumulative error budget still unspent.

        1.0 with a clean ledger, 0.0 once bad requests have consumed
        ``(1 - objective)`` of all traffic (floored at 0).
        """
        with self._lock:
            total = self._good_total + self._bad_total
            bad = self._bad_total
        if total == 0:
            return 1.0
        allowed = self.error_budget * total
        if allowed <= 0:
            return 0.0
        return max(0.0, 1.0 - bad / allowed)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """The ``/stats`` view: objective, totals, burn, budget."""
        with self._lock:
            good = self._good_total
            bad = self._bad_total
        return {
            "slo_ms": self.slo_ms,
            "objective": self.objective,
            "good_total": good,
            "bad_total": bad,
            "compliance": self.compliance(),
            "burn_rate": self.burn_rate(),
            "budget_remaining": self.budget_remaining(),
            "window_good": self._windowed_good.total,
            "window_bad": self._windowed_bad.total,
        }

    def publish(self, metrics) -> None:
        """Refresh the ``serving.slo.*`` gauges on *metrics*."""
        metrics.gauge("serving.slo.objective").set(self.objective)
        metrics.gauge("serving.slo.compliance").set(self.compliance())
        metrics.gauge("serving.slo.burn_rate").set(self.burn_rate())
        metrics.gauge("serving.slo.budget_remaining").set(
            self.budget_remaining()
        )
        metrics.gauge("serving.slo.window_bad").set(
            self._windowed_bad.total
        )
