"""Request-scoped trace context: ids that survive thread and process hops.

A :class:`TraceContext` is minted once per request at the serving front
door and rides with the document through every executor boundary — the
asyncio event loop, the micro-batcher, ``BatchRunner`` worker threads,
and (pickled) process-pool workers.  Spans opened while a context is
*active* (see :func:`use_context`) are stamped with its ``trace_id`` and
``request_id``, and a worker-side root span re-parents onto
``parent_span_id`` — the front door's request span — so one request
yields one connected span tree no matter how many processes touched it.

``baggage`` is a small string→string map carried verbatim across every
hop (the W3C Baggage idea): the serving layer uses it to ship the
admitted degradation rung to process workers, where object identity is
useless after the pickle wall.

:class:`TraceSink` is the bounded JSONL spool the tail sampler writes
kept traces to: one span object per line, the same schema as
``Tracer.export_jsonl``, loadable by ``repro obs report``.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import uuid
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, Iterator, Optional

__all__ = [
    "TraceContext",
    "TraceSink",
    "current_context",
    "new_trace_id",
    "new_request_id",
    "set_context",
    "use_context",
]


def new_trace_id() -> str:
    """A fresh 32-hex-digit trace id (random, collision-free in practice)."""
    return uuid.uuid4().hex


def new_request_id() -> str:
    """A fresh request id (short form, prefixed for log greppability)."""
    return "req-" + uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The per-request identity every span and error record carries.

    Frozen and built from plain strings/ints, so it pickles across the
    process-pool wall and round-trips JSON for wire payloads.

    ``sampled`` is the *head*-sampling verdict made at admission: a
    sampled request's trace is exported even when healthy; an unsampled
    one is still recorded but only kept if the request breaches the SLO
    or errors (tail sampling keeps every interesting trace).
    """

    trace_id: str
    request_id: str
    parent_span_id: Optional[int] = None
    sampled: bool = True
    baggage: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def new(
        cls,
        sampled: bool = True,
        baggage: Optional[Dict[str, str]] = None,
    ) -> "TraceContext":
        """Mint a fresh context (front-door use)."""
        return cls(
            trace_id=new_trace_id(),
            request_id=new_request_id(),
            sampled=sampled,
            baggage=dict(baggage) if baggage else {},
        )

    def with_parent(self, span_id: Optional[int]) -> "TraceContext":
        """This context re-rooted under *span_id* (the request span)."""
        return replace(self, parent_span_id=span_id)

    def with_baggage(self, **items: str) -> "TraceContext":
        """This context with extra baggage entries (copy-on-write)."""
        merged = dict(self.baggage)
        merged.update({key: str(value) for key, value in items.items()})
        return replace(self, baggage=merged)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly wire form (response payloads, JSONL rows)."""
        payload: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "sampled": self.sampled,
        }
        if self.parent_span_id is not None:
            payload["parent_span_id"] = self.parent_span_id
        if self.baggage:
            payload["baggage"] = dict(self.baggage)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceContext":
        """Inverse of :meth:`to_dict`."""
        return cls(
            trace_id=str(payload["trace_id"]),
            request_id=str(payload["request_id"]),
            parent_span_id=payload.get("parent_span_id"),
            sampled=bool(payload.get("sampled", True)),
            baggage=dict(payload.get("baggage", {})),
        )


_local = threading.local()


def current_context() -> Optional[TraceContext]:
    """The calling thread's active context, or None outside a request."""
    return getattr(_local, "context", None)


def set_context(context: Optional[TraceContext]) -> Optional[TraceContext]:
    """Install *context* on this thread; returns the previous one."""
    previous = getattr(_local, "context", None)
    _local.context = context
    return previous


@contextlib.contextmanager
def use_context(context: Optional[TraceContext]) -> Iterator[None]:
    """Activate *context* for the duration of the block (re-entrant)."""
    previous = set_context(context)
    try:
        yield
    finally:
        set_context(previous)


class TraceSink:
    """Bounded JSONL spool for sampled/kept span trees.

    One span dict per line, grouped per trace (a trace's spans are
    written contiguously).  The bound is a trace count, not bytes: once
    ``max_traces`` traces are spooled, further exports are counted as
    dropped instead of growing the file — a long-running server cannot
    fill the disk through its own telemetry.
    """

    def __init__(self, path: str, max_traces: int = 10_000):
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.path = path
        self.max_traces = max_traces
        self._lock = threading.Lock()
        self._handle = None
        self.traces_written = 0
        self.traces_dropped = 0
        self.spans_written = 0

    def export(self, spans: Iterable[Dict[str, Any]]) -> bool:
        """Append one trace's spans; False when the bound dropped it."""
        rows = [json.dumps(span, sort_keys=True) for span in spans]
        if not rows:
            return False
        with self._lock:
            if self.traces_written >= self.max_traces:
                self.traces_dropped += 1
                return False
            if self._handle is None:
                directory = os.path.dirname(os.path.abspath(self.path))
                os.makedirs(directory, exist_ok=True)
                self._handle = open(self.path, "w", encoding="utf-8")
            self._handle.write("\n".join(rows) + "\n")
            self._handle.flush()
            self.traces_written += 1
            self.spans_written += len(rows)
        return True

    def stats(self) -> Dict[str, int]:
        """Spool accounting for ``/stats`` and tests."""
        with self._lock:
            return {
                "traces_written": self.traces_written,
                "traces_dropped": self.traces_dropped,
                "spans_written": self.spans_written,
            }

    def close(self) -> None:
        """Flush and close the spool file (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
