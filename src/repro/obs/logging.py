"""Structured stdlib logging for the ``repro.*`` logger hierarchy.

One entry point configures the whole tree::

    from repro.obs import configure_logging
    configure_logging("debug")              # key=value lines on stderr
    configure_logging("info", json=True)    # one JSON object per line

Modules emit *events* — a dotted event name plus key=value fields — via
:func:`log_event`::

    log_event(logger, "pipeline.stage", stage="solve", seconds=0.012)

which renders as ``... event=pipeline.stage stage=solve seconds=0.012``
in text mode and as ``{"event": "pipeline.stage", "stage": "solve",
...}`` in JSON mode.  Plain ``logger.info("...")`` calls pass through
both formatters unchanged, so no caller is forced onto the event API.

Nothing here configures logging at import time: until
:func:`configure_logging` runs, ``repro`` loggers obey whatever the host
application set up (library-friendly default).
"""

from __future__ import annotations

import json as _json
import logging
import sys
import time
from typing import Any, Dict, Optional, TextIO

#: Root of the hierarchy: ``repro.pipeline``, ``repro.solver``, …
ROOT_LOGGER_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

#: Marker attribute identifying handlers installed by configure_logging.
_HANDLER_MARK = "_repro_obs_handler"


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (prefix added if absent)."""
    if name != ROOT_LOGGER_NAME and not name.startswith(
        ROOT_LOGGER_NAME + "."
    ):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def parse_level(level: Any) -> int:
    """``"debug"``/``"INFO"``/``10`` → a stdlib logging level int."""
    if isinstance(level, int):
        return level
    try:
        return _LEVELS[str(level).lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; expected one of "
            f"{sorted(_LEVELS)}"
        ) from None


class KeyValueFormatter(logging.Formatter):
    """``ts level logger event=... key=value ...`` single-line records."""

    def format(self, record: logging.LogRecord) -> str:
        timestamp = time.strftime(
            "%H:%M:%S", time.localtime(record.created)
        )
        parts = [
            f"{timestamp}.{int(record.msecs):03d}",
            record.levelname.lower(),
            record.name,
        ]
        event = getattr(record, "event", None)
        if event is not None:
            parts.append(f"event={event}")
            fields: Dict[str, Any] = getattr(record, "event_fields", {})
            parts.extend(
                f"{key}={_scalar(value)}" for key, value in fields.items()
            )
        else:
            parts.append(record.getMessage())
        line = " ".join(parts)
        if record.exc_info:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


class JsonFormatter(logging.Formatter):
    """One JSON object per record (machine-ingestible log stream)."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": record.created,
            "level": record.levelname.lower(),
            "logger": record.name,
        }
        event = getattr(record, "event", None)
        if event is not None:
            payload["event"] = event
            for key, value in getattr(record, "event_fields", {}).items():
                if key not in payload:
                    payload[key] = value
        else:
            payload["message"] = record.getMessage()
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return _json.dumps(payload, default=str)


def _scalar(value: Any) -> str:
    """Render one field value for the key=value formatter."""
    if isinstance(value, float):
        return format(value, ".6g")
    text = str(value)
    if " " in text or "=" in text:
        return repr(text)
    return text


def configure_logging(
    level: Any = "info",
    json: bool = False,
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """Configure the ``repro`` logger tree; returns the root logger.

    Installs exactly one stream handler (stderr by default) with either
    the key=value or the JSON formatter; calling again reconfigures
    idempotently.  ``repro`` loggers stop propagating to the stdlib root
    so host applications don't double-print.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(parse_level(level))
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(
        stream if stream is not None else sys.stderr
    )
    handler.setFormatter(JsonFormatter() if json else KeyValueFormatter())
    setattr(handler, _HANDLER_MARK, True)
    root.addHandler(handler)
    root.propagate = False
    return root


def log_event(
    logger: logging.Logger,
    event: str,
    _level: int = logging.DEBUG,
    **fields: Any,
) -> None:
    """Emit one structured event record at ``_level`` (DEBUG default).

    Cheap when disabled: the level check happens before any record is
    built, so hot paths may call this unguarded (guarding with
    ``logger.isEnabledFor`` is still slightly cheaper when computing
    field values costs anything).
    """
    if logger.isEnabledFor(_level):
        logger.log(
            _level,
            "%s",
            event,
            extra={"event": event, "event_fields": fields},
        )
