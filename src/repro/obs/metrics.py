"""Thread-safe metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` names and owns every metric::

    metrics = MetricsRegistry()
    metrics.counter("pipeline.documents").inc()
    metrics.gauge("batch.queue_depth").set(7)
    metrics.histogram("pipeline.stage.solve.seconds").observe(0.012)

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain picklable dicts, so
worker *processes* can ship their numbers across the pickle wall and the
parent merges them with :meth:`MetricsRegistry.merge`;
:meth:`MetricsRegistry.drain` atomically snapshots-and-resets, which is
how ``BatchRunner`` process workers report deltas per task.  Worker
*threads* simply share one registry — every mutation takes the owning
metric's lock.

Histograms use fixed bucket boundaries (default: a log-spaced
seconds-oriented ladder), recording per-bucket counts plus count / sum /
min / max; p50/p90/p99 are nearest-rank estimates that resolve to the
upper bound of the bucket holding the rank (clamped to the observed max).

The disabled path is near-free: :data:`NULL_METRICS` hands out shared
no-op metric objects.  The process-wide registry defaults to it; enable
with :func:`set_metrics`.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Log-spaced ladder for durations in seconds (overflow bucket above).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

#: The quantiles every histogram snapshot reports.
SNAPSHOT_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p99", 0.99),
)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (default 1)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A point-in-time value (queue depth, cache size, …)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        """Shift the current value by *amount*."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Shift the current value by ``-amount``."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Fixed-bucket histogram with nearest-rank quantile estimates."""

    __slots__ = (
        "name",
        "bounds",
        "_lock",
        "_bucket_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    def __init__(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ):
        self.name = name
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                "histogram buckets must be strictly increasing and "
                "non-empty"
            )
        self.bounds = bounds
        self._lock = threading.Lock()
        # One slot per bound plus the overflow bucket.
        self._bucket_counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        slot = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._bucket_counts[slot] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of recorded samples."""
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate from the bucket counts.

        Resolves to the upper bound of the bucket containing the rank,
        clamped to the observed maximum (exact for the overflow bucket).
        """
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        # Nearest-rank: ceil(q*n); the epsilon guards against float
        # products like q*n = 9.000000000000002 ceiling one rank too far.
        rank = min(
            self._count, max(1, math.ceil(q * self._count - 1e-9))
        )
        cumulative = 0
        for slot, bucket_count in enumerate(self._bucket_counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if slot < len(self.bounds):
                    return min(self.bounds[slot], self._max)
                return self._max
        return self._max

    def _snapshot_locked(self) -> Dict[str, object]:
        snap: Dict[str, object] = {
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else 0.0,
            "max": self._max if self._count else 0.0,
            "bounds": list(self.bounds),
            "bucket_counts": list(self._bucket_counts),
        }
        for label, q in SNAPSHOT_QUANTILES:
            snap[label] = self._quantile_locked(q)
        return snap

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view: counts, sum, min/max, buckets, p50/p90/p99."""
        with self._lock:
            return self._snapshot_locked()

    def _reset(self) -> None:
        with self._lock:
            self._bucket_counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")


class MetricsRegistry:
    """Names and owns every metric; snapshots merge across workers."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._windowed_counters: Dict[str, object] = {}
        self._windowed_histograms: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Metric accessors (create on first use)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called *name*, created on first use."""
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(name, Counter(name))
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called *name*, created on first use."""
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(name, Gauge(name))
        return metric

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram called *name*, created on first use."""
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(
                    name, Histogram(name, buckets)
                )
        return metric

    def windowed_counter(self, name: str, **kwargs):
        """The windowed (rolling-rate) counter *name*, created on first
        use; kwargs (``window_seconds``, ``window_buckets``, ``clock``)
        only apply at creation."""
        metric = self._windowed_counters.get(name)
        if metric is None:
            from repro.obs.window import WindowedCounter

            with self._lock:
                metric = self._windowed_counters.setdefault(
                    name, WindowedCounter(name, **kwargs)
                )
        return metric

    def windowed_histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **kwargs,
    ):
        """The windowed (rolling-quantile) histogram *name*, created on
        first use; kwargs only apply at creation."""
        metric = self._windowed_histograms.get(name)
        if metric is None:
            from repro.obs.window import WindowedHistogram

            with self._lock:
                metric = self._windowed_histograms.setdefault(
                    name, WindowedHistogram(name, buckets, **kwargs)
                )
        return metric

    # ------------------------------------------------------------------
    # Snapshots and merging
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A picklable, consistent-per-metric copy of every metric."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
            windowed_counters = list(self._windowed_counters.values())
            windowed_histograms = list(
                self._windowed_histograms.values()
            )
        return {
            "counters": {c.name: c.value for c in counters},
            "gauges": {g.name: g.value for g in gauges},
            "histograms": {h.name: h.snapshot() for h in histograms},
            "windows": {
                "counters": {
                    w.name: w.snapshot() for w in windowed_counters
                },
                "histograms": {
                    w.name: w.snapshot() for w in windowed_histograms
                },
            },
        }

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Alias of :meth:`snapshot` (JSON output, ``--metrics-out``)."""
        return self.snapshot()

    def reset(self) -> None:
        """Zero every metric (names and bucket layouts are kept)."""
        with self._lock:
            metrics: List[object] = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
                + list(self._windowed_counters.values())
                + list(self._windowed_histograms.values())
            )
        for metric in metrics:
            metric._reset()

    def drain(self) -> Dict[str, Dict[str, object]]:
        """Snapshot then reset — the per-task delta a process worker
        ships back to the parent for :meth:`merge`."""
        snap = self.snapshot()
        self.reset()
        return snap

    def merge(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold another registry's snapshot into this one.

        Counters add; gauges keep the larger value (the interesting
        direction for queue depths and cache sizes); histograms add
        bucket counts (bucket layouts must match) and widen min/max.
        """
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            with gauge._lock:
                if value > gauge._value:
                    gauge._value = value
        for name, snap in snapshot.get("histograms", {}).items():
            if not snap.get("count"):
                continue
            histogram = self.histogram(
                name, buckets=snap.get("bounds") or None
            )
            if list(histogram.bounds) != list(snap["bounds"]):
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket bounds "
                    "differ"
                )
            with histogram._lock:
                for slot, bucket_count in enumerate(snap["bucket_counts"]):
                    histogram._bucket_counts[slot] += bucket_count
                histogram._count += snap["count"]
                histogram._sum += snap["sum"]
                histogram._min = min(histogram._min, snap["min"])
                histogram._max = max(histogram._max, snap["max"])
        windows = snapshot.get("windows", {})
        for name, snap in windows.get("counters", {}).items():
            self.windowed_counter(
                name,
                window_seconds=snap["window_seconds"],
                window_buckets=snap["window_buckets"],
            ).merge(snap)
        for name, snap in windows.get("histograms", {}).items():
            self.windowed_histogram(
                name,
                buckets=snap.get("bounds") or None,
                window_seconds=snap["window_seconds"],
                window_buckets=snap["window_buckets"],
            ).merge(snap)


class _NullMetric:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    sum = 0.0
    total = 0.0
    bounds: Tuple[float, ...] = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def rate(self) -> float:
        return 0.0

    def merge(self, snapshot: Dict[str, object]) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {}


_NULL_METRIC = _NullMetric()


class NullMetricsRegistry:
    """API-compatible registry that records nothing."""

    enabled = False

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> _NullMetric:
        return _NULL_METRIC

    def windowed_counter(self, name: str, **kwargs) -> _NullMetric:
        return _NULL_METRIC

    def windowed_histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **kwargs,
    ) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "windows": {"counters": {}, "histograms": {}},
        }

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return self.snapshot()

    def reset(self) -> None:
        pass

    def drain(self) -> Dict[str, Dict[str, object]]:
        return {}

    def merge(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        pass


#: The process-wide disabled registry (shared singleton).
NULL_METRICS = NullMetricsRegistry()

_metrics: object = NULL_METRICS


def get_metrics():
    """The process-wide metrics registry (``NULL_METRICS`` by default)."""
    return _metrics


def set_metrics(registry) -> object:
    """Install *registry* process-wide; returns the previous one.

    Pass ``None`` (or :data:`NULL_METRICS`) to disable metrics again.
    """
    global _metrics
    previous = _metrics
    _metrics = registry if registry is not None else NULL_METRICS
    return previous
