"""Prometheus text exposition (format 0.0.4) for registry snapshots.

:func:`render` turns a :meth:`MetricsRegistry.snapshot` dict into the
plain-text format every Prometheus-compatible scraper understands:

* counters → ``<name>_total`` with ``# TYPE … counter``;
* gauges → ``<name>`` with ``# TYPE … gauge``;
* cumulative histograms → ``<name>_bucket{le="…"}`` series (cumulative
  counts, closing ``le="+Inf"``) plus ``_sum``/``_count``;
* windowed counters → a ``<name>_rate`` gauge (events/s over the
  window) plus a ``<name>_window`` gauge of in-window events;
* windowed histograms → a Prometheus *summary*: ``{quantile="0.5|0.9|
  0.99"}`` series over the rolling window plus ``_sum``/``_count``.

Metric names arrive dotted (``serving.request.seconds``); dots and any
other illegal characters become underscores.  :func:`validate_exposition`
is the strict line-by-line checker the golden test and the CI
telemetry-smoke job run against a live scrape.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List

__all__ = ["render", "validate_exposition"]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABELS = re.compile(
    r'^\{([a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*)\}'
)


def _sanitize(name: str) -> str:
    """Dotted internal name → legal Prometheus metric name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    if float(bound).is_integer():
        return f"{bound:.1f}"
    return repr(float(bound))


def render(snapshot: Dict[str, Any]) -> str:
    """Registry snapshot → Prometheus text exposition (0.0.4)."""
    lines: List[str] = []

    for name in sorted(snapshot.get("counters", {})):
        value = snapshot["counters"][name]
        metric = _sanitize(name) + "_total"
        lines.append(f"# HELP {metric} Cumulative count of {name}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")

    for name in sorted(snapshot.get("gauges", {})):
        value = snapshot["gauges"][name]
        metric = _sanitize(name)
        lines.append(f"# HELP {metric} Current value of {name}.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    for name in sorted(snapshot.get("histograms", {})):
        snap = snapshot["histograms"][name]
        if not snap:
            continue
        metric = _sanitize(name)
        lines.append(f"# HELP {metric} Distribution of {name}.")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        bounds = list(snap.get("bounds", []))
        counts = list(snap.get("bucket_counts", []))
        for bound, bucket_count in zip(bounds, counts):
            cumulative += bucket_count
            lines.append(
                f'{metric}_bucket{{le="{_format_le(bound)}"}} '
                f"{cumulative}"
            )
        lines.append(
            f'{metric}_bucket{{le="+Inf"}} {snap.get("count", 0)}'
        )
        lines.append(f"{metric}_sum {_format_value(snap.get('sum', 0.0))}")
        lines.append(f"{metric}_count {snap.get('count', 0)}")

    windows = snapshot.get("windows", {})

    for name in sorted(windows.get("counters", {})):
        snap = windows["counters"][name]
        metric = _sanitize(name)
        window = snap.get("window_seconds", 0.0)
        lines.append(
            f"# HELP {metric}_rate Per-second rate of {name} over a "
            f"{_format_value(window)}s window."
        )
        lines.append(f"# TYPE {metric}_rate gauge")
        lines.append(
            f"{metric}_rate {_format_value(snap.get('rate', 0.0))}"
        )
        lines.append(
            f"# HELP {metric}_window Events of {name} inside the window."
        )
        lines.append(f"# TYPE {metric}_window gauge")
        lines.append(
            f"{metric}_window {_format_value(snap.get('total', 0.0))}"
        )

    for name in sorted(windows.get("histograms", {})):
        snap = windows["histograms"][name]
        metric = _sanitize(name) + "_window"
        window = snap.get("window_seconds", 0.0)
        lines.append(
            f"# HELP {metric} Rolling distribution of {name} over a "
            f"{_format_value(window)}s window."
        )
        lines.append(f"# TYPE {metric} summary")
        for label, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
            lines.append(
                f'{metric}{{quantile="{label}"}} '
                f"{_format_value(snap.get(key, 0.0))}"
            )
        lines.append(f"{metric}_sum {_format_value(snap.get('sum', 0.0))}")
        lines.append(f"{metric}_count {snap.get('count', 0)}")

    return "\n".join(lines) + "\n" if lines else ""


def validate_exposition(text: str) -> List[str]:
    """Strict line-by-line structural check; returns a list of problems.

    An empty return value means *text* is syntactically valid 0.0.4
    exposition: every sample line parses, every ``# TYPE`` precedes its
    samples, sample names agree with their declared family (modulo the
    ``_bucket``/``_sum``/``_count``/quantile suffixes), and histogram
    ``le`` series are cumulative and closed by ``+Inf``.
    """
    problems: List[str] = []
    declared: Dict[str, str] = {}
    bucket_state: Dict[str, float] = {}
    bucket_closed: Dict[str, bool] = {}

    def family_of(sample_name: str, kind: str) -> str:
        if kind == "counter" and sample_name.endswith("_total"):
            return sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                return sample_name[: -len(suffix)]
        return sample_name

    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {line_no}: malformed TYPE line")
                continue
            _, _, name, kind = parts
            if kind not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                problems.append(
                    f"line {line_no}: unknown metric type {kind!r}"
                )
                continue
            if name in declared:
                problems.append(
                    f"line {line_no}: duplicate TYPE for {name!r}"
                )
            declared[name] = kind
            continue
        if line.startswith("#"):
            continue

        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)", line)
        if not match:
            problems.append(f"line {line_no}: unparseable sample name")
            continue
        sample_name = match.group(1)
        rest = line[len(sample_name):]
        labels: Dict[str, str] = {}
        if rest.startswith("{"):
            label_match = _LABELS.match(rest)
            if not label_match:
                problems.append(
                    f"line {line_no}: malformed label set"
                )
                continue
            for pair in re.findall(
                r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"',
                label_match.group(1),
            ):
                labels[pair[0]] = pair[1]
            rest = rest[label_match.end():]
        fields = rest.split()
        if len(fields) not in (1, 2):
            problems.append(
                f"line {line_no}: expected value (and optional "
                "timestamp)"
            )
            continue
        raw_value = fields[0]
        if raw_value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(raw_value)
            except ValueError:
                problems.append(
                    f"line {line_no}: non-numeric value {raw_value!r}"
                )
                continue

        # Family / type agreement.
        owner = None
        for name, kind in declared.items():
            if kind == "histogram" and sample_name in (
                name + "_bucket",
                name + "_sum",
                name + "_count",
            ):
                owner = (name, kind)
                break
            if kind == "summary" and sample_name in (
                name,
                name + "_sum",
                name + "_count",
            ):
                owner = (name, kind)
                break
            if kind in ("counter", "gauge", "untyped") and (
                sample_name == name
            ):
                owner = (name, kind)
                break
        if owner is None:
            problems.append(
                f"line {line_no}: sample {sample_name!r} has no "
                "preceding TYPE declaration"
            )
            continue
        name, kind = owner
        if kind == "histogram" and sample_name == name + "_bucket":
            le = labels.get("le")
            if le is None:
                problems.append(
                    f"line {line_no}: histogram bucket without le label"
                )
                continue
            bound = float("inf") if le == "+Inf" else float(le)
            count = float(raw_value)
            previous = bucket_state.get(name)
            if previous is not None and count < previous:
                problems.append(
                    f"line {line_no}: non-cumulative bucket counts for "
                    f"{name!r}"
                )
            bucket_state[name] = count
            if le == "+Inf":
                bucket_closed[name] = True
            elif math.isinf(bound):
                bucket_closed[name] = True
        if kind == "summary" and sample_name == name:
            if "quantile" not in labels:
                problems.append(
                    f"line {line_no}: summary sample without quantile "
                    "label"
                )

    for name, kind in declared.items():
        if kind == "histogram" and name in bucket_state:
            if not bucket_closed.get(name):
                problems.append(
                    f"histogram {name!r} has no le=\"+Inf\" bucket"
                )
        if not _NAME_OK.match(name):
            problems.append(f"illegal metric name {name!r}")
    return problems
