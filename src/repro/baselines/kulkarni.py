"""Kulkarni-et-al-style collective disambiguation (Section 3.2).

Three configurations, mirroring Table 3.2:

* **Kul s** — bag-of-words similarity only: IDF-weighted cosine between the
  document context and the entity's keyword set.  Unlike AIDA's sim-k, the
  entity context is a bag of *words*, not phrases, and there is no partial
  phrase matching — the difference the paper credits for sim-k's edge.
* **Kul sp** — linear combination of the prior and Kul s.
* **Kul CI** — joint inference over sum of mention scores plus pairwise
  Milne–Witten coherence.  The original relaxes an ILP; we use the
  hill-climbing variant the paper also names, with random restarts, which
  has the same objective and comparable behaviour at our scale.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, List, Mapping, Optional, Sequence

from repro.kb.knowledge_base import KnowledgeBase
from repro.relatedness.base import EntityRelatedness
from repro.relatedness.milne_witten import MilneWittenRelatedness
from repro.similarity.context import DocumentContext
from repro.types import (
    DisambiguationResult,
    Document,
    EntityId,
    MentionAssignment,
    OUT_OF_KB,
)
from repro.utils.rng import SeededRng
from repro.weights.model import WeightModel


class KulkarniMode(enum.Enum):
    """Which Kulkarni configuration to run (s / sp / CI)."""
    SIMILARITY = "s"
    SIMILARITY_PRIOR = "sp"
    COLLECTIVE = "ci"


class KulkarniDisambiguator:
    """Collective-inference baseline with token-level similarity."""

    def __init__(
        self,
        kb: KnowledgeBase,
        mode: KulkarniMode = KulkarniMode.COLLECTIVE,
        relatedness: Optional[EntityRelatedness] = None,
        prior_mix: float = 0.5,
        coherence_weight: float = 0.8,
        restarts: int = 3,
        iterations: int = 120,
        seed: int = 21,
    ):
        self.kb = kb
        self.mode = mode
        self.prior_mix = prior_mix
        self.coherence_weight = coherence_weight
        self.restarts = restarts
        self.iterations = iterations
        self.seed = seed
        self.relatedness = (
            relatedness
            if relatedness is not None
            else MilneWittenRelatedness(kb.links, max(kb.entity_count, 2))
        )
        self._weights = WeightModel(kb.keyphrases, kb.links)
        self._entity_vectors: Dict[EntityId, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Token-level similarity (Kul s)
    # ------------------------------------------------------------------
    def _entity_vector(self, entity_id: EntityId) -> Dict[str, float]:
        cached = self._entity_vectors.get(entity_id)
        if cached is None:
            cached = {}
            for word, count in self.kb.keyphrases.keyword_counts(
                entity_id
            ).items():
                idf = self._weights.idf_word(word)
                if idf > 0.0:
                    cached[word] = count * idf
            self._entity_vectors[entity_id] = cached
        return cached

    def _similarity(
        self, context: DocumentContext, entity_id: EntityId
    ) -> float:
        vector = self._entity_vector(entity_id)
        if not vector:
            return 0.0
        doc_counts = context.term_counts()
        dot = sum(
            weight * doc_counts.get(word, 0)
            for word, weight in vector.items()
        )
        if dot == 0.0:
            return 0.0
        norm_e = math.sqrt(sum(w * w for w in vector.values()))
        norm_d = math.sqrt(sum(c * c for c in doc_counts.values()))
        if norm_e == 0.0 or norm_d == 0.0:
            return 0.0
        return dot / (norm_e * norm_d)

    # ------------------------------------------------------------------
    # Disambiguation
    # ------------------------------------------------------------------
    def disambiguate(
        self,
        document: Document,
        restrict_to: Optional[Sequence[int]] = None,
        fixed: Optional[Mapping[int, EntityId]] = None,
    ) -> DisambiguationResult:
        """Disambiguate under the configured Kulkarni mode."""
        fixed = dict(fixed) if fixed else {}
        indices = (
            sorted(set(restrict_to))
            if restrict_to is not None
            else list(range(len(document.mentions)))
        )
        mention_scores: Dict[int, Dict[EntityId, float]] = {}
        for index in indices:
            mention = document.mentions[index]
            if index in fixed:
                mention_scores[index] = {fixed[index]: 1.0}
                continue
            pool = self.kb.candidates(mention.surface)
            if not pool:
                mention_scores[index] = {}
                continue
            context = DocumentContext(document, exclude_mention=mention)
            sims = {eid: self._similarity(context, eid) for eid in pool}
            max_sim = max(sims.values()) if sims else 0.0
            if max_sim > 0.0:
                sims = {eid: s / max_sim for eid, s in sims.items()}
            if self.mode is KulkarniMode.SIMILARITY:
                mention_scores[index] = sims
            else:
                mention_scores[index] = {
                    eid: self.prior_mix
                    * self.kb.prior(mention.surface, eid)
                    + (1.0 - self.prior_mix) * sims[eid]
                    for eid in pool
                }
        if self.mode is KulkarniMode.COLLECTIVE:
            assignment = self._collective(mention_scores)
        else:
            assignment = {
                index: max(sorted(scores), key=lambda e: scores[e])
                for index, scores in mention_scores.items()
                if scores
            }
        assignments: List[MentionAssignment] = []
        for index in indices:
            mention = document.mentions[index]
            scores = mention_scores.get(index, {})
            chosen = assignment.get(index)
            if chosen is None:
                assignments.append(
                    MentionAssignment(
                        mention=mention, entity=OUT_OF_KB, score=0.0
                    )
                )
                continue
            assignments.append(
                MentionAssignment(
                    mention=mention,
                    entity=chosen,
                    score=scores.get(chosen, 0.0),
                    candidate_scores=scores,
                )
            )
        return DisambiguationResult(
            doc_id=document.doc_id, assignments=assignments
        )

    # ------------------------------------------------------------------
    # Collective inference by hill climbing with restarts
    # ------------------------------------------------------------------
    def _collective(
        self, mention_scores: Mapping[int, Dict[EntityId, float]]
    ) -> Dict[int, EntityId]:
        slots = [index for index in sorted(mention_scores)
                 if mention_scores[index]]
        if not slots:
            return {}
        rng = SeededRng(self.seed)
        best_assignment: Dict[int, EntityId] = {}
        best_score = float("-inf")
        for restart in range(self.restarts):
            current = self._initial_assignment(
                slots, mention_scores, rng, greedy=restart == 0
            )
            current_score = self._objective(current, mention_scores)
            improved = True
            rounds = 0
            while improved and rounds < self.iterations:
                improved = False
                rounds += 1
                for index in slots:
                    for candidate in sorted(mention_scores[index]):
                        if candidate == current[index]:
                            continue
                        previous = current[index]
                        current[index] = candidate
                        score = self._objective(current, mention_scores)
                        if score > current_score:
                            current_score = score
                            improved = True
                        else:
                            current[index] = previous
            if current_score > best_score:
                best_score = current_score
                best_assignment = dict(current)
        return best_assignment

    def _initial_assignment(
        self,
        slots: Sequence[int],
        mention_scores: Mapping[int, Dict[EntityId, float]],
        rng: SeededRng,
        greedy: bool,
    ) -> Dict[int, EntityId]:
        assignment: Dict[int, EntityId] = {}
        for index in slots:
            scores = mention_scores[index]
            if greedy:
                assignment[index] = max(
                    sorted(scores), key=lambda e: scores[e]
                )
            else:
                assignment[index] = rng.choice(sorted(scores))
        return assignment

    def _objective(
        self,
        assignment: Mapping[int, EntityId],
        mention_scores: Mapping[int, Dict[EntityId, float]],
    ) -> float:
        local = sum(
            mention_scores[index].get(entity, 0.0)
            for index, entity in assignment.items()
        )
        chosen = sorted(set(assignment.values()))
        coherence = 0.0
        for i, a in enumerate(chosen):
            for b in chosen[i + 1 :]:
                coherence += self.relatedness.relatedness(a, b)
        return local + self.coherence_weight * coherence
