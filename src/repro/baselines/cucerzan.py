"""Cucerzan-style disambiguation (Cucerzan 2007; Section 2.2.2).

Each mention is disambiguated *separately* against an expanded document
vector: the document's content words plus the category names of all other
mentions' candidate entities — "preferring entities that agree with other
candidates' categories" without knowing the correct ones yet.  This
simulates joint disambiguation but, as the paper notes, is not true joint
inference; errors arise when wrong candidates' categories dominate.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.kb.knowledge_base import KnowledgeBase
from repro.similarity.context import DocumentContext
from repro.types import (
    DisambiguationResult,
    Document,
    EntityId,
    MentionAssignment,
    OUT_OF_KB,
)
from repro.utils.text import phrase_tokens


class CucerzanDisambiguator:
    """Per-mention argmax over category-expanded context overlap."""

    def __init__(self, kb: KnowledgeBase, category_weight: float = 0.5):
        self.kb = kb
        self.category_weight = category_weight
        self._entity_vectors: Dict[EntityId, Dict[str, float]] = {}
        self._category_words: Dict[EntityId, Set[str]] = {}

    # ------------------------------------------------------------------
    # Entity representations
    # ------------------------------------------------------------------
    def _categories_of(self, entity_id: EntityId) -> Set[str]:
        cached = self._category_words.get(entity_id)
        if cached is None:
            cached = set()
            for category in self.kb.triples.objects(entity_id, "category"):
                cached.update(phrase_tokens(category))
            self._category_words[entity_id] = cached
        return cached

    def _entity_vector(self, entity_id: EntityId) -> Dict[str, float]:
        cached = self._entity_vectors.get(entity_id)
        if cached is None:
            cached = {}
            for phrase in self.kb.keyphrases.keyphrases(entity_id):
                for word in phrase:
                    cached[word] = cached.get(word, 0.0) + 1.0
            for word in self._categories_of(entity_id):
                cached[word] = cached.get(word, 0.0) + 1.0
            self._entity_vectors[entity_id] = cached
        return cached

    # ------------------------------------------------------------------
    # Disambiguation
    # ------------------------------------------------------------------
    def disambiguate(
        self,
        document: Document,
        restrict_to: Optional[Sequence[int]] = None,
        fixed: Optional[Mapping[int, EntityId]] = None,
    ) -> DisambiguationResult:
        """Per-mention disambiguation against the expanded document vector."""
        fixed = dict(fixed) if fixed else {}
        indices = (
            sorted(set(restrict_to))
            if restrict_to is not None
            else list(range(len(document.mentions)))
        )
        candidates = {
            index: self.kb.candidates(document.mentions[index].surface)
            for index in indices
        }
        # The expanded document vector: words of the text plus category
        # words of every candidate of every mention.
        doc_vector: Dict[str, float] = {}
        context = DocumentContext(document)
        for word, count in context.term_counts().items():
            doc_vector[word] = doc_vector.get(word, 0.0) + count
        for index in indices:
            for entity_id in candidates[index]:
                for word in self._categories_of(entity_id):
                    doc_vector[word] = (
                        doc_vector.get(word, 0.0) + self.category_weight
                    )
        assignments: List[MentionAssignment] = []
        for index in indices:
            mention = document.mentions[index]
            if index in fixed:
                assignments.append(
                    MentionAssignment(
                        mention=mention, entity=fixed[index], score=1.0
                    )
                )
                continue
            pool = candidates[index]
            if not pool:
                assignments.append(
                    MentionAssignment(
                        mention=mention, entity=OUT_OF_KB, score=0.0
                    )
                )
                continue
            scores = {
                entity_id: self._overlap(doc_vector, entity_id)
                for entity_id in pool
            }
            best = max(sorted(scores), key=lambda e: scores[e])
            assignments.append(
                MentionAssignment(
                    mention=mention,
                    entity=best,
                    score=scores[best],
                    candidate_scores=scores,
                )
            )
        return DisambiguationResult(
            doc_id=document.doc_id, assignments=assignments
        )

    def _overlap(
        self, doc_vector: Mapping[str, float], entity_id: EntityId
    ) -> float:
        vector = self._entity_vector(entity_id)
        return sum(
            weight * doc_vector.get(word, 0.0)
            for word, weight in vector.items()
        )
