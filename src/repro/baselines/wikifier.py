"""Illinois-Wikifier-style disambiguation (Ratinov et al. 2011).

Two-step, one-by-one method: first each mention is ranked independently by
prior + token cosine similarity; then a second pass re-scores with the
average relatedness (inlink Jaccard) to the *first-pass winners* of the
other mentions.  The final score of the chosen candidate also serves as the
"linker score" used to decide unlinkable (out-of-KB) mentions by
thresholding — the mechanism Table 5.1/5.3 compares against.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

from repro.kb.knowledge_base import KnowledgeBase
from repro.relatedness.base import EntityRelatedness
from repro.relatedness.jaccard import InlinkJaccardRelatedness
from repro.similarity.context import DocumentContext
from repro.types import (
    DisambiguationResult,
    Document,
    EntityId,
    MentionAssignment,
    OUT_OF_KB,
)
from repro.weights.model import WeightModel


class WikifierDisambiguator:
    """Ranker (prior + cosine) with a relatedness re-scoring pass."""

    def __init__(
        self,
        kb: KnowledgeBase,
        relatedness: Optional[EntityRelatedness] = None,
        prior_weight: float = 0.4,
        sim_weight: float = 0.4,
        coherence_weight: float = 0.2,
    ):
        self.kb = kb
        self.prior_weight = prior_weight
        self.sim_weight = sim_weight
        self.coherence_weight = coherence_weight
        self.relatedness = (
            relatedness
            if relatedness is not None
            else InlinkJaccardRelatedness(kb.links)
        )
        self._weights = WeightModel(kb.keyphrases, kb.links)
        self._entity_vectors: Dict[EntityId, Dict[str, float]] = {}

    def _entity_vector(self, entity_id: EntityId) -> Dict[str, float]:
        cached = self._entity_vectors.get(entity_id)
        if cached is None:
            cached = {}
            for word, count in self.kb.keyphrases.keyword_counts(
                entity_id
            ).items():
                idf = self._weights.idf_word(word)
                if idf > 0.0:
                    cached[word] = count * idf
            self._entity_vectors[entity_id] = cached
        return cached

    def _cosine(self, context: DocumentContext, entity_id: EntityId) -> float:
        vector = self._entity_vector(entity_id)
        doc_counts = context.term_counts()
        dot = sum(
            weight * doc_counts.get(word, 0)
            for word, weight in vector.items()
        )
        if dot == 0.0:
            return 0.0
        norm_e = math.sqrt(sum(w * w for w in vector.values()))
        norm_d = math.sqrt(sum(c * c for c in doc_counts.values()))
        if norm_e == 0.0 or norm_d == 0.0:
            return 0.0
        return dot / (norm_e * norm_d)

    def disambiguate(
        self,
        document: Document,
        restrict_to: Optional[Sequence[int]] = None,
        fixed: Optional[Mapping[int, EntityId]] = None,
    ) -> DisambiguationResult:
        """Two-pass ranker + relatedness re-scoring disambiguation."""
        fixed = dict(fixed) if fixed else {}
        indices = (
            sorted(set(restrict_to))
            if restrict_to is not None
            else list(range(len(document.mentions)))
        )
        local_scores: Dict[int, Dict[EntityId, float]] = {}
        first_pass: Dict[int, EntityId] = {}
        for index in indices:
            mention = document.mentions[index]
            if index in fixed:
                local_scores[index] = {fixed[index]: 1.0}
                first_pass[index] = fixed[index]
                continue
            pool = self.kb.candidates(mention.surface)
            if not pool:
                local_scores[index] = {}
                continue
            context = DocumentContext(document, exclude_mention=mention)
            sims = {eid: self._cosine(context, eid) for eid in pool}
            max_sim = max(sims.values())
            if max_sim > 0.0:
                sims = {eid: s / max_sim for eid, s in sims.items()}
            scores = {
                eid: self.prior_weight * self.kb.prior(mention.surface, eid)
                + self.sim_weight * sims[eid]
                for eid in pool
            }
            local_scores[index] = scores
            first_pass[index] = max(sorted(scores), key=lambda e: scores[e])
        # Second pass: re-score with relatedness to other winners.
        assignments: List[MentionAssignment] = []
        for index in indices:
            mention = document.mentions[index]
            scores = local_scores.get(index, {})
            if not scores:
                assignments.append(
                    MentionAssignment(
                        mention=mention, entity=OUT_OF_KB, score=0.0
                    )
                )
                continue
            others = [
                winner
                for other, winner in first_pass.items()
                if other != index
            ]
            final: Dict[EntityId, float] = {}
            for eid, base in scores.items():
                coherence = 0.0
                if others:
                    coherence = sum(
                        self.relatedness.relatedness(eid, other)
                        for other in others
                    ) / len(others)
                final[eid] = base + self.coherence_weight * coherence
            best = max(sorted(final), key=lambda e: final[e])
            assignments.append(
                MentionAssignment(
                    mention=mention,
                    entity=best,
                    score=final[best],
                    candidate_scores=final,
                )
            )
        return DisambiguationResult(
            doc_id=document.doc_id, assignments=assignments
        )

    def linker_score(self, assignment: MentionAssignment) -> float:
        """The scalar thresholded to declare a mention unlinkable: the
        winner's score margin over the runner-up plus its absolute score."""
        scores = sorted(assignment.candidate_scores.values(), reverse=True)
        if not scores:
            return 0.0
        margin = scores[0] - scores[1] if len(scores) > 1 else scores[0]
        return scores[0] + margin
