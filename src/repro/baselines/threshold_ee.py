"""Threshold-based out-of-KB handling (the state-of-the-art treatment).

Prior work discards a mention's best entity when its score falls below a
tuned threshold, declaring the mention unlinkable (Section 5.1.1).  This
wrapper applies that rule on top of any pipeline: a scoring function maps
each assignment to a scalar, and assignments scoring below the threshold
are relabeled OUT_OF_KB.

``tune_threshold`` grid-searches the threshold maximizing EE F1 on a
training corpus — the procedure the paper uses on its withheld day — and,
as the paper observes, the tuned value tends not to generalize.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.confidence.normalization import normalization_confidence
from repro.eval.ee_measures import evaluate_emerging
from repro.types import (
    AnnotatedDocument,
    DisambiguationResult,
    Document,
    EntityId,
    MentionAssignment,
    OUT_OF_KB,
)

#: Maps one assignment to the scalar the threshold is applied to.
ScoreFn = Callable[[MentionAssignment], float]


def normalized_score(assignment: MentionAssignment) -> float:
    """Default scoring: the normalized share of the chosen candidate."""
    return normalization_confidence(assignment)


class ThresholdEeWrapper:
    """Relabels low-scoring assignments as out-of-KB."""

    def __init__(
        self,
        pipeline,
        threshold: float,
        score_fn: Optional[ScoreFn] = None,
    ):
        self.pipeline = pipeline
        self.threshold = threshold
        self.score_fn = score_fn if score_fn is not None else normalized_score

    def disambiguate(self, document: Document, **kwargs) -> DisambiguationResult:
        """Disambiguate, then relabel low-scoring assignments as out-of-KB."""
        result = self.pipeline.disambiguate(document, **kwargs)
        relabeled: List[MentionAssignment] = []
        for assignment in result.assignments:
            if (
                not assignment.is_out_of_kb
                and self.score_fn(assignment) < self.threshold
            ):
                assignment = MentionAssignment(
                    mention=assignment.mention,
                    entity=OUT_OF_KB,
                    score=assignment.score,
                    confidence=assignment.confidence,
                    candidate_scores=assignment.candidate_scores,
                )
            relabeled.append(assignment)
        return DisambiguationResult(
            doc_id=result.doc_id, assignments=relabeled
        )


def tune_threshold(
    pipeline,
    training_docs: Sequence[AnnotatedDocument],
    score_fn: Optional[ScoreFn] = None,
    grid: Optional[Sequence[float]] = None,
) -> float:
    """Grid-search the threshold maximizing EE F1 on training documents."""
    score_fn = score_fn if score_fn is not None else normalized_score
    grid = (
        list(grid)
        if grid is not None
        else [round(0.05 * step, 2) for step in range(0, 20)]
    )
    base_results = [
        pipeline.disambiguate(doc.document) for doc in training_docs
    ]
    gold_maps = [(doc.doc_id, doc.gold_map()) for doc in training_docs]
    best_threshold = grid[0]
    best_f1 = -1.0
    for threshold in grid:
        predicted_maps = []
        for result in base_results:
            relabeled = {}
            for assignment in result.assignments:
                entity: EntityId = assignment.entity
                if (
                    not assignment.is_out_of_kb
                    and score_fn(assignment) < threshold
                ):
                    entity = OUT_OF_KB
                relabeled[assignment.mention] = entity
            predicted_maps.append(relabeled)
        outcome = evaluate_emerging(gold_maps, predicted_maps)
        if outcome.f1 > best_f1:
            best_f1 = outcome.f1
            best_threshold = threshold
    return best_threshold
