"""Most-frequent-sense baseline: map every mention to the candidate with
the highest popularity prior (Section 3.1's "popularity-based prior")."""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.kb.knowledge_base import KnowledgeBase
from repro.types import (
    DisambiguationResult,
    Document,
    EntityId,
    MentionAssignment,
    OUT_OF_KB,
)


class PriorOnlyDisambiguator:
    """Chooses argmax prior per mention; OUT_OF_KB when no candidates."""

    def __init__(self, kb: KnowledgeBase):
        self.kb = kb

    def disambiguate(
        self,
        document: Document,
        restrict_to: Optional[Sequence[int]] = None,
        fixed: Optional[Mapping[int, EntityId]] = None,
    ) -> DisambiguationResult:
        """Argmax-prior disambiguation of the document."""
        fixed = dict(fixed) if fixed else {}
        indices = (
            sorted(set(restrict_to))
            if restrict_to is not None
            else range(len(document.mentions))
        )
        assignments: List[MentionAssignment] = []
        for index in indices:
            mention = document.mentions[index]
            if index in fixed:
                assignments.append(
                    MentionAssignment(
                        mention=mention, entity=fixed[index], score=1.0
                    )
                )
                continue
            distribution = self.kb.prior_distribution(mention.surface)
            if not distribution:
                assignments.append(
                    MentionAssignment(
                        mention=mention, entity=OUT_OF_KB, score=0.0
                    )
                )
                continue
            best = max(sorted(distribution), key=lambda e: distribution[e])
            assignments.append(
                MentionAssignment(
                    mention=mention,
                    entity=best,
                    score=distribution[best],
                    candidate_scores=dict(distribution),
                )
            )
        return DisambiguationResult(
            doc_id=document.doc_id, assignments=assignments
        )
