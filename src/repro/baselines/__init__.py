"""Re-implementations of the methods AIDA is compared against.

The paper re-implemented its competitors (Section 3.6.1); we do the same,
over the identical KB interfaces:

* :class:`PriorOnlyDisambiguator` — most-frequent-sense popularity prior.
* :class:`CucerzanDisambiguator` — independent per-mention disambiguation
  with category-expanded context vectors (Cucerzan 2007).
* :class:`KulkarniDisambiguator` — token-overlap similarity (Kul s), with
  prior (Kul sp) and with pairwise Milne–Witten coherence solved by
  hill-climbing (Kul CI) (Kulkarni et al. 2009).
* :class:`TagmeDisambiguator` — prior × relatedness voting (Ferragina &
  Scaiella 2012).
* :class:`WikifierDisambiguator` — ranker + linker-score method in the
  style of the Illinois Wikifier (Ratinov et al. 2011).
* :class:`ThresholdEeWrapper` — the thresholding treatment of out-of-KB
  mentions all these baselines use (Section 5.2).
"""

from repro.baselines.prior_only import PriorOnlyDisambiguator
from repro.baselines.cucerzan import CucerzanDisambiguator
from repro.baselines.kulkarni import KulkarniDisambiguator, KulkarniMode
from repro.baselines.tagme import TagmeDisambiguator
from repro.baselines.wikifier import WikifierDisambiguator
from repro.baselines.threshold_ee import ThresholdEeWrapper

__all__ = [
    "PriorOnlyDisambiguator",
    "CucerzanDisambiguator",
    "KulkarniDisambiguator",
    "KulkarniMode",
    "TagmeDisambiguator",
    "WikifierDisambiguator",
    "ThresholdEeWrapper",
]
