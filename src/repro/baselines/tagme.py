"""TagMe-style light-weight disambiguation (Ferragina & Scaiella 2012).

TagMe combines only the prior with the collective relatedness of all
candidate entities: every other mention's candidates *vote* for a
candidate, each vote being the voter's relatedness weighted by the voter's
own prior, averaged per mention.  No context-word similarity is used, which
limits the method to mention-dense short texts — exactly its published
profile.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.kb.knowledge_base import KnowledgeBase
from repro.relatedness.base import EntityRelatedness
from repro.relatedness.milne_witten import MilneWittenRelatedness
from repro.types import (
    DisambiguationResult,
    Document,
    EntityId,
    MentionAssignment,
    OUT_OF_KB,
)


class TagmeDisambiguator:
    """Prior + relatedness-voting disambiguation."""

    def __init__(
        self,
        kb: KnowledgeBase,
        relatedness: Optional[EntityRelatedness] = None,
        prior_weight: float = 0.5,
    ):
        self.kb = kb
        self.prior_weight = prior_weight
        self.relatedness = (
            relatedness
            if relatedness is not None
            else MilneWittenRelatedness(kb.links, max(kb.entity_count, 2))
        )

    def disambiguate(
        self,
        document: Document,
        restrict_to: Optional[Sequence[int]] = None,
        fixed: Optional[Mapping[int, EntityId]] = None,
    ) -> DisambiguationResult:
        """Prior + relatedness-voting disambiguation of the document."""
        fixed = dict(fixed) if fixed else {}
        indices = (
            sorted(set(restrict_to))
            if restrict_to is not None
            else list(range(len(document.mentions)))
        )
        candidates: Dict[int, List[EntityId]] = {}
        priors: Dict[int, Dict[EntityId, float]] = {}
        for index in indices:
            mention = document.mentions[index]
            if index in fixed:
                candidates[index] = [fixed[index]]
                priors[index] = {fixed[index]: 1.0}
                continue
            pool = self.kb.candidates(mention.surface)
            candidates[index] = pool
            priors[index] = {
                eid: self.kb.prior(mention.surface, eid) for eid in pool
            }
        self.relatedness.prepare(
            sorted({eid for pool in candidates.values() for eid in pool})
        )
        assignments: List[MentionAssignment] = []
        for index in indices:
            mention = document.mentions[index]
            pool = candidates[index]
            if not pool:
                assignments.append(
                    MentionAssignment(
                        mention=mention, entity=OUT_OF_KB, score=0.0
                    )
                )
                continue
            scores = {
                eid: self._score(eid, index, candidates, priors)
                for eid in pool
            }
            best = max(sorted(scores), key=lambda e: scores[e])
            assignments.append(
                MentionAssignment(
                    mention=mention,
                    entity=best,
                    score=scores[best],
                    candidate_scores=scores,
                )
            )
        return DisambiguationResult(
            doc_id=document.doc_id, assignments=assignments
        )

    def _score(
        self,
        entity_id: EntityId,
        mention_index: int,
        candidates: Mapping[int, List[EntityId]],
        priors: Mapping[int, Dict[EntityId, float]],
    ) -> float:
        votes = 0.0
        voters = 0
        for other_index, pool in candidates.items():
            if other_index == mention_index or not pool:
                continue
            vote = sum(
                self.relatedness.relatedness(entity_id, voter)
                * priors[other_index].get(voter, 0.0)
                for voter in pool
            ) / len(pool)
            votes += vote
            voters += 1
        vote_score = votes / voters if voters else 0.0
        prior = priors[mention_index].get(entity_id, 0.0)
        return (
            self.prior_weight * prior
            + (1.0 - self.prior_weight) * vote_score
        )
