"""Dynamic keyphrase harvesting from news text (Section 5.5.1).

For a mention occurrence, the harvesting context is the window of sentences
around it (the paper uses 5 preceding and 5 following).  Keyphrase
candidates are extracted from the window with the part-of-speech patterns
of Appendix A (proper-noun runs and nominal technical terms) and counted.

Two consumers:

* the *name model* — phrases co-occurring with any mention of an ambiguous
  name across a news chunk, the "global model" of Algorithm 2;
* *entity enrichment* — phrases around occurrences that a confidence-aware
  NED run resolved with very high confidence, added to the in-KB entity's
  keyphrase model (the "Theresa May" scenario).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.kb.dictionary import match_key
from repro.kb.keyphrases import Phrase
from repro.text.chunker import KeyphraseChunker
from repro.text.sentences import sentence_containing, split_sentences
from repro.types import Document, Mention


@dataclass
class NameModel:
    """Harvested global model of a name: phrase counts and support."""

    name: str
    phrase_counts: Dict[Phrase, int] = field(default_factory=dict)
    #: Number of mention occurrences the phrases were harvested around.
    occurrence_count: int = 0

    def add(self, phrases: Iterable[Phrase]) -> None:
        """Record one occurrence and its phrases in the name model."""
        self.occurrence_count += 1
        for phrase in phrases:
            self.phrase_counts[phrase] = (
                self.phrase_counts.get(phrase, 0) + 1
            )


class KeyphraseHarvester:
    """Extracts keyphrase candidates around mentions in documents."""

    def __init__(
        self,
        sentence_window: int = 5,
        chunker: KeyphraseChunker = None,
    ):
        if sentence_window < 0:
            raise ValueError("sentence_window must be >= 0")
        self.sentence_window = sentence_window
        self._chunker = chunker if chunker is not None else KeyphraseChunker()
        #: (doc_id, mention span) -> extracted phrases; harvesting sweeps
        #: the same stream documents for many names/days, so this pays off.
        self._cache: Dict[Tuple[str, int, int], List[Phrase]] = {}

    # ------------------------------------------------------------------
    # Context extraction
    # ------------------------------------------------------------------
    def context_phrases(
        self, document: Document, mention: Mention
    ) -> List[Phrase]:
        """Keyphrase candidates from the sentence window around a mention,
        excluding the mention's own tokens."""
        cache_key = (document.doc_id, mention.start, mention.end)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        tokens = list(document.tokens)
        spans = split_sentences(tokens)
        own_span = sentence_containing(spans, mention.start)
        own_index = spans.index(own_span) if own_span in spans else 0
        first = max(0, own_index - self.sentence_window)
        last = min(len(spans) - 1, own_index + self.sentence_window)
        window_start = spans[first][0]
        window_end = spans[last][1]
        window = tokens[window_start:window_end]
        mention_tokens = {
            tok.lower() for tok in tokens[mention.start : mention.end]
        }
        phrases = self._chunker.extract(window)
        result = [
            phrase
            for phrase in phrases
            if not set(phrase) <= mention_tokens
        ]
        self._cache[cache_key] = result
        return result

    # ------------------------------------------------------------------
    # The global name model (input to Algorithm 2)
    # ------------------------------------------------------------------
    def harvest_name_model(
        self, documents: Sequence[Document], name: str
    ) -> NameModel:
        """Phrases co-occurring with mentions of *name* across a chunk."""
        model = NameModel(name=name)
        key = match_key(name)
        for document in documents:
            for mention in document.mentions:
                if match_key(mention.surface) != key:
                    continue
                model.add(self.context_phrases(document, mention))
        return model

    # ------------------------------------------------------------------
    # Entity enrichment from high-confidence occurrences
    # ------------------------------------------------------------------
    def harvest_entity_phrases(
        self,
        occurrences: Sequence[Tuple[Document, Mention]],
    ) -> Dict[Phrase, int]:
        """Aggregate phrase counts around a set of mention occurrences
        (all resolved to the same entity by the caller)."""
        counts: Dict[Phrase, int] = {}
        for document, mention in occurrences:
            for phrase in self.context_phrases(document, mention):
                counts[phrase] = counts.get(phrase, 0) + 1
        return counts
