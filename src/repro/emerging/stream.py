"""News-stream windowing utilities.

Chapter 5 harvests keyphrases from *chunks* of news defined by publication
time: the documents of the preceding days for an emerging-entity model, a
longer window for enriching existing entities, and a support filter
("mentioned in at least 10 distinct articles over the last 3 days") for
selecting mentions the method has data for.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.kb.dictionary import match_key
from repro.types import Document


def docs_in_window(
    documents: Sequence[Document], first_day: int, last_day: int
) -> List[Document]:
    """Documents with first_day <= timestamp <= last_day (inclusive)."""
    return [
        doc
        for doc in documents
        if first_day <= doc.timestamp <= last_day
    ]


def document_mentions_name(document: Document, name: str) -> bool:
    """Whether any mention in the document matches *name* under the
    dictionary's case rules."""
    key = match_key(name)
    return any(
        match_key(mention.surface) == key for mention in document.mentions
    )


def name_document_support(
    documents: Iterable[Document], name: str
) -> int:
    """Number of distinct documents whose mentions include *name*."""
    return sum(
        1 for doc in documents if document_mentions_name(doc, name)
    )
