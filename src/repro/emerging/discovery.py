"""NED with emerging entities (Algorithm 3 and Section 5.6).

The pipeline makes emerging entities first-class citizens: for every
mention, an explicit placeholder candidate is added to the disambiguation,
modeled by keyphrases harvested from the recent news stream via model
difference (Algorithm 2).  Optionally, a first NED pass with confidence
assessment pre-resolves mentions below/above confidence thresholds
(t_low → EE, t_high → fixed), and in-KB entities are enriched with
keyphrases harvested around their high-confidence news occurrences.

Two standard configurations mirror the paper's methods: ``EEsim``
(similarity-only second pass) and ``EEcoh`` (graph coherence with KORE
relatedness — link-based coherence cannot cover placeholders, which have
no Wikipedia links).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.confidence.combined import ConfAssessor
from repro.core.config import AidaConfig, PriorMode
from repro.core.pipeline import AidaDisambiguator
from repro.emerging.ee_model import (
    EmergingEntityModel,
    build_ee_model,
    is_ee_placeholder,
    register_ee_models,
)
from repro.emerging.harvest import KeyphraseHarvester
from repro.emerging.stream import docs_in_window
from repro.errors import ConfigurationError
from repro.kb.keyphrases import KeyphraseStore
from repro.kb.knowledge_base import KnowledgeBase
from repro.relatedness.kore import KoreRelatedness
from repro.types import (
    DisambiguationResult,
    Document,
    EntityId,
    MentionAssignment,
    OUT_OF_KB,
)
from repro.weights.model import WeightModel


@dataclass
class EeConfig:
    """Knobs of the NED-EE pipeline."""

    #: Days of news to harvest an EE model from (the paper's best: 2).
    harvest_days: int = 2
    #: Days of news to harvest in-KB enrichment from (the paper: 30).
    entity_harvest_days: int = 30
    #: Confidence thresholds t_low / t_high of Algorithm 3; the defaults
    #: (0, 1) skip the first NED stage and rely on the EE representation.
    confidence_low: float = 0.0
    confidence_high: float = 1.0
    #: Damping factor applied to graph edges of EE placeholders (the γ
    #: hyper-parameter of Section 5.6, tuned on withheld data).
    ee_edge_factor: float = 0.6
    #: Cap on keyphrases per entity (paper: 3000).
    max_keyphrases: int = 3000
    #: Whether the second pass uses graph coherence (EEcoh) or similarity
    #: only (EEsim).
    use_coherence: bool = False
    #: Whether in-KB entities are enriched from the news stream.
    enrich_existing: bool = True
    #: Confidence required to harvest an occurrence for an in-KB entity.
    #: The paper uses 0.95 on its confidence scale; the perturbation-based
    #: CONF of this implementation saturates lower for ambiguous mentions
    #: (norm share + stability over few candidates), so the equivalent
    #: operating point sits at ~0.7 here.  Combined with the ambiguity and
    #: raw-evidence filters below, harvested occurrences stay precise.
    enrichment_confidence: float = 0.7
    #: Minimum *raw* keyphrase-similarity score an occurrence must reach
    #: to be harvested.  A mention whose only candidate matched nothing is
    #: trivially "confident" yet evidence-free — and may actually refer to
    #: an emerging entity sharing the name; harvesting it would let in-KB
    #: entities absorb the emerging entities' vocabulary.
    enrichment_min_score: float = 1.5
    #: Only harvest from mentions with at least two candidates: the
    #: perturbation-based confidence is vacuous for unambiguous names.
    enrichment_requires_ambiguity: bool = True
    #: Multiplier on harvested phrase counts when they enter the entity
    #: model.  The high-precision harvest filter passes only a fraction of
    #: the true occurrences, so raw harvested counts systematically
    #: undercount relative to the global name model; the boost restores
    #: the scale so Algorithm 2's subtraction can cancel established
    #: vocabulary.
    enrichment_count_boost: float = 3.0
    #: Entity-perturbation rounds of the confidence assessor.
    confidence_rounds: int = 8
    #: Sentence window (each side) for keyphrase harvesting.  The paper
    #: uses ±5 sentences on full news articles; the synthetic corpora put
    #: one mention per sentence, so ±1 covers the equivalent share of a
    #: document without sweeping in the context of unrelated co-mentions.
    harvest_sentence_window: int = 1
    seed: int = 77

    def __post_init__(self) -> None:
        if self.harvest_days < 1:
            raise ConfigurationError("harvest_days must be >= 1")
        if not 0.0 <= self.confidence_low <= self.confidence_high <= 1.0:
            raise ConfigurationError(
                "need 0 <= confidence_low <= confidence_high <= 1"
            )

    @property
    def runs_first_stage(self) -> bool:
        """Whether the threshold pre-resolution stage is active."""
        return self.confidence_low > 0.0 or self.confidence_high < 1.0


class EmergingEntityPipeline:
    """Discovers emerging entities against a timestamped news stream."""

    def __init__(
        self,
        kb: KnowledgeBase,
        news_documents: Sequence[Document],
        config: Optional[EeConfig] = None,
        harvester: Optional[KeyphraseHarvester] = None,
        enriched_stores: Optional[Dict[int, KeyphraseStore]] = None,
    ):
        self.kb = kb
        self.config = config if config is not None else EeConfig()
        self.news = sorted(news_documents, key=lambda d: (d.timestamp, d.doc_id))
        self.harvester = (
            harvester
            if harvester is not None
            else KeyphraseHarvester(
                sentence_window=self.config.harvest_sentence_window
            )
        )
        #: day -> enriched store.  Pass a shared dict to reuse the (costly)
        #: enrichment across pipelines differing only in γ/coherence.
        self._enriched_stores: Dict[int, KeyphraseStore] = (
            enriched_stores if enriched_stores is not None else {}
        )
        self._ee_model_cache: Dict[Tuple[str, int], EmergingEntityModel] = {}

    # ==================================================================
    # In-KB enrichment (Section 5.5.1)
    # ==================================================================
    def enriched_store_for(self, day: int) -> KeyphraseStore:
        """The KB keyphrase store enriched from news before *day*."""
        if not self.config.enrich_existing:
            return self.kb.keyphrases
        cached = self._enriched_stores.get(day)
        if cached is not None:
            return cached
        store = self.kb.keyphrases.copy()
        window = docs_in_window(
            self.news, day - self.config.entity_harvest_days, day - 1
        )
        occurrences = self._high_confidence_occurrences(window)
        boost = self.config.enrichment_count_boost
        for entity_id, occs in sorted(occurrences.items()):
            counts = self.harvester.harvest_entity_phrases(occs)
            for phrase, count in sorted(counts.items()):
                store.add_keyphrase(
                    entity_id, phrase, max(1, round(count * boost))
                )
        self._enriched_stores[day] = store
        return store

    def _high_confidence_occurrences(
        self, window: Sequence[Document]
    ) -> Dict[EntityId, List[Tuple[Document, object]]]:
        """Mentions in the window resolved to in-KB entities with very
        high confidence by the base NED."""
        # Raw (unnormalized) similarity scores so the evidence floor below
        # is meaningful.
        config = AidaConfig(
            prior_mode=PriorMode.NEVER,
            use_coherence=False,
            normalize_similarity=False,
        )
        base = AidaDisambiguator(self.kb, config=config)
        assessor = ConfAssessor(
            base, rounds=self.config.confidence_rounds, seed=self.config.seed
        )
        occurrences: Dict[EntityId, List[Tuple[Document, object]]] = {}
        for document in window:
            result = assessor.disambiguate_with_confidence(document)
            for assignment in result.assignments:
                if assignment.is_out_of_kb:
                    continue
                confidence = assignment.confidence or 0.0
                if confidence < self.config.enrichment_confidence:
                    continue
                if assignment.score < self.config.enrichment_min_score:
                    continue
                if (
                    self.config.enrichment_requires_ambiguity
                    and len(assignment.candidate_scores) < 2
                ):
                    continue
                occurrences.setdefault(assignment.entity, []).append(
                    (document, assignment.mention)
                )
        return occurrences

    # ==================================================================
    # EE placeholder construction (Algorithm 2 wiring)
    # ==================================================================
    def ee_model_for(
        self, name: str, day: int, store: KeyphraseStore
    ) -> EmergingEntityModel:
        """The (cached) placeholder model of a name at a given day."""
        key = (name, day)
        cached = self._ee_model_cache.get(key)
        if cached is not None:
            return cached
        chunk_docs = docs_in_window(
            self.news, day - self.config.harvest_days, day - 1
        )
        name_model = self.harvester.harvest_name_model(chunk_docs, name)
        candidates = self.kb.candidates(name)
        model = build_ee_model(
            name_model,
            candidates,
            store,
            kb_collection_size=self.kb.entity_count,
            news_chunk_size=max(len(chunk_docs), 1),
        )
        self._ee_model_cache[key] = model
        return model

    # ==================================================================
    # Algorithm 3
    # ==================================================================
    def disambiguate(self, document: Document) -> DisambiguationResult:
        """Run Algorithm 3 on the document against the news stream."""
        day = document.timestamp
        enriched = self.enriched_store_for(day)
        pre_ee, pre_fixed = self._first_stage(document, enriched)

        mentions = list(document.mentions)
        undecided = [
            index
            for index in range(len(mentions))
            if index not in pre_ee and index not in pre_fixed
        ]
        models: List[EmergingEntityModel] = []
        extra: Dict[int, List[EntityId]] = {}
        for index in undecided:
            name = mentions[index].surface
            model = self.ee_model_for(name, day, enriched)
            if model.is_empty:
                continue
            if model.entity_id not in {m.entity_id for m in models}:
                models.append(model)
            extra.setdefault(index, []).append(model.entity_id)

        layered = register_ee_models(
            enriched, models, max_keyphrases=self.config.max_keyphrases
        )
        weights = WeightModel(
            layered,
            self.kb.links,
            collection_size=self.kb.entity_count + len(models),
        )
        aida = self._second_stage_pipeline(layered, weights)
        factors = {
            model.entity_id: self.config.ee_edge_factor for model in models
        }
        result = aida.disambiguate(
            document,
            restrict_to=undecided + sorted(pre_fixed),
            fixed=pre_fixed,
            extra_candidates=extra,
            entity_edge_factor=factors,
        )
        return self._finalize(document, result, pre_ee)

    def _first_stage(
        self, document: Document, enriched: KeyphraseStore
    ) -> Tuple[Dict[int, bool], Dict[int, EntityId]]:
        """Threshold pre-resolution (steps 1–4 of Algorithm 3)."""
        pre_ee: Dict[int, bool] = {}
        pre_fixed: Dict[int, EntityId] = {}
        if not self.config.runs_first_stage:
            return pre_ee, pre_fixed
        weights = WeightModel(
            enriched, self.kb.links, collection_size=self.kb.entity_count
        )
        base = AidaDisambiguator(
            self.kb,
            config=AidaConfig.robust_prior_sim(),
            keyphrase_store=enriched,
            weight_model=weights,
        )
        assessor = ConfAssessor(
            base, rounds=self.config.confidence_rounds, seed=self.config.seed
        )
        result = assessor.disambiguate_with_confidence(document)
        for index, assignment in enumerate(result.assignments):
            confidence = assignment.confidence or 0.0
            if assignment.is_out_of_kb:
                continue  # no candidates: handled downstream trivially
            if confidence <= self.config.confidence_low:
                pre_ee[index] = True
            elif confidence >= self.config.confidence_high:
                pre_fixed[index] = assignment.entity
        return pre_ee, pre_fixed

    def _second_stage_pipeline(
        self, layered: KeyphraseStore, weights: WeightModel
    ) -> AidaDisambiguator:
        config = AidaConfig(
            prior_mode=PriorMode.NEVER,
            use_coherence=self.config.use_coherence,
            use_coherence_test=False,
            max_keyphrases=self.config.max_keyphrases,
            # Raw similarity: the α-scaled magnitude of the harvested EE
            # model must survive into the edge weights for the γ balance
            # to act as in Section 5.6.
            normalize_similarity=False,
        )
        relatedness = None
        if self.config.use_coherence:
            relatedness = KoreRelatedness(layered, weights)
        return AidaDisambiguator(
            self.kb,
            relatedness=relatedness,
            config=config,
            keyphrase_store=layered,
            weight_model=weights,
        )

    def _finalize(
        self,
        document: Document,
        result: DisambiguationResult,
        pre_ee: Mapping[int, bool],
    ) -> DisambiguationResult:
        """Translate placeholder wins into OUT_OF_KB and re-attach
        pre-resolved EE mentions."""
        mentions = list(document.mentions)
        by_mention = {a.mention: a for a in result.assignments}
        assignments: List[MentionAssignment] = []
        for index, mention in enumerate(mentions):
            if index in pre_ee:
                assignments.append(
                    MentionAssignment(
                        mention=mention, entity=OUT_OF_KB, score=0.0
                    )
                )
                continue
            assignment = by_mention.get(mention)
            if assignment is None:
                assignments.append(
                    MentionAssignment(
                        mention=mention, entity=OUT_OF_KB, score=0.0
                    )
                )
                continue
            if is_ee_placeholder(assignment.entity):
                assignment = MentionAssignment(
                    mention=mention,
                    entity=OUT_OF_KB,
                    score=assignment.score,
                    confidence=assignment.confidence,
                    candidate_scores=assignment.candidate_scores,
                )
            assignments.append(assignment)
        return DisambiguationResult(
            doc_id=document.doc_id, assignments=assignments
        )
