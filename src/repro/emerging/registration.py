"""Registering discovered emerging entities (the KB life-cycle step).

Section 5.6 / Figure 5.2: once mentions have been identified as emerging,
"the mentions that are mapped to the same EE can be grouped together, and
this group is added — together with its keyphrase representation — to the
KB for the further processing in the KB maintenance life-cycle".  The TAC
KBP evolution the paper recounts (Section 2.2.4) adds the same
requirement: cluster out-of-KB mentions so each cluster is one new thing.

This module implements that step:

* :class:`EmergingEntityGrouper` clusters EE-labeled mentions — same name
  (under the dictionary's case rules) and sufficiently similar harvested
  context; two unrelated emerging "Prisms" stay apart;
* :class:`EmergingEntityRegistrar` turns mature groups (enough distinct
  supporting documents) into provisional KB entities on a *copy* of the
  knowledge base, with the group's aggregated keyphrases, so subsequent
  disambiguation runs can link to them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.emerging.harvest import KeyphraseHarvester
from repro.kb.dictionary import match_key
from repro.kb.entity import Entity
from repro.kb.keyphrases import Phrase
from repro.kb.knowledge_base import KnowledgeBase
from repro.types import Document, EntityId, Mention

#: Prefix of provisionally registered (not yet canonicalized) entities.
PROVISIONAL_PREFIX = "NEW:"


def _words_of(phrases: Dict[Phrase, int]) -> set:
    return {word for phrase in phrases for word in phrase}


def _jaccard(a: Dict[Phrase, int], b: Dict[Phrase, int]) -> float:
    """Word-level Jaccard of two phrase profiles.

    Exact phrases rarely repeat across short news snippets, but an
    entity's theme *words* do — word granularity is what separates two
    unrelated emerging "Prisms" while merging occurrences of one.
    """
    words_a, words_b = _words_of(a), _words_of(b)
    if not words_a or not words_b:
        return 0.0
    return len(words_a & words_b) / len(words_a | words_b)


@dataclass
class EmergingGroup:
    """A cluster of EE mentions believed to denote one new entity."""

    name: str
    phrase_counts: Dict[Phrase, int] = field(default_factory=dict)
    occurrences: List[Tuple[str, Mention]] = field(default_factory=list)

    @property
    def support(self) -> int:
        """Number of distinct supporting documents."""
        return len({doc_id for doc_id, _mention in self.occurrences})

    def absorb(
        self, doc_id: str, mention: Mention, phrases: Sequence[Phrase]
    ) -> None:
        """Add one occurrence and its phrases to the group."""
        self.occurrences.append((doc_id, mention))
        for phrase in phrases:
            self.phrase_counts[phrase] = (
                self.phrase_counts.get(phrase, 0) + 1
            )

    def top_phrases(self, limit: int = 20) -> List[Tuple[Phrase, int]]:
        """The most frequent group phrases with counts."""
        ordered = sorted(
            self.phrase_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ordered[:limit]


class EmergingEntityGrouper:
    """Clusters EE mentions by name and context similarity."""

    def __init__(
        self,
        harvester: Optional[KeyphraseHarvester] = None,
        similarity_threshold: float = 0.1,
    ):
        if not 0.0 <= similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in [0, 1]")
        self.similarity_threshold = similarity_threshold
        self._harvester = (
            harvester
            if harvester is not None
            else KeyphraseHarvester(sentence_window=1)
        )
        self._groups: Dict[str, List[EmergingGroup]] = {}

    def add_occurrence(self, document: Document, mention: Mention) -> None:
        """Assign one EE-labeled mention to a group (possibly a new one).

        Grouping rule: mentions join the existing same-name group whose
        phrase profile overlaps theirs best (Jaccard over phrases), if the
        overlap reaches the threshold; otherwise they found a new group —
        the hurricane "Sandy" and a new singer "Sandy" end up separate.
        """
        phrases = self._harvester.context_phrases(document, mention)
        counts = {phrase: 1 for phrase in phrases}
        key = match_key(mention.surface)
        groups = self._groups.setdefault(key, [])
        best: Optional[EmergingGroup] = None
        best_similarity = 0.0
        for group in groups:
            similarity = _jaccard(counts, group.phrase_counts)
            if similarity > best_similarity:
                best = group
                best_similarity = similarity
        if best is None or best_similarity < self.similarity_threshold:
            best = EmergingGroup(name=mention.surface)
            groups.append(best)
        best.absorb(document.doc_id, mention, phrases)

    def groups(self, min_support: int = 1) -> List[EmergingGroup]:
        """All groups with at least *min_support* distinct documents."""
        result = [
            group
            for groups in self._groups.values()
            for group in groups
            if group.support >= min_support
        ]
        result.sort(key=lambda g: (-g.support, g.name))
        return result


class EmergingEntityRegistrar:
    """Promotes mature EE groups to provisional KB entities."""

    def __init__(
        self,
        kb: KnowledgeBase,
        min_support: int = 3,
        max_keyphrases: int = 50,
    ):
        if min_support < 1:
            raise ValueError("min_support must be >= 1")
        self.kb = kb
        self.min_support = min_support
        self.max_keyphrases = max_keyphrases
        self._counter = 0

    def register(
        self, grouper: EmergingEntityGrouper
    ) -> Tuple[KnowledgeBase, List[EntityId]]:
        """Register all mature groups on a KB view; returns it plus the
        new provisional entity ids.

        The source KB is never mutated: entities, dictionary additions
        and keyphrases land on a decoupled view, mirroring how a KB
        maintenance pipeline stages new entries before human
        canonicalization.
        """
        view = self.kb.editable_copy()
        store = view.keyphrases
        registered: List[EntityId] = []
        for group in grouper.groups(min_support=self.min_support):
            self._counter += 1
            entity_id = (
                f"{PROVISIONAL_PREFIX}{self._counter:04d}:"
                + group.name.replace(" ", "_")
            )
            view.add_entity(
                Entity(
                    entity_id=entity_id,
                    canonical_name=group.name,
                    types=(),
                )
            )
            for phrase, count in group.top_phrases(self.max_keyphrases):
                store.add_keyphrase(entity_id, phrase, count)
            registered.append(entity_id)
        return view, registered


def is_provisional(entity_id: EntityId) -> bool:
    """Whether the id denotes a provisionally registered entity."""
    return entity_id.startswith(PROVISIONAL_PREFIX)
