"""Explicit emerging-entity model by model difference (Algorithm 2).

For an ambiguous name *n*, the *global* model (phrases harvested around all
news occurrences of n) covers every entity using the name — in-KB and
emerging alike.  Since the in-KB candidates' keyphrase models are known,
subtracting them isolates the emerging entity::

    d(k) = α · ( b(k) − c(k) )

where b is the global phrase count, c the total in-KB candidate count of
the phrase, and α = |KB collection| / |news chunk| balances the differing
collection sizes.  Phrases with non-positive adjusted count are dropped;
what remains is the placeholder entity's keyphrase model, weighted like any
other entity's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.emerging.harvest import NameModel
from repro.kb.keyphrases import KeyphraseStore, Phrase
from repro.types import EntityId

#: Prefix of placeholder entity ids (one per ambiguous name).
EE_PREFIX = "--EE--:"


def ee_entity_id(name: str) -> EntityId:
    """The placeholder entity id for mentions of *name*."""
    return EE_PREFIX + name


def is_ee_placeholder(entity_id: EntityId) -> bool:
    """Whether the id denotes an EE placeholder."""
    return entity_id.startswith(EE_PREFIX)


@dataclass
class EmergingEntityModel:
    """The placeholder entity for one ambiguous name."""

    name: str
    entity_id: EntityId
    phrase_counts: Dict[Phrase, int] = field(default_factory=dict)
    occurrence_count: int = 0

    @property
    def is_empty(self) -> bool:
        """True when the model difference left no phrases."""
        return not self.phrase_counts

    def top_phrases(self, limit: int) -> List[Tuple[Phrase, int]]:
        """The highest-count placeholder phrases."""
        ordered = sorted(
            self.phrase_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ordered[:limit]


def build_ee_model(
    name_model: NameModel,
    candidates: Sequence[EntityId],
    store: KeyphraseStore,
    kb_collection_size: int,
    news_chunk_size: int,
) -> EmergingEntityModel:
    """Run the model difference of Algorithm 2.

    Parameters
    ----------
    name_model:
        The harvested global model of the name.
    candidates:
        The in-KB candidate entities for the name.
    store:
        The keyphrase store holding the candidates' models (possibly
        already enriched with dynamically harvested phrases).
    kb_collection_size / news_chunk_size:
        Collection sizes for the balance factor α.
    """
    alpha = kb_collection_size / max(news_chunk_size, 1)
    model = EmergingEntityModel(
        name=name_model.name, entity_id=ee_entity_id(name_model.name)
    )
    # Total in-KB count of each phrase across all candidates.
    kb_counts: Dict[Phrase, int] = {}
    for candidate in candidates:
        for phrase, count in store.keyphrase_counts(candidate).items():
            kb_counts[phrase] = kb_counts.get(phrase, 0) + count
    for phrase, global_count in sorted(name_model.phrase_counts.items()):
        adjusted = alpha * (global_count - kb_counts.get(phrase, 0))
        if adjusted > 0.0:
            model.phrase_counts[phrase] = max(1, round(adjusted))
    # The EE occurrence count: global occurrences minus the mass the
    # in-KB candidates account for, balanced the same way.
    candidate_occurrences = len(candidates)
    adjusted_occ = alpha * (
        name_model.occurrence_count - candidate_occurrences
    )
    model.occurrence_count = max(1, round(adjusted_occ)) if (
        adjusted_occ > 0
    ) else 1
    return model


def register_ee_models(
    store: KeyphraseStore,
    models: Sequence[EmergingEntityModel],
    max_keyphrases: int = 0,
) -> KeyphraseStore:
    """Layer placeholder models onto a *copy* of the store.

    ``max_keyphrases`` (0 = unlimited) caps phrases per placeholder so
    very chatty names do not dominate the long tail.
    """
    layered = store.copy()
    for model in models:
        layered.ensure_entity(model.entity_id)
        items = (
            model.top_phrases(max_keyphrases)
            if max_keyphrases
            else sorted(model.phrase_counts.items())
        )
        for phrase, count in items:
            layered.add_keyphrase(model.entity_id, phrase, count)
    return layered
