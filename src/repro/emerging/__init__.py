"""Emerging-entity discovery (Chapter 5, NED-EE)."""

from repro.emerging.harvest import (
    KeyphraseHarvester,
    NameModel,
)
from repro.emerging.ee_model import EmergingEntityModel, build_ee_model
from repro.emerging.discovery import EeConfig, EmergingEntityPipeline
from repro.emerging.stream import (
    docs_in_window,
    name_document_support,
)
from repro.emerging.registration import (
    EmergingEntityGrouper,
    EmergingEntityRegistrar,
)

__all__ = [
    "EmergingEntityGrouper",
    "EmergingEntityRegistrar",
    "KeyphraseHarvester",
    "NameModel",
    "EmergingEntityModel",
    "build_ee_model",
    "EeConfig",
    "EmergingEntityPipeline",
    "docs_in_window",
    "name_document_support",
]
