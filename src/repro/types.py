"""Core value types shared across the library.

The paper's task definitions (Section 2.2.1) work with *documents* containing
*mentions* (surface forms recognized by NER), a knowledge base providing
*candidate entities* per mention, and *annotations* mapping each mention to
either an in-KB entity or the out-of-knowledge-base marker ``OOE``.

Everything here is a small immutable dataclass; the heavyweight state lives in
:mod:`repro.kb` and the algorithm packages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.timing import PipelineStats

#: Canonical identifier of an entity in the knowledge base.  Entity ids are
#: opaque strings such as ``"Bob_Dylan"``; uniqueness is enforced by the KB.
EntityId = str

#: Marker assigned to a mention whose true entity is not in the knowledge
#: base — the paper's out-of-KB entity "OOE" (Section 2.2.1), also called an
#: emerging entity "EE" in Chapter 5.
OUT_OF_KB: EntityId = "--OOE--"


def is_out_of_kb(entity_id: Optional[EntityId]) -> bool:
    """Return True if *entity_id* denotes the out-of-KB placeholder."""
    return entity_id == OUT_OF_KB


@dataclass(frozen=True)
class Mention:
    """A surface form in a document that potentially denotes a named entity.

    Offsets are token offsets into the owning document's token list: the
    mention covers ``tokens[start:end]``.  ``surface`` is the exact text of
    the mention as it appears (tokens joined by single spaces).
    """

    surface: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"mention span must be non-empty: [{self.start}, {self.end})"
            )

    @property
    def length(self) -> int:
        """Number of tokens the mention covers."""
        return self.end - self.start


@dataclass(frozen=True)
class Annotation:
    """A mention together with its (gold or predicted) entity."""

    mention: Mention
    entity: EntityId

    @property
    def is_out_of_kb(self) -> bool:
        """Whether this refers to the out-of-KB placeholder."""
        return is_out_of_kb(self.entity)


@dataclass(frozen=True)
class Document:
    """An input text: a token sequence plus recognized mentions.

    ``doc_id`` identifies the document within its corpus.  ``timestamp`` is an
    integer day index used by the news-stream experiments of Chapter 5 (0 for
    corpora without temporal structure).
    """

    doc_id: str
    tokens: Tuple[str, ...]
    mentions: Tuple[Mention, ...] = ()
    timestamp: int = 0

    @property
    def text(self) -> str:
        """The document text (tokens joined by spaces)."""
        return " ".join(self.tokens)

    def mention_surface(self, mention: Mention) -> str:
        """Return the surface string of *mention* recomputed from tokens."""
        return " ".join(self.tokens[mention.start : mention.end])

    def with_mentions(self, mentions: Sequence[Mention]) -> "Document":
        """A copy of this document with the given mentions attached."""
        return Document(
            doc_id=self.doc_id,
            tokens=self.tokens,
            mentions=tuple(mentions),
            timestamp=self.timestamp,
        )


@dataclass(frozen=True)
class AnnotatedDocument:
    """A document paired with gold-standard annotations for every mention."""

    document: Document
    gold: Tuple[Annotation, ...]

    @property
    def doc_id(self) -> str:
        """The underlying document id."""
        return self.document.doc_id

    def gold_map(self) -> Dict[Mention, EntityId]:
        """Gold entity per mention (unique mentions, as in Section 3.6.1)."""
        return {ann.mention: ann.entity for ann in self.gold}

    def in_kb_gold(self) -> List[Annotation]:
        """Gold annotations whose entity is registered in the KB."""
        return [ann for ann in self.gold if not ann.is_out_of_kb]

    def out_of_kb_gold(self) -> List[Annotation]:
        """Gold annotations referring to emerging / out-of-KB entities."""
        return [ann for ann in self.gold if ann.is_out_of_kb]


@dataclass
class MentionAssignment:
    """The result of disambiguating one mention.

    ``score`` is the method's raw score for the chosen entity; ``confidence``
    (if computed) is a normalized [0, 1] confidence as per Section 5.4.
    ``candidate_scores`` optionally records the raw score of every candidate,
    which the confidence assessors need.
    """

    mention: Mention
    entity: EntityId
    score: float = 0.0
    confidence: Optional[float] = None
    candidate_scores: Dict[EntityId, float] = field(default_factory=dict)

    @property
    def is_out_of_kb(self) -> bool:
        """Whether this refers to the out-of-KB placeholder."""
        return is_out_of_kb(self.entity)


@dataclass
class DisambiguationResult:
    """Disambiguation output for one document.

    ``stats`` carries per-stage timing and effort counters when the
    producing pipeline instruments its run (see
    :class:`repro.utils.timing.PipelineStats`); baselines may leave it
    unset.

    ``degradation_rung`` records which rung of the graceful-degradation
    ladder produced this result (see :mod:`repro.faults.resilient`);
    pipelines outside the robustness layer always report ``"full"``.
    ``attempts`` counts pipeline attempts including retries and degraded
    re-runs (1 when nothing went wrong).
    """

    doc_id: str
    assignments: List[MentionAssignment]
    stats: Optional[PipelineStats] = None
    degradation_rung: str = "full"
    attempts: int = 1

    def as_map(self) -> Dict[Mention, EntityId]:
        """Mention -> chosen entity mapping."""
        return {a.mention: a.entity for a in self.assignments}

    def assignment_for(self, mention: Mention) -> Optional[MentionAssignment]:
        """The assignment of *mention*, or None if absent."""
        for assignment in self.assignments:
            if assignment.mention == mention:
                return assignment
        return None

    @property
    def entities(self) -> List[EntityId]:
        """The chosen entities in mention order."""
        return [a.entity for a in self.assignments]
