"""Command-line interface.

Four subcommands covering the zero-to-disambiguation path:

* ``generate-kb`` — generate the synthetic world + encyclopedia and save
  the knowledge base as a TSV directory;
* ``disambiguate`` — recognize and disambiguate entities in a text against
  a saved knowledge base;
* ``relatedness`` — score entity pairs with a chosen relatedness measure;
* ``classify`` — coarse named-entity classification of a text's mentions.

Plus corpus tooling:

* ``corpus`` — generate an evaluation corpus (CoNLL / KORE50 / WP style)
  aligned with a generated KB (same seed) as JSON Lines;
* ``evaluate`` — run a pipeline variant over a saved corpus against a
  saved KB and print micro/macro accuracy.

And the online service:

* ``serve`` — long-lived disambiguation server with admission control,
  micro-batching and SLO-driven load shedding; HTTP JSON on a TCP port
  by default, or a stdin→stdout JSONL pump with ``--stdin``.

Examples::

    python -m repro generate-kb --out /tmp/kb --seed 7
    python -m repro disambiguate --kb /tmp/kb --text "Page played Kashmir"
    python -m repro relatedness --kb /tmp/kb --measure kore A_Id B_Id
    python -m repro classify --kb /tmp/kb --text "Page played Kashmir"
    python -m repro corpus --seed 7 --kind conll --scale 0.05 \
        --out /tmp/conll.jsonl
    python -m repro evaluate --kb /tmp/kb --corpus /tmp/conll.jsonl
    python -m repro serve --kb /tmp/kb --port 8400 --slo-ms 500
    python -m repro snapshot build --kb /tmp/kb --out /tmp/kb.snap
    python -m repro serve --snapshot /tmp/kb.snap --executor process
    python -m repro embeddings train --kb /tmp/kb --out /tmp/emb.npz
    python -m repro evaluate --kb /tmp/kb --corpus /tmp/conll.jsonl \
        --prerank-topk 8

The ``snapshot`` subcommand compiles a saved KB into a single mmap-able
image (see ``docs/snapshots.md``); ``--snapshot`` on evaluate/serve then
attaches workers to it by path with near-zero startup cost.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.core.config import (
    RELATEDNESS_BACKENDS,
    SIMILARITY_BACKENDS,
    AidaConfig,
)
from repro.errors import ConfigurationError
from repro.core.pipeline import AidaDisambiguator
from repro.datagen.wikipedia import build_world_kb
from repro.faults import (
    FaultInjector,
    RetryPolicy,
    RobustnessConfig,
    make_resilient,
    parse_fault_spec,
    set_injector,
)
from repro.datagen.world import World, WorldConfig
from repro.kb.io import load_knowledge_base, save_knowledge_base
from repro.ner.classifier import NamedEntityClassifier
from repro.obs import (
    MetricsRegistry,
    Tracer,
    configure_logging,
    get_metrics,
    get_tracer,
    set_metrics,
    set_tracer,
)
from repro.ner.recognizer import NamedEntityRecognizer
from repro.relatedness import (
    InlinkJaccardRelatedness,
    KoreRelatedness,
    MilneWittenRelatedness,
)
from repro.text.tokenizer import tokenize
from repro.types import Document
from repro.weights.model import WeightModel

AIDA_VARIANTS = {
    "full": AidaConfig.full,
    "sim": AidaConfig.sim_only,
    "prior": AidaConfig.prior_only,
    "r-prior-sim": AidaConfig.robust_prior_sim,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "AIDA/KORE/NED-EE reproduction — named entity discovery and "
            "disambiguation"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    gen = subparsers.add_parser(
        "generate-kb", help="generate a synthetic world and save its KB"
    )
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument(
        "--clusters", type=int, default=4, help="clusters per domain"
    )

    dis = subparsers.add_parser(
        "disambiguate", help="disambiguate entities in a text"
    )
    dis.add_argument("--kb", required=True, help="saved KB directory")
    dis.add_argument("--text", help="input text")
    dis.add_argument("--file", help="read the input text from a file")
    dis.add_argument(
        "--variant",
        choices=sorted(AIDA_VARIANTS),
        default="full",
        help="AIDA configuration",
    )
    _add_compiled_argument(dis)
    _add_relatedness_argument(dis)
    _add_prerank_arguments(dis)
    _add_obs_arguments(dis)
    _add_robustness_arguments(dis)

    rel = subparsers.add_parser(
        "relatedness", help="score the relatedness of entity pairs"
    )
    rel.add_argument("--kb", required=True)
    rel.add_argument(
        "--measure", "--relatedness",
        choices=(
            "mw", "kore", "jaccard", "kore_lsh_g", "kore_lsh_f",
            "embedding",
        ),
        default="kore",
        help="relatedness measure; the kore_lsh_* variants prepare the "
        "two-stage LSH over the listed entities and prune non-colliding "
        "pairs to 0; 'embedding' trains (or reuses) the joint embedding "
        "space and scores pairs by entity-vector cosine",
    )
    rel.add_argument(
        "entities", nargs="+", help="two or more entity ids (all pairs)"
    )
    _add_compiled_argument(rel)

    cls = subparsers.add_parser(
        "classify", help="coarse-type the mentions of a text"
    )
    cls.add_argument("--kb", required=True)
    cls.add_argument("--text", required=True)

    corpus = subparsers.add_parser(
        "corpus", help="generate an annotated evaluation corpus"
    )
    corpus.add_argument("--out", required=True, help="output JSONL file")
    corpus.add_argument("--seed", type=int, default=7)
    corpus.add_argument(
        "--clusters", type=int, default=4, help="clusters per domain "
        "(must match the generate-kb call for aligned entity ids)"
    )
    corpus.add_argument(
        "--kind", choices=("conll", "kore50", "wp"), default="conll"
    )
    corpus.add_argument(
        "--scale", type=float, default=0.05,
        help="CoNLL split scale (conll kind only)",
    )
    corpus.add_argument(
        "--split", choices=("train", "testa", "testb", "all"),
        default="testb", help="CoNLL split to write (conll kind only)",
    )

    evaluate = subparsers.add_parser(
        "evaluate", help="evaluate a pipeline on a saved corpus"
    )
    evaluate.add_argument(
        "--kb", help="saved KB directory (or use --snapshot)"
    )
    _add_snapshot_argument(evaluate)
    evaluate.add_argument("--corpus", required=True)
    evaluate.add_argument(
        "--variant", choices=sorted(AIDA_VARIANTS), default="full"
    )
    evaluate.add_argument(
        "--workers", type=int, default=1,
        help="fan documents out over this many workers (1 = serial)",
    )
    evaluate.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="worker pool kind for --workers > 1 (process workers "
        "each load their own KB copy)",
    )
    evaluate.add_argument(
        "--cache-relatedness", action="store_true",
        help="share a thread-safe relatedness LRU across documents "
        "and print its hit/miss statistics",
    )
    evaluate.add_argument(
        "--cache-size", type=int, default=0,
        help="LRU capacity for --cache-relatedness (0 = unbounded)",
    )
    _add_compiled_argument(evaluate)
    _add_relatedness_argument(evaluate)
    _add_prerank_arguments(evaluate)
    _add_obs_arguments(evaluate)
    _add_robustness_arguments(evaluate)

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived disambiguation service "
        "(admission control + micro-batching + load shedding)",
    )
    serve.add_argument(
        "--kb", help="saved KB directory (or use --snapshot)"
    )
    _add_snapshot_argument(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8400,
        help="TCP port for the HTTP front-end (0 = ephemeral)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64,
        help="bound on outstanding admitted requests; at the bound new "
        "requests are rejected with 429 (shedding by degradation rung "
        "starts earlier)",
    )
    serve.add_argument(
        "--slo-ms", type=float, default=1000.0,
        help="p99 latency objective driving the shed policy; also the "
        "default per-attempt soft deadline unless --deadline-ms is given",
    )
    serve.add_argument(
        "--batch-window-ms", type=float, default=25.0,
        help="micro-batch age trigger: a batch flushes when its oldest "
        "request has waited this long",
    )
    serve.add_argument(
        "--batch-max-docs", type=int, default=16,
        help="micro-batch size trigger",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="worker threads of the per-batch runner",
    )
    serve.add_argument(
        "--executor", choices=("serial", "thread", "process"),
        default="thread",
        help="batch executor; 'process' rebuilds the pipeline in each "
        "worker and routes the admitted rung through trace-context "
        "baggage",
    )
    serve.add_argument(
        "--variant", choices=sorted(AIDA_VARIANTS), default="full"
    )
    serve.add_argument(
        "--trace-export", metavar="FILE",
        help="spool sampled span trees to this JSONL file (one span per "
        "line, grouped by trace_id; feed it to 'repro obs report')",
    )
    serve.add_argument(
        "--trace-sample-rate", type=float, default=1.0, metavar="RATE",
        help="head-sampling rate in [0, 1] for healthy traces; "
        "SLO-breaching and erroring requests are always exported",
    )
    serve.add_argument(
        "--slo-objective", type=float, default=0.99, metavar="FRAC",
        help="good-request fraction the error budget is computed "
        "against (burn rate > 1 means the budget is being spent faster "
        "than it accrues)",
    )
    serve.add_argument(
        "--stdin", action="store_true",
        help="serve JSONL requests from stdin to stdout instead of "
        "listening on a TCP port; exits at EOF",
    )
    _add_compiled_argument(serve)
    _add_relatedness_argument(serve)
    _add_prerank_arguments(serve)
    _add_obs_arguments(serve)
    _add_robustness_arguments(serve)

    snap = subparsers.add_parser(
        "snapshot",
        help="build or inspect zero-copy mmap KB snapshot images",
    )
    snap_sub = snap.add_subparsers(dest="snapshot_command", required=True)
    snap_build = snap_sub.add_parser(
        "build",
        help="compile a saved KB directory into one mmap-able image "
        "(vocabulary, compiled models, dictionary, CSR link graph, "
        "keyphrases, LSH sketches)",
    )
    snap_build.add_argument("--kb", required=True, help="saved KB directory")
    snap_build.add_argument("--out", required=True, help="snapshot file")
    snap_build.add_argument(
        "--scheme", choices=("npmi", "idf"), default="npmi",
        help="keyword weight scheme baked into the compiled arrays "
        "(must match the pipeline config the snapshot will serve)",
    )
    snap_build.add_argument(
        "--max-keyphrases", type=int, default=0,
        help="per-entity keyphrase cap baked into the compiled arrays "
        "(0 = unlimited)",
    )
    snap_build.add_argument(
        "--backend", choices=("auto", "numpy", "python"), default="auto",
        help="compiled-scoring backend recorded in the manifest "
        "('auto' resolves at load time on each host)",
    )
    snap_build.add_argument(
        "--gearings", default="g,f", metavar="LIST",
        help="comma-separated LSH sketch tables to embed: g = "
        "recall-geared, f = fast (empty string = none)",
    )
    snap_build.add_argument(
        "--embeddings",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="train the joint word/entity embedding space and embed its "
        "matrices as snapshot sections, so pre-ranking and embedding "
        "backends need no per-worker training at load time",
    )
    snap_build.add_argument(
        "--embedding-dim", type=int, default=48, metavar="D",
        help="embedding dimensionality for --embeddings",
    )
    snap_build.add_argument(
        "--embedding-seed", type=int, default=13, metavar="SEED",
        help="training seed for --embeddings (same seed + KB -> "
        "byte-identical matrices)",
    )
    snap_inspect = snap_sub.add_parser(
        "inspect",
        help="verify every checksum and print the manifest + section "
        "layout as JSON",
    )
    snap_inspect.add_argument("path", help="snapshot file")

    emb = subparsers.add_parser(
        "embeddings",
        help="train or inspect the joint word/entity embedding model "
        "behind the dense pre-ranker and the embedding backends",
    )
    emb_sub = emb.add_subparsers(dest="embeddings_command", required=True)
    emb_train = emb_sub.add_parser(
        "train",
        help="train skip-gram-with-negative-sampling embeddings over a "
        "saved KB's keyphrases, names and link neighborhoods "
        "(deterministic: same KB + seed -> byte-identical matrices)",
    )
    emb_train.add_argument("--kb", required=True, help="saved KB directory")
    emb_train.add_argument(
        "--out", required=True, help="output model file (.npz)"
    )
    emb_train.add_argument("--dim", type=int, default=48)
    emb_train.add_argument("--window", type=int, default=4)
    emb_train.add_argument("--negatives", type=int, default=5)
    emb_train.add_argument("--epochs", type=int, default=3)
    emb_train.add_argument("--learning-rate", type=float, default=0.05)
    emb_train.add_argument("--batch-size", type=int, default=2048)
    emb_train.add_argument("--seed", type=int, default=13)
    emb_inspect = emb_sub.add_parser(
        "inspect",
        help="print a trained model's shape, matrix fingerprints and "
        "training provenance as JSON",
    )
    emb_inspect.add_argument("path", help="model file (.npz)")

    obs = subparsers.add_parser(
        "obs",
        help="telemetry analysis tools (trace reports)",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    report = obs_sub.add_parser(
        "report",
        help="aggregate exported trace files into a per-stage "
        "critical-path latency breakdown",
    )
    report.add_argument(
        "traces", nargs="+", metavar="FILE",
        help="span JSONL files (from 'serve --trace-export' or "
        "'--trace-out file.jsonl')",
    )
    report.add_argument(
        "--slo-ms", type=float, default=None, metavar="MS",
        help="also count traces whose root span exceeds this budget",
    )

    return parser


def _add_relatedness_argument(sub: argparse.ArgumentParser) -> None:
    """The coherence-backend selector (``AidaConfig.relatedness_backend``)."""
    sub.add_argument(
        "--relatedness",
        choices=RELATEDNESS_BACKENDS,
        default="mw",
        help="entity-entity coherence backend: Milne-Witten inlink "
        "overlap (default), exact KORE, KORE behind two-stage "
        "min-hash/LSH pruning in the recall-geared (kore_lsh_g) or "
        "speed-geared (kore_lsh_f) parameterization, or entity-vector "
        "cosine in the joint embedding space (embedding)",
    )


def _add_prerank_arguments(sub: argparse.ArgumentParser) -> None:
    """The dense pre-ranker / similarity-backend flags."""
    group = sub.add_argument_group("dense pre-ranking")
    group.add_argument(
        "--prerank-topk", type=int, default=None, metavar="K",
        help="truncate each mention's candidate pool to its top-K "
        "entities by embedding cosine before keyphrase scoring and "
        "coherence (prior-top and pinned candidates always survive); "
        "omit to disable — the pipeline is then bit-identical to the "
        "unpruned path",
    )
    group.add_argument(
        "--similarity-backend",
        choices=SIMILARITY_BACKENDS,
        default="keyphrase",
        help="mention-entity similarity backend: keyphrase cover "
        "matching (default) or context/entity cosine in the joint "
        "embedding space",
    )


def _apply_pipeline_flags(
    config: AidaConfig, args: argparse.Namespace
) -> AidaConfig:
    """Overlay the shared pipeline flags on a variant config.

    Re-validates after mutation (``__post_init__`` only saw the variant
    defaults) and turns a bad combination into a clean CLI error instead
    of a traceback.
    """
    config.use_compiled = args.compiled
    config.relatedness_backend = args.relatedness
    config.similarity_backend = args.similarity_backend
    config.prerank_topk = args.prerank_topk
    try:
        config.validate()
    except ConfigurationError as exc:
        raise SystemExit(f"error: {exc}")
    return config


def _add_snapshot_argument(sub: argparse.ArgumentParser) -> None:
    """The ``--snapshot`` image path (``repro snapshot build`` output)."""
    sub.add_argument(
        "--snapshot", metavar="FILE",
        help="serve models from this mmap snapshot image instead of "
        "loading --kb into memory; process workers attach to the image "
        "by path (near-zero startup, shared read-only pages)",
    )


def _add_compiled_argument(sub: argparse.ArgumentParser) -> None:
    """The ``--compiled/--no-compiled`` toggle (default: compiled on)."""
    sub.add_argument(
        "--compiled",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="use the compiled keyphrase scoring layer (interned-id "
        "entity models + posting-indexed contexts; score-equivalent to "
        "the reference scorers, falls back automatically on failure)",
    )


def _add_obs_arguments(sub: argparse.ArgumentParser) -> None:
    """Observability flags shared by ``disambiguate`` and ``evaluate``."""
    group = sub.add_argument_group("observability")
    group.add_argument(
        "--trace-out", metavar="FILE",
        help="record spans and write a trace file: Chrome trace_event "
        "JSON (open in chrome://tracing or Perfetto) unless FILE ends "
        "in .jsonl, which writes one span object per line",
    )
    group.add_argument(
        "--metrics-out", metavar="FILE",
        help="collect counters/gauges/histograms and write the registry "
        "snapshot as JSON",
    )
    group.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        help="configure repro.* structured logging on stderr at this "
        "level (debug emits one event per pipeline stage)",
    )
    group.add_argument(
        "--log-json", action="store_true",
        help="emit log records as JSON lines instead of key=value text",
    )


def _add_robustness_arguments(sub: argparse.ArgumentParser) -> None:
    """Robustness flags shared by ``disambiguate`` and ``evaluate``."""
    group = sub.add_argument_group("robustness")
    group.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry a document up to N extra times on transient "
        "failures (exponential backoff with seeded jitter)",
    )
    group.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="soft per-attempt deadline; checked cooperatively at "
        "pipeline stage boundaries and solver iterations",
    )
    group.add_argument(
        "--degrade", action="store_true",
        help="on failure, walk the degradation ladder (full joint AIDA "
        "-> coherence-off -> prior-only) instead of failing the document",
    )
    group.add_argument(
        "--inject", action="append", default=[], metavar="SPEC",
        help="chaos-inject faults: site[:rate[:kind[:max|ms]]] with "
        "sites kb.lookup, similarity, relatedness, solver.iteration, "
        "worker, snapshot.write and kinds transient, permanent, latency "
        "(repeatable)",
    )
    group.add_argument(
        "--inject-seed", type=int, default=0,
        help="seed of the fault injector's decision streams",
    )


def _robustness_config(
    args: argparse.Namespace,
) -> Optional[RobustnessConfig]:
    """The RobustnessConfig the flags describe, or None when inert."""
    config = RobustnessConfig(
        retries=args.retries,
        deadline_ms=args.deadline_ms,
        degrade=args.degrade,
        backoff=RetryPolicy(seed=args.inject_seed),
    )
    return None if config.inert else config


class _InjectorSession:
    """Install the chaos injector the ``--inject`` flags describe."""

    def __init__(self, args: argparse.Namespace):
        self.injector = None
        specs = [parse_fault_spec(text) for text in args.inject]
        if specs:
            self.injector = FaultInjector(specs, seed=args.inject_seed)
            self._previous = set_injector(self.injector)

    def finish(self) -> None:
        """Restore the previous injector and report what fired."""
        if self.injector is None:
            return
        set_injector(self._previous)
        for site, counts in self.injector.stats().items():
            print(
                f"chaos: {site}: {counts['injected']} faults "
                f"in {counts['calls']} calls"
            )


class _ObsSession:
    """Per-command observability: enable on entry, export on exit."""

    def __init__(self, args: argparse.Namespace):
        self.trace_out = getattr(args, "trace_out", None)
        self.metrics_out = getattr(args, "metrics_out", None)
        log_level = getattr(args, "log_level", None)
        log_json = getattr(args, "log_json", False)
        if log_level or log_json:
            configure_logging(log_level or "info", json=log_json)
        self._prev_tracer = None
        self._prev_metrics = None
        if self.trace_out:
            self._prev_tracer = set_tracer(Tracer())
        if self.metrics_out:
            self._prev_metrics = set_metrics(MetricsRegistry())

    def finish(self) -> None:
        """Write the requested artifacts and restore global state."""
        if self.trace_out:
            tracer = get_tracer()
            if self.trace_out.endswith(".jsonl"):
                count = tracer.export_jsonl(self.trace_out)
            else:
                count = tracer.export_chrome(self.trace_out) // 2
            print(f"wrote {count} spans to {self.trace_out}")
            set_tracer(self._prev_tracer)
        if self.metrics_out:
            snapshot = get_metrics().snapshot()
            with open(self.metrics_out, "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle, indent=2)
                handle.write("\n")
            print(f"wrote metrics to {self.metrics_out}")
            set_metrics(self._prev_metrics)


def _input_text(args: argparse.Namespace) -> str:
    if args.text:
        return args.text
    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            return handle.read()
    raise SystemExit("disambiguate requires --text or --file")


def _document(text: str, kb) -> Document:
    tokens = tuple(tokenize(text))
    recognizer = NamedEntityRecognizer(kb.dictionary)
    return recognizer.recognize(Document(doc_id="cli", tokens=tokens))


def cmd_generate_kb(args: argparse.Namespace) -> int:
    """Handle ``generate-kb``: build and save a synthetic KB."""
    world = World.generate(
        WorldConfig(seed=args.seed, clusters_per_domain=args.clusters)
    )
    kb, _wiki = build_world_kb(world, seed=args.seed + 94)
    save_knowledge_base(kb, args.out)
    stats = kb.describe()
    print(f"saved KB to {args.out}: {stats}")
    return 0


def cmd_disambiguate(args: argparse.Namespace) -> int:
    """Handle ``disambiguate``: NER + AIDA over the input text."""
    obs = _ObsSession(args)
    chaos = _InjectorSession(args)
    try:
        kb = load_knowledge_base(args.kb)
        document = _document(_input_text(args), kb)
        if not document.mentions:
            print("no entity mentions recognized")
            return 0
        config = _apply_pipeline_flags(AIDA_VARIANTS[args.variant](), args)
        aida = make_resilient(
            AidaDisambiguator(kb, config=config),
            _robustness_config(args),
        )
        result = aida.disambiguate(document)
        for assignment in result.assignments:
            target = (
                "<out of KB>"
                if assignment.is_out_of_kb
                else f"{assignment.entity} "
                f"({kb.entity(assignment.entity).canonical_name})"
            )
            print(f"{assignment.mention.surface!r} -> {target}")
        if result.degradation_rung != "full" or result.attempts > 1:
            print(
                f"robustness: rung={result.degradation_rung} "
                f"attempts={result.attempts}"
            )
        return 0
    finally:
        chaos.finish()
        obs.finish()


def cmd_relatedness(args: argparse.Namespace) -> int:
    """Handle ``relatedness``: score all entity pairs."""
    kb = load_knowledge_base(args.kb)
    missing = [eid for eid in args.entities if eid not in kb]
    if missing:
        print(f"unknown entities: {', '.join(missing)}", file=sys.stderr)
        return 1
    if args.measure == "mw":
        measure = MilneWittenRelatedness(kb.links, max(kb.entity_count, 2))
    elif args.measure == "jaccard":
        measure = InlinkJaccardRelatedness(kb.links)
    elif args.measure == "embedding":
        from repro.embeddings import EmbeddingRelatedness, shared_model

        measure = EmbeddingRelatedness(shared_model(kb))
    else:
        weights = WeightModel(kb.keyphrases, kb.links)
        compiled = None
        if args.compiled:
            from repro.compiled import CompiledKeyphrases

            compiled = CompiledKeyphrases(kb.keyphrases, weights)
        measure = KoreRelatedness(
            kb.keyphrases, weights, compiled=compiled
        )
        if args.measure != "kore":
            from repro.relatedness import KoreLshRelatedness, LshSettings

            if args.measure == "kore_lsh_g":
                settings, name = LshSettings.recall_geared(), "KORE_LSH-G"
            else:
                settings, name = LshSettings.fast(), "KORE_LSH-F"
            measure = KoreLshRelatedness(
                kb.keyphrases, measure, settings, name=name
            )
            if compiled is not None:
                measure.attach_compiled(compiled)
            # The listed entities are the task's candidate set: pairs
            # sharing no stage-two bucket print as 0.0000 uncomputed.
            measure.prepare(args.entities)
    entities: List[str] = args.entities
    for i, a in enumerate(entities):
        for b in entities[i + 1 :]:
            print(f"{a}  {b}  {measure.relatedness(a, b):.4f}")
    return 0


def cmd_classify(args: argparse.Namespace) -> int:
    """Handle ``classify``: coarse-type the recognized mentions."""
    kb = load_knowledge_base(args.kb)
    document = _document(args.text, kb)
    classifier = NamedEntityClassifier(kb)
    for mention, label in classifier.classify_document(document):
        print(f"{mention.surface!r} -> {label or '<unknown>'}")
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    """Handle ``corpus``: generate an annotated corpus as JSONL."""
    from repro.datagen.conll import ConllConfig, generate_conll
    from repro.datagen.io import save_corpus
    from repro.datagen.kore50 import generate_kore50
    from repro.datagen.wpslice import generate_wp_slice

    world = World.generate(
        WorldConfig(seed=args.seed, clusters_per_domain=args.clusters)
    )
    if args.kind == "conll":
        corpus = generate_conll(world, ConllConfig(scale=args.scale))
        if args.split == "all":
            documents = corpus.all_documents()
        else:
            documents = getattr(corpus, args.split)
    elif args.kind == "kore50":
        documents = generate_kore50(world)
    else:
        documents = generate_wp_slice(world)
    written = save_corpus(documents, args.out)
    print(f"wrote {written} documents to {args.out}")
    return 0


class _PipelineFactory:
    """Picklable pipeline builder for process-pool evaluation.

    Each worker process loads its own KB copy (processes cannot share the
    in-memory relatedness cache).  For the LSH backends the parent passes
    its precomputed stage-one entity *sketches*: they are built once
    before the pool spins up and shipped read-only to every worker, which
    then skips the KB-wide sketching pass.
    """

    def __init__(
        self,
        kb_dir: str,
        variant: str,
        use_compiled: bool = True,
        relatedness_backend: str = "mw",
        sketches=None,
        similarity_backend: str = "keyphrase",
        prerank_topk: Optional[int] = None,
    ):
        self.kb_dir = kb_dir
        self.variant = variant
        self.use_compiled = use_compiled
        self.relatedness_backend = relatedness_backend
        self.sketches = sketches
        self.similarity_backend = similarity_backend
        self.prerank_topk = prerank_topk

    @property
    def source_description(self) -> str:
        """Shown in serving ``/stats`` as the worker pipeline source."""
        return f"kb:{self.kb_dir}"

    def __call__(self) -> AidaDisambiguator:
        kb = load_knowledge_base(self.kb_dir)
        config = AIDA_VARIANTS[self.variant]()
        config.use_compiled = self.use_compiled
        config.relatedness_backend = self.relatedness_backend
        config.similarity_backend = self.similarity_backend
        config.prerank_topk = self.prerank_topk
        config.validate()
        relatedness = None
        if self.sketches is not None:
            relatedness = AidaDisambiguator.build_relatedness(
                kb, config, sketches=self.sketches
            )
        return AidaDisambiguator(
            kb, relatedness=relatedness, config=config
        )


def _lsh_measure(measure):
    """The LSH measure inside a (possibly wrapped) chain, or None."""
    while measure is not None:
        if hasattr(measure, "export_sketches"):
            return measure
        measure = getattr(measure, "inner", None)
    return None


def _cached_sketches_for(kb_dir: str, config: AidaConfig):
    """The cached whole-KB sketch table for this KB + backend, if any.

    A previous serve/evaluate start in this process already paid the
    KB-wide stage-one pass for the same on-disk KB and LSH geometry;
    building the parent pipeline over the cached (complete) table makes
    its own precompute a no-op.
    """
    if config.relatedness_backend not in ("kore_lsh_g", "kore_lsh_f"):
        return None
    from repro.kb.io import KnowledgeBaseError, kb_fingerprint
    from repro.relatedness.lsh import LshSettings, cached_sketch_export

    settings = (
        LshSettings.recall_geared()
        if config.relatedness_backend == "kore_lsh_g"
        else LshSettings.fast()
    )
    try:
        fingerprint = kb_fingerprint(kb_dir)
    except KnowledgeBaseError:
        return None
    return cached_sketch_export(fingerprint, settings)


def _shared_sketches(kb_dir: str, pipeline: AidaDisambiguator):
    """The sketch table to ship to process workers, cached process-wide.

    Keyed by (KB fingerprint, LSH geometry): the first start pays one
    export, later starts and worker respawns against the same on-disk KB
    reuse it, and the table's ``complete`` marker lets every worker skip
    its own KB-wide sketching pass.
    """
    lsh = _lsh_measure(pipeline.relatedness)
    if lsh is None:
        return None
    from repro.kb.io import KnowledgeBaseError, kb_fingerprint
    from repro.relatedness.lsh import (
        cached_sketch_export,
        store_sketch_export,
    )

    try:
        fingerprint = kb_fingerprint(kb_dir)
    except KnowledgeBaseError:
        return lsh.export_sketches()
    cached = cached_sketch_export(fingerprint, lsh.settings)
    if cached is not None:
        return cached
    return store_sketch_export(
        fingerprint, lsh.settings, lsh.export_sketches()
    )


def cmd_evaluate(args: argparse.Namespace) -> int:
    """Handle ``evaluate``: score a pipeline on a saved corpus."""
    from repro.core.batch import BatchConfig, BatchRunner
    from repro.datagen.io import load_corpus
    from repro.eval.runner import run_disambiguator
    from repro.faults import ResilientFactory
    from repro.relatedness.caching import CachingRelatedness

    obs = _ObsSession(args)
    chaos = _InjectorSession(args)
    try:
        if not args.kb and not args.snapshot:
            raise SystemExit("evaluate requires --kb or --snapshot")
        documents = load_corpus(args.corpus)
        config = _apply_pipeline_flags(AIDA_VARIANTS[args.variant](), args)
        robustness = _robustness_config(args)
        relatedness = None
        if args.snapshot:
            from repro.kb.snapshot import (
                SnapshotPipelineFactory,
                load_snapshot,
            )

            if args.cache_relatedness:
                raise SystemExit(
                    "--cache-relatedness is not supported with --snapshot"
                )
            snapshot = load_snapshot(args.snapshot)
            kb = snapshot.kb
            pipeline = snapshot.pipeline(config)
        else:
            kb = load_knowledge_base(args.kb)
            cached = _cached_sketches_for(args.kb, config)
            if args.cache_relatedness:
                relatedness = CachingRelatedness(
                    AidaDisambiguator.build_relatedness(
                        kb, config, sketches=cached
                    ),
                    maxsize=args.cache_size or None,
                )
            elif cached is not None:
                relatedness = AidaDisambiguator.build_relatedness(
                    kb, config, sketches=cached
                )
            pipeline = AidaDisambiguator(
                kb, relatedness=relatedness, config=config
            )
        batch = None
        if args.workers > 1 and args.executor == "process":
            if args.snapshot:
                factory = SnapshotPipelineFactory(
                    args.snapshot, config=config
                )
            else:
                factory = _PipelineFactory(
                    args.kb,
                    args.variant,
                    use_compiled=args.compiled,
                    relatedness_backend=args.relatedness,
                    sketches=_shared_sketches(args.kb, pipeline),
                    similarity_backend=args.similarity_backend,
                    prerank_topk=args.prerank_topk,
                )
            if robustness is not None:
                factory = ResilientFactory(factory, robustness)
            batch = BatchRunner(
                pipeline_factory=factory,
                config=BatchConfig(
                    workers=args.workers, executor="process"
                ),
            )
        run = run_disambiguator(
            pipeline,
            documents,
            kb=kb,
            workers=args.workers,
            batch=batch,
            robustness=robustness,
        )
        print(f"documents: {len(documents)}")
        if run.failures:
            print(f"failed documents: {len(run.failures)}")
            for failure in run.failures:
                print(
                    f"  {failure.doc_id}: [{failure.kind}] "
                    f"{failure.error}",
                    file=sys.stderr,
                )
        rungs = run.rung_counts
        if any(rung != "full" for rung in rungs):
            summary = " ".join(
                f"{rung}={count}" for rung, count in sorted(rungs.items())
            )
            print(f"degradation rungs: {summary}")
        print(f"micro accuracy: {100 * run.micro:.2f}%")
        print(f"macro accuracy: {100 * run.macro:.2f}%")
        print(f"MAP:            {100 * run.map:.2f}%")
        if args.cache_relatedness and relatedness is not None:
            stats = relatedness.cache_stats()
            print(
                "relatedness cache: "
                f"{stats.hits} hits, {stats.misses} misses, "
                f"{stats.evictions} evictions "
                f"({100 * stats.hit_rate:.1f}% hit rate)"
            )
        return 0
    finally:
        chaos.finish()
        obs.finish()


def _serving_robustness(args: argparse.Namespace) -> RobustnessConfig:
    """The serve command's robustness: degradation is always on (the
    shed ladder requires it) and the SLO doubles as the per-attempt
    deadline unless --deadline-ms overrides it."""
    return RobustnessConfig(
        retries=args.retries,
        deadline_ms=(
            args.deadline_ms if args.deadline_ms else args.slo_ms
        ),
        degrade=True,
        backoff=RetryPolicy(seed=args.inject_seed),
    )


async def _serve_stdin(server) -> int:
    await server.start(listen=False)
    try:
        served = await server.run_jsonl(sys.stdin, sys.stdout)
    finally:
        await server.stop()
    stats = server.admission.stats()
    print(
        f"served {served} documents "
        f"(shed {stats['shed']}, rejected {stats['rejected']}, "
        f"p99 {stats['p99_ms']:.1f}ms)",
        file=sys.stderr,
    )
    return 0


async def _serve_forever(server) -> int:
    await server.start()
    print(
        f"serving on http://{server.config.host}:{server.port} "
        f"(POST /disambiguate, GET /healthz /stats /metrics)",
        flush=True,
    )
    try:
        await asyncio.Event().wait()
    finally:
        await server.stop()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Handle ``serve``: the admission-controlled online service."""
    from repro.serving import DisambiguationServer, ServingConfig

    obs = _ObsSession(args)
    chaos = _InjectorSession(args)
    # The /metrics endpoint and the shed counters need a live registry
    # even without --metrics-out, and --trace-export needs a live tracer
    # even without --trace-out.
    own_metrics = None
    if not get_metrics().enabled:
        own_metrics = set_metrics(MetricsRegistry())
    own_tracer = None
    if args.trace_export and not get_tracer().enabled:
        own_tracer = set_tracer(Tracer())
    try:
        if not args.kb and not args.snapshot:
            raise SystemExit("serve requires --kb or --snapshot")
        config = _apply_pipeline_flags(AIDA_VARIANTS[args.variant](), args)
        factory = None
        if args.snapshot:
            from repro.kb.snapshot import (
                SnapshotPipelineFactory,
                load_snapshot,
            )

            snapshot = load_snapshot(args.snapshot)
            kb = snapshot.kb
            pipeline = snapshot.pipeline(config)
            if args.executor == "process":
                factory = SnapshotPipelineFactory(
                    args.snapshot, config=config
                )
        else:
            kb = load_knowledge_base(args.kb)
            cached = _cached_sketches_for(args.kb, config)
            relatedness = (
                AidaDisambiguator.build_relatedness(
                    kb, config, sketches=cached
                )
                if cached is not None
                else None
            )
            pipeline = AidaDisambiguator(
                kb, relatedness=relatedness, config=config
            )
            if args.executor == "process":
                factory = _PipelineFactory(
                    args.kb,
                    args.variant,
                    use_compiled=args.compiled,
                    relatedness_backend=args.relatedness,
                    sketches=_shared_sketches(args.kb, pipeline),
                    similarity_backend=args.similarity_backend,
                    prerank_topk=args.prerank_topk,
                )
        server = DisambiguationServer(
            pipeline,
            ServingConfig(
                host=args.host,
                port=args.port,
                max_queue=args.max_queue,
                slo_ms=args.slo_ms,
                batch_max_docs=args.batch_max_docs,
                batch_window_ms=args.batch_window_ms,
                workers=args.workers,
                executor=args.executor,
                trace_sample_rate=args.trace_sample_rate,
                trace_export=args.trace_export,
                slo_objective=args.slo_objective,
            ),
            kb=kb,
            robustness=_serving_robustness(args),
            pipeline_factory=factory,
        )
        runner = _serve_stdin(server) if args.stdin else _serve_forever(
            server
        )
        try:
            return asyncio.run(runner)
        except KeyboardInterrupt:
            print("shutting down", file=sys.stderr)
            return 0
    finally:
        if own_metrics is not None:
            set_metrics(own_metrics)
        if own_tracer is not None:
            set_tracer(own_tracer)
        chaos.finish()
        obs.finish()


def cmd_snapshot(args: argparse.Namespace) -> int:
    """Handle ``snapshot``: build or inspect mmap KB images."""
    from repro.kb.io import kb_fingerprint
    from repro.kb.snapshot import (
        SnapshotError,
        build_snapshot,
        inspect_snapshot,
    )

    if args.snapshot_command == "build":
        gearings = tuple(
            part for part in args.gearings.split(",") if part
        )
        kb = load_knowledge_base(args.kb)
        embeddings = None
        if args.embeddings:
            from repro.embeddings import EmbeddingConfig, train_embeddings

            embeddings = train_embeddings(
                kb,
                EmbeddingConfig(
                    dim=args.embedding_dim, seed=args.embedding_seed
                ),
            )
        manifest = build_snapshot(
            kb,
            args.out,
            scheme=args.scheme,
            max_keyphrases=args.max_keyphrases or None,
            backend=args.backend,
            gearings=gearings,
            source_fingerprint=kb_fingerprint(args.kb),
            embeddings=embeddings,
        )
        counts = manifest["counts"]
        emb_info = manifest.get("embeddings")
        emb_text = (
            f"embeddings: d={emb_info['dim']}" if emb_info else
            "embeddings: none"
        )
        print(
            f"wrote {args.out}: {os.path.getsize(args.out)} bytes, "
            f"{counts['entities']} entities, "
            f"{counts['vocabulary']} words, "
            f"{counts['link_edges']} link edges, "
            f"lsh gearings: "
            f"{', '.join(sorted(manifest['lsh'])) or 'none'}, "
            f"{emb_text}"
        )
        return 0
    if args.snapshot_command == "inspect":
        try:
            info = inspect_snapshot(args.path)
        except SnapshotError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        try:
            print(json.dumps(info, indent=2))
        except BrokenPipeError:
            # Downstream consumer (e.g. ``| head``) closed the pipe.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    raise SystemExit(
        f"unknown snapshot subcommand {args.snapshot_command!r}"
    )


def cmd_embeddings(args: argparse.Namespace) -> int:
    """Handle ``embeddings``: train or inspect embedding models."""
    from repro.embeddings import (
        EmbeddingConfig,
        EmbeddingModel,
        train_embeddings,
    )

    if args.embeddings_command == "train":
        try:
            config = EmbeddingConfig(
                dim=args.dim,
                window=args.window,
                negatives=args.negatives,
                epochs=args.epochs,
                learning_rate=args.learning_rate,
                batch_size=args.batch_size,
                seed=args.seed,
            )
        except ConfigurationError as exc:
            raise SystemExit(f"error: {exc}")
        kb = load_knowledge_base(args.kb)
        model = train_embeddings(kb, config)
        path = model.save(args.out)
        print(
            f"wrote {path}: d={model.dim}, {len(model.words)} words, "
            f"{len(model.entity_ids)} entities, "
            f"{model.meta.get('pairs', '?')} training pairs"
        )
        return 0
    if args.embeddings_command == "inspect":
        try:
            model = EmbeddingModel.load(args.path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        try:
            print(json.dumps(model.describe(), indent=2))
        except BrokenPipeError:
            # Downstream consumer (e.g. ``| head``) closed the pipe.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    raise SystemExit(
        f"unknown embeddings subcommand {args.embeddings_command!r}"
    )


def cmd_obs(args: argparse.Namespace) -> int:
    """Handle ``obs``: telemetry analysis subcommands."""
    from repro.obs.report import build_report, load_spans, render_report

    if args.obs_command == "report":
        try:
            spans = load_spans(args.traces)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if not spans:
            print("no spans found", file=sys.stderr)
            return 1
        report = build_report(spans, slo_ms=args.slo_ms)
        try:
            print(render_report(report))
        except BrokenPipeError:
            # Downstream consumer (e.g. ``| head``) closed the pipe.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    raise SystemExit(f"unknown obs subcommand {args.obs_command!r}")


_COMMANDS = {
    "generate-kb": cmd_generate_kb,
    "disambiguate": cmd_disambiguate,
    "relatedness": cmd_relatedness,
    "classify": cmd_classify,
    "corpus": cmd_corpus,
    "evaluate": cmd_evaluate,
    "serve": cmd_serve,
    "snapshot": cmd_snapshot,
    "embeddings": cmd_embeddings,
    "obs": cmd_obs,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
