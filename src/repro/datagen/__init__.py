"""Synthetic world, encyclopedia, and corpus generators.

The paper's substrate — English Wikipedia, YAGO, and manually annotated
corpora — is unavailable offline, so this package generates a *seeded
synthetic equivalent* with the same statistical structure:

* :mod:`vocabulary` / :mod:`names` — pseudo-natural word and name material,
  with ambiguity constructed deliberately (shared family names, city/team
  metonymy, acronyms);
* :mod:`world` — the latent entity universe: domains, coherent clusters,
  Zipfian popularity, per-entity theme words, and out-of-KB entities;
* :mod:`wikipedia` — a synthetic encyclopedia dump (articles, anchors,
  links, categories) from which the knowledge base is built;
* :mod:`documents` — annotated document generation from entity clusters;
* :mod:`conll`, :mod:`kore50`, :mod:`wpslice`, :mod:`gigaword` — the four
  evaluation corpora of Chapters 3–5;
* :mod:`relatedness_gold` — the entity-relatedness ranking gold standard of
  Section 4.5;
* :mod:`stress` — linear-time 100k–1M-entity KBs for the snapshot and
  serving scale-out benchmarks.

Everything is deterministic given the seed.
"""

from repro.datagen.world import World, WorldConfig
from repro.datagen.wikipedia import SyntheticWikipedia, build_world_kb
from repro.datagen.documents import DocumentGenerator, DocumentSpec
from repro.datagen.stress import StressConfig, generate_stress_kb

__all__ = [
    "World",
    "WorldConfig",
    "SyntheticWikipedia",
    "build_world_kb",
    "DocumentGenerator",
    "DocumentSpec",
    "StressConfig",
    "generate_stress_kb",
]
