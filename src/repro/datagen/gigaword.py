"""AIDA-EE GigaWord-style timestamped news stream (Section 5.7.2).

A stream of news documents over ``num_days`` days, generated from the world
after spawning *emerging entities* — out-of-KB entities that share a name
with a prominent in-KB entity (the hurricane-"Sandy" pattern).  The stream
has the redundancy Chapter 5's harvesting relies on:

* each active emerging entity appears in several documents per day with its
  own theme words (absent from every in-KB candidate's model), so the model
  difference of Algorithm 2 isolates a clean placeholder model;
* in-KB entities accrue *news words* over time — fresh context vocabulary
  absent from their encyclopedia keyphrases.  Early documents pair news
  words with KB theme words (high-confidence → harvestable); later
  documents, in particular the annotated test day, lean mostly on news
  words, which is what makes keyphrase enrichment of existing entities pay
  off (Figure 5.4, the "Theresa May" example).

Two days are designated for annotation (hyper-parameter tuning vs. test),
mirroring the paper's Oct-1/Nov-1 annotated slices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datagen.documents import DocumentGenerator, DocumentSpec
from repro.datagen.world import World, WorldEntity
from repro.errors import DatasetError
from repro.types import AnnotatedDocument, EntityId
from repro.utils.rng import SeededRng


@dataclass
class GigawordConfig:
    """Size and temporal knobs of the news stream."""
    seed: int = 909
    num_days: int = 40
    docs_per_day: int = 12
    #: Number of emerging entities spawned into the world.
    emerging_count: int = 12
    #: Emerging entities surface between these days.
    emerging_first_day: int = 5
    emerging_last_day: int = 25
    #: Annotated days (train = tuning, test = evaluation).
    train_day: int = 30
    test_day: int = 38
    #: Documents about each active emerging entity per day.
    ee_docs_per_day: int = 2
    #: Fraction of in-KB own-context words replaced by news words, before
    #: and at/after the test day.
    news_word_fraction_early: float = 0.35
    news_word_fraction_late: float = 0.75
    mentions_low: int = 6
    mentions_high: int = 10

    def __post_init__(self) -> None:
        if not 0 <= self.train_day < self.num_days:
            raise DatasetError("train_day out of range")
        if not 0 <= self.test_day < self.num_days:
            raise DatasetError("test_day out of range")
        if self.emerging_last_day >= min(self.train_day, self.test_day):
            raise DatasetError(
                "emerging entities must surface before the annotated days"
            )


@dataclass
class NewsStream:
    """The generated stream plus its annotated slices."""

    config: GigawordConfig
    documents: List[AnnotatedDocument] = field(default_factory=list)
    #: The emerging entities spawned for this stream.
    emerging_ids: List[EntityId] = field(default_factory=list)
    #: News vocabulary assigned to in-KB entities (entity -> words).
    news_words: Dict[EntityId, Tuple[str, ...]] = field(default_factory=dict)

    def docs_on(self, day: int) -> List[AnnotatedDocument]:
        """Documents published on the given day."""
        return [d for d in self.documents if d.document.timestamp == day]

    def docs_between(self, first_day: int, last_day: int) -> List[
        AnnotatedDocument
    ]:
        """Documents with first_day <= timestamp <= last_day."""
        return [
            d
            for d in self.documents
            if first_day <= d.document.timestamp <= last_day
        ]

    def train_docs(self) -> List[AnnotatedDocument]:
        """The annotated tuning-day documents."""
        return self.docs_on(self.config.train_day)

    def test_docs(self) -> List[AnnotatedDocument]:
        """The annotated test-day documents."""
        return self.docs_on(self.config.test_day)

    def properties(self) -> Dict[str, float]:
        """Dataset statistics in the shape of Table 5.2 (over the two
        annotated days)."""
        annotated = self.train_docs() + self.test_docs()
        mentions = sum(len(d.gold) for d in annotated)
        ee_mentions = sum(len(d.out_of_kb_gold()) for d in annotated)
        words = sum(len(d.document.tokens) for d in annotated)
        return {
            "documents": len(annotated),
            "mentions": mentions,
            "mentions_with_emerging_entities": ee_mentions,
            "words_per_article_avg": (
                words / len(annotated) if annotated else 0.0
            ),
            "mentions_per_article_avg": (
                mentions / len(annotated) if annotated else 0.0
            ),
        }


def generate_gigaword(
    world: World, config: Optional[GigawordConfig] = None
) -> NewsStream:
    """Spawn emerging entities into *world* and generate the stream.

    Note: this mutates the world (adds emerging entities to clusters), so
    generate the encyclopedia/KB *before* calling this — emerging entities
    must not leak into the KB.
    """
    config = config if config is not None else GigawordConfig()
    rng = SeededRng(config.seed).fork("gigaword")
    emerging = world.spawn_emerging(
        config.emerging_count,
        config.emerging_first_day,
        config.emerging_last_day,
        seed=config.seed,
    )
    generator = DocumentGenerator(world, seed=config.seed)
    news_words = _assign_news_words(world, rng)
    stream = NewsStream(
        config=config,
        emerging_ids=[e.entity_id for e in emerging],
        news_words=news_words,
    )
    doc_number = 0
    cluster_ids = sorted(world.clusters)
    for day in range(config.num_days):
        day_rng = rng.fork(f"day:{day}")
        # Regular cluster documents.
        for _ in range(config.docs_per_day):
            doc_number += 1
            stream.documents.append(
                _cluster_document(
                    generator, world, cluster_ids, news_words,
                    config, day, day_rng, doc_number,
                )
            )
        # Emerging-entity documents (redundant coverage per EE).
        for entity in emerging:
            if entity.emerging_day is None or day < entity.emerging_day:
                continue
            for _ in range(config.ee_docs_per_day):
                doc_number += 1
                stream.documents.append(
                    _emerging_document(
                        generator, entity, config, day, doc_number
                    )
                )
    return stream


def _assign_news_words(
    world: World, rng: SeededRng
) -> Dict[EntityId, Tuple[str, ...]]:
    """Fresh per-entity news vocabulary, disjoint from the entity's own
    unique words."""
    news: Dict[EntityId, Tuple[str, ...]] = {}
    for entity_id in world.in_kb_ids():
        entity = world.entity(entity_id)
        topic = [
            word
            for word in world.vocabulary.topic_words(entity.domain)
            if word not in entity.unique_words
        ]
        news[entity_id] = tuple(
            rng.fork(f"news:{entity_id}").sample(topic, 4)
        )
    return news


def _cluster_document(
    generator: DocumentGenerator,
    world: World,
    cluster_ids: Sequence[int],
    news_words: Dict[EntityId, Tuple[str, ...]],
    config: GigawordConfig,
    day: int,
    rng: SeededRng,
    doc_number: int,
) -> AnnotatedDocument:
    cluster_id = rng.choice(cluster_ids)
    late = day >= config.test_day
    news_fraction = (
        config.news_word_fraction_late
        if late
        else config.news_word_fraction_early
    )
    overrides: Dict[EntityId, Tuple[str, ...]] = {}
    for member in world.cluster_members(cluster_id):
        entity = world.entity(member)
        if not entity.in_kb or member not in news_words:
            continue
        if rng.maybe(news_fraction):
            if late:
                # Test-day context is dominated by news vocabulary.
                overrides[member] = news_words[member]
            else:
                # Early documents mix news and KB words so the entity is
                # still resolvable with KB keyphrases (high confidence).
                mixed = list(news_words[member][:2]) + list(
                    entity.unique_words[:2]
                )
                overrides[member] = tuple(mixed)
    spec = DocumentSpec(
        doc_id=f"news-{doc_number:05d}",
        cluster_ids=[cluster_id],
        num_mentions=rng.randint(config.mentions_low, config.mentions_high),
        ambiguous_prob=0.8,
        context_prob=0.7,
        timestamp=day,
        context_overrides=overrides,
    )
    return generator.generate(spec)


def _emerging_document(
    generator: DocumentGenerator,
    entity: WorldEntity,
    config: GigawordConfig,
    day: int,
    doc_number: int,
) -> AnnotatedDocument:
    spec = DocumentSpec(
        doc_id=f"news-{doc_number:05d}",
        cluster_ids=[entity.cluster_id],
        forced_entities=[entity.entity_id],
        num_mentions=6,
        ambiguous_prob=0.8,
        context_prob=0.9,
        distractor_prob=0.0,
        timestamp=day,
    )
    return generator.generate(spec)
