"""The latent entity universe behind all synthetic data.

The *world* is the ground-truth reality from which both the synthetic
encyclopedia (→ knowledge base) and every evaluation corpus are generated.
It consists of:

* **entities** grouped into topically coherent **clusters** (a band with its
  members and songs; two football clubs with players, cities and a stadium;
  a country with its government and politicians; ...),
* per-cluster **shared theme words** and per-entity **unique theme words**
  drawn from the domain's topic vocabulary — these drive keyphrases, article
  text and document context, so keyphrase overlap faithfully reflects latent
  relatedness,
* **Zipfian popularity**, which drives anchor counts (the prior) and article
  link density (so long-tail entities are link-poor but keyphrase-rich —
  the regime where KORE beats Milne–Witten),
* **constructed name ambiguity**: shared family names, city/team metonymy,
  song titles colliding with place names, acronyms,
* a fraction of **out-of-KB entities** (never enter the encyclopedia) and,
  on demand, **emerging entities** that share a name with a prominent in-KB
  entity and only ever appear in the news stream (Chapter 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DatasetError
from repro.datagen.names import (
    EntityNames,
    NameFactory,
    generate_name_pools,
)
from repro.datagen.vocabulary import (
    DOMAINS,
    Vocabulary,
    generate_vocabulary,
)
from repro.types import EntityId
from repro.utils.rng import SeededRng


@dataclass(frozen=True)
class WorldEntity:
    """One entity of the latent world (in-KB or not)."""

    entity_id: EntityId
    names: EntityNames
    types: Tuple[str, ...]
    domain: str
    cluster_id: int
    popularity: float
    shared_words: Tuple[str, ...]
    unique_words: Tuple[str, ...]
    in_kb: bool = True
    emerging_day: Optional[int] = None

    @property
    def is_emerging(self) -> bool:
        """Whether the entity only exists in the news stream."""
        return self.emerging_day is not None

    @property
    def theme_words(self) -> Tuple[str, ...]:
        """Shared cluster words plus entity-unique words."""
        return self.shared_words + self.unique_words


@dataclass
class Cluster:
    """A topically coherent group of entities."""

    cluster_id: int
    domain: str
    shared_words: Tuple[str, ...]
    members: List[EntityId] = field(default_factory=list)


@dataclass
class WorldConfig:
    """Size and ambiguity knobs of the world generator."""

    seed: int = 7
    clusters_per_domain: int = 8
    domains: Sequence[str] = DOMAINS
    #: Words shared by all members of a cluster.
    shared_words_per_cluster: int = 8
    #: Words unique to each entity.
    unique_words_per_entity: int = 5
    #: Probability that a new person re-uses an already used family name.
    family_sharing: float = 0.55
    #: When a family name is shared, probability of picking one already
    #: used in the *same domain* — this creates the hard "Burkhard Reich
    #: vs. Marco Reich" cases where the confusable candidates also share
    #: topical vocabulary.
    same_domain_family_bias: float = 0.6
    #: Size of each domain's topic vocabulary.  Smaller vocabularies make
    #: single words collide across entities, so that only word *pairs*
    #: (keyphrases) are discriminative.
    topic_vocabulary_size: int = 80
    #: Name-pool sizes.  Smaller pools force more entities to share each
    #: name, raising the ambiguity (candidates per mention).
    first_name_pool: int = 60
    family_name_pool: int = 80
    place_name_pool: int = 60
    title_word_pool: int = 80
    #: Probability that a song/film title collides with a place name.
    title_place_collision: float = 0.35
    #: Fraction of entities that never enter the knowledge base.
    out_of_kb_fraction: float = 0.18
    #: Zipf exponent of the popularity distribution.
    zipf_exponent: float = 0.85

    def __post_init__(self) -> None:
        if self.clusters_per_domain < 1:
            raise DatasetError("clusters_per_domain must be >= 1")
        if not 0.0 <= self.out_of_kb_fraction < 1.0:
            raise DatasetError("out_of_kb_fraction must be in [0, 1)")


class World:
    """The generated universe.  Use :meth:`generate` to build one."""

    def __init__(self, config: WorldConfig, vocabulary: Vocabulary):
        self.config = config
        self.vocabulary = vocabulary
        self.entities: Dict[EntityId, WorldEntity] = {}
        self.clusters: Dict[int, Cluster] = {}
        self._id_counter = 0
        self._used_family_names: List[str] = []
        self._family_names_by_domain: Dict[str, List[str]] = {}
        self._used_place_names: List[str] = []
        self._emerging_counter = 0

    # ==================================================================
    # Generation
    # ==================================================================
    @staticmethod
    def generate(config: Optional[WorldConfig] = None) -> "World":
        """Generate a world from the configuration (deterministic)."""
        config = config if config is not None else WorldConfig()
        vocabulary = generate_vocabulary(
            config.seed,
            topic_size=config.topic_vocabulary_size,
            domains=tuple(config.domains),
        )
        world = World(config, vocabulary)
        rng = SeededRng(config.seed).fork("world")
        pools = generate_name_pools(
            config.seed,
            first_names=config.first_name_pool,
            family_names=config.family_name_pool,
            place_names=config.place_name_pool,
            title_words=config.title_word_pool,
        )
        factory = NameFactory(pools, rng.fork("namefactory"))
        cluster_id = 0
        for domain in config.domains:
            for _ in range(config.clusters_per_domain):
                world._build_cluster(domain, cluster_id, rng, factory)
                cluster_id += 1
        world._assign_popularity(rng.fork("popularity"))
        world._mark_out_of_kb(rng.fork("ookb"))
        return world

    # ------------------------------------------------------------------
    # Cluster construction per domain
    # ------------------------------------------------------------------
    def _build_cluster(
        self,
        domain: str,
        cluster_id: int,
        rng: SeededRng,
        factory: NameFactory,
    ) -> None:
        cluster_rng = rng.fork(f"cluster:{cluster_id}")
        topic = self.vocabulary.topic_words(domain)
        shared = tuple(
            cluster_rng.sample(topic, self.config.shared_words_per_cluster)
        )
        cluster = Cluster(
            cluster_id=cluster_id, domain=domain, shared_words=shared
        )
        self.clusters[cluster_id] = cluster
        builders = {
            "music": self._music_cluster,
            "sports": self._sports_cluster,
            "politics": self._politics_cluster,
            "business": self._business_cluster,
            "tech": self._tech_cluster,
            "film": self._film_cluster,
        }
        builder = builders.get(domain, self._generic_cluster)
        builder(cluster, cluster_rng, factory)

    def _add_entity(
        self,
        cluster: Cluster,
        names: EntityNames,
        types: Tuple[str, ...],
        rng: SeededRng,
    ) -> WorldEntity:
        self._id_counter += 1
        entity_id = f"E{self._id_counter:05d}_" + names.canonical.replace(
            " ", "_"
        )
        topic = self.vocabulary.topic_words(cluster.domain)
        unique = tuple(
            rng.sample(topic, self.config.unique_words_per_entity)
        )
        entity = WorldEntity(
            entity_id=entity_id,
            names=names,
            types=types,
            domain=cluster.domain,
            cluster_id=cluster.cluster_id,
            popularity=1.0,  # replaced by _assign_popularity
            shared_words=cluster.shared_words,
            unique_words=unique,
        )
        self.entities[entity_id] = entity
        cluster.members.append(entity_id)
        return entity

    def _shared_family(
        self, cluster: Cluster, rng: SeededRng
    ) -> Optional[str]:
        """Pick a family name to re-use, preferring the same domain but
        never the same cluster — two same-named people inside one topical
        cluster would be irresolvable even for a human annotator."""
        if not self._used_family_names or not rng.maybe(
            self.config.family_sharing
        ):
            return None
        in_cluster = {
            self.entities[member].names.short_forms[0]
            for member in cluster.members
            if self.entities[member].names.short_forms
        }
        same_domain = [
            name
            for name in self._family_names_by_domain.get(cluster.domain, [])
            if name not in in_cluster
        ]
        if same_domain and rng.maybe(self.config.same_domain_family_bias):
            return rng.choice(same_domain)
        usable = [
            name
            for name in self._used_family_names
            if name not in in_cluster
        ]
        return rng.choice(usable) if usable else None

    def _person(
        self, cluster: Cluster, rng: SeededRng, factory: NameFactory,
        types: Tuple[str, ...],
    ) -> WorldEntity:
        names = factory.person_name(
            shared_family=self._shared_family(cluster, rng)
        )
        family = names.short_forms[0]
        if family not in self._used_family_names:
            self._used_family_names.append(family)
        per_domain = self._family_names_by_domain.setdefault(
            cluster.domain, []
        )
        if family not in per_domain:
            per_domain.append(family)
        return self._add_entity(cluster, names, types, rng)

    def _place(
        self, cluster: Cluster, rng: SeededRng, factory: NameFactory,
        types: Tuple[str, ...],
    ) -> WorldEntity:
        names = factory.place_name()
        if names.canonical not in self._used_place_names:
            self._used_place_names.append(names.canonical)
        return self._add_entity(cluster, names, types, rng)

    def _work(
        self, cluster: Cluster, rng: SeededRng, factory: NameFactory,
        types: Tuple[str, ...],
    ) -> WorldEntity:
        shared = None
        if self._used_place_names and rng.maybe(
            self.config.title_place_collision
        ):
            shared = rng.choice(self._used_place_names)
        names = factory.work_title(shared=shared)
        return self._add_entity(cluster, names, types, rng)

    def _music_cluster(
        self, cluster: Cluster, rng: SeededRng, factory: NameFactory
    ) -> None:
        self._add_entity(cluster, factory.band_name(), ("band",), rng)
        for _ in range(rng.randint(2, 3)):
            self._person(
                cluster, rng, factory,
                (rng.choice(["singer", "guitarist", "musician"]),),
            )
        for _ in range(rng.randint(2, 3)):
            self._work(cluster, rng, factory, ("song",))
        self._work(cluster, rng, factory, ("album",))

    def _sports_cluster(
        self, cluster: Cluster, rng: SeededRng, factory: NameFactory
    ) -> None:
        for _ in range(2):
            city = self._place(cluster, rng, factory, ("city",))
            team_names = factory.team_name(city.names.canonical)
            self._add_entity(cluster, team_names, ("football_club",), rng)
        for _ in range(rng.randint(3, 4)):
            self._person(cluster, rng, factory, ("footballer",))
        self._place(cluster, rng, factory, ("stadium",))
        self._work(cluster, rng, factory, ("sports_event",))

    def _politics_cluster(
        self, cluster: Cluster, rng: SeededRng, factory: NameFactory
    ) -> None:
        country = self._place(cluster, rng, factory, ("country",))
        capital = self._place(cluster, rng, factory, ("city",))
        gov_names = EntityNames(
            canonical=f"{country.names.canonical} Government",
            # Metonymy: both the country and the capital name refer to the
            # government in political prose.
            short_forms=(country.names.canonical, capital.names.canonical),
        )
        self._add_entity(cluster, gov_names, ("government",), rng)
        for _ in range(rng.randint(2, 3)):
            self._person(cluster, rng, factory, ("politician",))
        self._work(cluster, rng, factory, ("election",))

    def _business_cluster(
        self, cluster: Cluster, rng: SeededRng, factory: NameFactory
    ) -> None:
        for _ in range(rng.randint(1, 2)):
            self._add_entity(
                cluster, factory.org_name(with_acronym=True),
                ("company",), rng,
            )
        for _ in range(2):
            self._person(cluster, rng, factory, ("executive",))
        self._work(cluster, rng, factory, ("product",))
        self._place(cluster, rng, factory, ("city",))

    def _tech_cluster(
        self, cluster: Cluster, rng: SeededRng, factory: NameFactory
    ) -> None:
        self._add_entity(
            cluster, factory.org_name(with_acronym=True), ("company",), rng
        )
        for _ in range(rng.randint(1, 2)):
            self._work(cluster, rng, factory, ("product",))
        self._work(cluster, rng, factory, ("video_game",))
        for _ in range(2):
            self._person(
                cluster, rng, factory,
                (rng.choice(["scientist", "executive"]),),
            )

    def _film_cluster(
        self, cluster: Cluster, rng: SeededRng, factory: NameFactory
    ) -> None:
        self._work(cluster, rng, factory, ("film",))
        self._work(cluster, rng, factory, ("tv_series",))
        for _ in range(rng.randint(2, 3)):
            self._person(cluster, rng, factory, ("actor",))
        self._person(cluster, rng, factory, ("writer",))

    def _generic_cluster(
        self, cluster: Cluster, rng: SeededRng, factory: NameFactory
    ) -> None:
        for _ in range(4):
            self._person(cluster, rng, factory, ("person",))

    # ------------------------------------------------------------------
    # Popularity and KB membership
    # ------------------------------------------------------------------
    def _assign_popularity(self, rng: SeededRng) -> None:
        order = rng.shuffled(sorted(self.entities))
        exponent = self.config.zipf_exponent
        for rank, entity_id in enumerate(order, start=1):
            entity = self.entities[entity_id]
            popularity = 1000.0 / (rank**exponent)
            self.entities[entity_id] = replace(entity, popularity=popularity)

    def _mark_out_of_kb(self, rng: SeededRng) -> None:
        """Mark the configured fraction of entities as out-of-KB, biased
        towards the unpopular (Wikipedia's notability guideline)."""
        ranked = sorted(
            self.entities, key=lambda eid: self.entities[eid].popularity
        )
        target = int(len(ranked) * self.config.out_of_kb_fraction)
        chosen = 0
        for entity_id in ranked:
            if chosen >= target:
                break
            # The least popular entities are most likely to be left out.
            if rng.maybe(0.75):
                entity = self.entities[entity_id]
                self.entities[entity_id] = replace(entity, in_kb=False)
                chosen += 1

    # ==================================================================
    # Emerging entities (Chapter 5)
    # ==================================================================
    def spawn_emerging(
        self,
        count: int,
        first_day: int,
        last_day: int,
        seed: int,
    ) -> List[WorldEntity]:
        """Create emerging entities that share a name with a prominent
        in-KB entity and attach each to an existing cluster for context.

        The hurricane-"Sandy" pattern: the name already has in-KB
        candidates, the new referent only exists in the news.
        """
        rng = SeededRng(seed).fork("emerging")
        donors = [
            eid
            for eid in sorted(self.entities)
            if self.entities[eid].in_kb
            and not self.entities[eid].is_emerging
            and len(self.entities[eid].names.short_forms) > 0
        ]
        donors.sort(key=lambda eid: -self.entities[eid].popularity)
        donors = donors[: max(count * 3, 10)]
        spawned: List[WorldEntity] = []
        cluster_ids = sorted(self.clusters)
        for index in range(count):
            donor = self.entities[rng.choice(donors)]
            shared_name = donor.names.short_forms[0]
            cluster = self.clusters[rng.choice(cluster_ids)]
            topic = self.vocabulary.topic_words(cluster.domain)
            unique = tuple(
                rng.sample(topic, self.config.unique_words_per_entity + 2)
            )
            self._emerging_counter += 1
            entity_id = (
                f"EE{self._emerging_counter:04d}_"
                + shared_name.replace(" ", "_")
            )
            entity = WorldEntity(
                entity_id=entity_id,
                names=EntityNames(
                    canonical=shared_name, short_forms=(shared_name,)
                ),
                types=(rng.choice(["person", "event", "product"]),),
                domain=cluster.domain,
                cluster_id=cluster.cluster_id,
                popularity=5.0,
                shared_words=cluster.shared_words,
                unique_words=unique,
                in_kb=False,
                emerging_day=rng.randint(first_day, last_day),
            )
            self.entities[entity_id] = entity
            cluster.members.append(entity_id)
            spawned.append(entity)
        return spawned

    # ==================================================================
    # Accessors
    # ==================================================================
    def entity(self, entity_id: EntityId) -> WorldEntity:
        """The world entity by id; raises DatasetError when absent."""
        if entity_id not in self.entities:
            raise DatasetError(f"unknown world entity: {entity_id!r}")
        return self.entities[entity_id]

    def entity_ids(self) -> List[EntityId]:
        """All world entity ids, sorted."""
        return sorted(self.entities)

    def in_kb_ids(self) -> List[EntityId]:
        """Ids of entities registered in the knowledge base."""
        return [
            eid for eid in self.entity_ids() if self.entities[eid].in_kb
        ]

    def out_of_kb_ids(self) -> List[EntityId]:
        """Ids of entities absent from the knowledge base."""
        return [
            eid for eid in self.entity_ids() if not self.entities[eid].in_kb
        ]

    def cluster_members(self, cluster_id: int) -> List[EntityId]:
        """Member entity ids of a cluster."""
        return list(self.clusters[cluster_id].members)

    def cluster_popularity(self, cluster_id: int) -> float:
        """Total popularity mass of a cluster — news coverage follows it."""
        return sum(
            self.entities[member].popularity
            for member in self.clusters[cluster_id].members
        )

    def cluster_weights(self) -> Tuple[List[int], List[float]]:
        """(cluster ids, popularity weights) for weighted cluster picks."""
        ids = sorted(self.clusters)
        return ids, [self.cluster_popularity(cid) for cid in ids]

    def cluster_of(self, entity_id: EntityId) -> Cluster:
        """The cluster an entity belongs to."""
        return self.clusters[self.entity(entity_id).cluster_id]

    # ------------------------------------------------------------------
    # Keyphrases: the latent phrase model of an entity
    # ------------------------------------------------------------------
    def entity_phrases(self, entity_id: EntityId) -> List[Tuple[str, ...]]:
        """Deterministic keyphrases of an entity from its theme words.

        A mixture of one-, two- and three-word phrases combining the
        entity's unique words with its cluster's shared words, so related
        entities overlap partially (never exactly) in their phrase sets —
        the regime KORE's partial matching is designed for.
        """
        entity = self.entity(entity_id)
        shared = list(entity.shared_words)
        unique = list(entity.unique_words)
        phrases: List[Tuple[str, ...]] = []
        for offset, word in enumerate(unique):
            phrases.append((word,))
            phrases.append((shared[offset % len(shared)], word))
        for offset in range(0, len(unique) - 1):
            phrases.append(
                (
                    shared[(offset + 1) % len(shared)],
                    unique[offset],
                    unique[offset + 1],
                )
            )
        for offset in range(0, len(shared), 2):
            pair = shared[offset : offset + 2]
            if len(pair) == 2:
                phrases.append(tuple(pair))
        return phrases

    def latent_relatedness(self, a: EntityId, b: EntityId) -> float:
        """Ground-truth relatedness: weighted theme-word overlap.

        Used to derive the relatedness gold standard; unique-word overlap
        counts more than shared cluster vocabulary.
        """
        ea, eb = self.entity(a), self.entity(b)
        unique_overlap = len(
            set(ea.unique_words) & set(eb.unique_words)
        )
        shared_overlap = len(
            set(ea.shared_words) & set(eb.shared_words)
        )
        same_cluster = 1.0 if ea.cluster_id == eb.cluster_id else 0.0
        return 3.0 * unique_overlap + shared_overlap + 2.0 * same_cluster
