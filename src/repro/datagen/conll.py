"""CoNLL-YAGO-style news-wire corpus (Section 3.6.1).

The paper's corpus has 1,393 Reuters articles split into train (946),
testa (216, development) and testb (231, test), with ~25 mentions per
article of which roughly 20% refer to out-of-KB entities.  This generator
reproduces that shape over the synthetic world:

* most documents cover a single topical cluster;
* a configurable fraction are *heterogeneous* — two clusters mixed, which is
  where unconditional coherence goes astray and the coherence robustness
  test earns its keep;
* per-mention own-context probability is moderate, so a share of mentions is
  resolvable only jointly;
* out-of-KB mentions arise naturally from the world's out-of-KB entities.

``scale`` shrinks all split sizes proportionally (tests use small scales;
the benchmark default reproduces the paper's 946/216/231 split).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.datagen.documents import DocumentGenerator, DocumentSpec
from repro.datagen.world import World
from repro.errors import DatasetError
from repro.types import AnnotatedDocument
from repro.utils.rng import SeededRng

#: The paper's split sizes.
TRAIN_SIZE = 946
TESTA_SIZE = 216
TESTB_SIZE = 231


@dataclass
class ConllConfig:
    """Size and composition knobs of the CoNLL-style corpus."""
    seed: int = 303
    scale: float = 1.0
    mentions_low: int = 6
    mentions_high: int = 12
    ambiguous_prob: float = 0.8
    context_prob: float = 0.6
    #: Fraction of two-cluster "coherence-trap" documents.
    heterogeneous_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise DatasetError("scale must be positive")


@dataclass
class ConllCorpus:
    """The three splits, mirroring the original CoNLL document ranges."""

    train: List[AnnotatedDocument] = field(default_factory=list)
    testa: List[AnnotatedDocument] = field(default_factory=list)
    testb: List[AnnotatedDocument] = field(default_factory=list)

    def all_documents(self) -> List[AnnotatedDocument]:
        """train + testa + testb concatenated."""
        return self.train + self.testa + self.testb

    def properties(self) -> Dict[str, float]:
        """Dataset-property statistics in the shape of Table 3.1."""
        docs = self.all_documents()
        mentions = sum(len(d.gold) for d in docs)
        no_entity = sum(len(d.out_of_kb_gold()) for d in docs)
        words = sum(len(d.document.tokens) for d in docs)
        distinct = sum(
            len({ann.mention.surface for ann in d.gold}) for d in docs
        )
        return {
            "articles": len(docs),
            "mentions_total": mentions,
            "mentions_no_entity": no_entity,
            "words_per_article_avg": words / len(docs) if docs else 0.0,
            "mentions_per_article_avg": (
                mentions / len(docs) if docs else 0.0
            ),
            "distinct_mentions_per_article_avg": (
                distinct / len(docs) if docs else 0.0
            ),
        }


def generate_conll(
    world: World, config: Optional[ConllConfig] = None
) -> ConllCorpus:
    """Generate the corpus with train/testa/testb splits."""
    config = config if config is not None else ConllConfig()
    rng = SeededRng(config.seed).fork("conll")
    generator = DocumentGenerator(world, seed=config.seed)
    sizes = {
        "train": max(1, int(TRAIN_SIZE * config.scale)),
        "testa": max(1, int(TESTA_SIZE * config.scale)),
        "testb": max(1, int(TESTB_SIZE * config.scale)),
    }
    cluster_ids, cluster_weights = world.cluster_weights()
    corpus = ConllCorpus()
    doc_number = 0
    for split_name in ("train", "testa", "testb"):
        documents = getattr(corpus, split_name)
        for _ in range(sizes[split_name]):
            doc_number += 1
            documents.append(
                _generate_document(
                    generator,
                    world,
                    cluster_ids,
                    cluster_weights,
                    config,
                    rng,
                    doc_number,
                )
            )
    return corpus


def _generate_document(
    generator: DocumentGenerator,
    world: World,
    cluster_ids: Sequence[int],
    cluster_weights: Sequence[float],
    config: ConllConfig,
    rng: SeededRng,
    doc_number: int,
) -> AnnotatedDocument:
    # News coverage follows popularity: popular clusters appear in more
    # articles, which is what makes the anchor prior an informative
    # baseline.
    if rng.maybe(config.heterogeneous_fraction) and len(cluster_ids) > 1:
        first = rng.weighted_choice(cluster_ids, cluster_weights)
        second = rng.weighted_choice(cluster_ids, cluster_weights)
        while second == first:
            second = rng.weighted_choice(cluster_ids, cluster_weights)
        chosen_clusters = [first, second]
    else:
        chosen_clusters = [rng.weighted_choice(cluster_ids, cluster_weights)]
    spec = DocumentSpec(
        doc_id=f"conll-{doc_number:04d}",
        cluster_ids=chosen_clusters,
        num_mentions=rng.randint(config.mentions_low, config.mentions_high),
        ambiguous_prob=config.ambiguous_prob,
        context_prob=config.context_prob,
        surface_choice="primary",
    )
    return generator.generate(spec)
