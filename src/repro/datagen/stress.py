"""Large-scale deterministic KB generation for scale-out benchmarks.

The :mod:`world`/:mod:`wikipedia` generators model the *statistics* of an
encyclopedia faithfully but build rich per-entity state (name systems,
clusters, articles) that tops out around a few thousand entities.  The
snapshot and serving benchmarks need the opposite trade-off: 100k–1M
entities with realistic component *shapes* (bounded vocabulary, skewed
link degrees, ambiguous names, anchor priors) produced in linear time.

:func:`generate_stress_kb` builds such a KB directly — no intermediate
world or article dump — from pure integer mixing, so the result is
bit-reproducible for a given :class:`StressConfig` across processes and
platforms and needs no RNG state at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kb.entity import Entity
from repro.kb.knowledge_base import KnowledgeBase

_TYPES = ("person", "organization", "location", "event", "artifact")


def _mix(*parts: int) -> int:
    """One 32-bit multiplicative hash over the given integers.

    splitmix-style constants; good avalanche is all that matters — the
    output only spreads indices over bounded ranges.
    """
    h = 0x811C9DC5
    for part in parts:
        h ^= part & 0xFFFFFFFF
        h = (h * 0x85EBCA6B) & 0xFFFFFFFF
        h ^= h >> 13
        h = (h * 0xC2B2AE35) & 0xFFFFFFFF
        h ^= h >> 16
    return h


@dataclass(frozen=True)
class StressConfig:
    """Shape of the generated KB.

    ``entities`` is the scale knob (100k–1M for the snapshot benchmarks).
    ``vocabulary_words`` bounds the word universe so document frequencies
    stay realistic as the KB grows; ``family_names`` bounds the shared
    surname pool, which is what makes a slice of the dictionary ambiguous
    (several entities per name, as in the real world's "John Smith").

    ``candidate_pool``, when >= 2, additionally registers one shared
    ``Pool#####`` surface per consecutive group of that many entities, so
    every pooled mention retrieves exactly ``candidate_pool`` candidates.
    This is the pre-ranker benchmark's knob: it makes candidate-set size
    a controlled variable instead of an emergent property of the name
    system (0 disables the pools).
    """

    entities: int = 100_000
    seed: int = 17
    vocabulary_words: int = 4_000
    family_names: int = 997
    links_per_entity: int = 3
    phrases_per_entity: int = 3
    phrase_words: int = 3
    ambiguous_fraction: float = 0.05
    candidate_pool: int = 0

    def __post_init__(self) -> None:
        if self.entities < 1:
            raise ValueError("entities must be >= 1")
        if self.vocabulary_words < self.phrase_words:
            raise ValueError("vocabulary_words must cover one phrase")
        if self.family_names < 1:
            raise ValueError("family_names must be >= 1")
        if not 0.0 <= self.ambiguous_fraction <= 1.0:
            raise ValueError("ambiguous_fraction must be in [0, 1]")
        if self.candidate_pool == 1 or self.candidate_pool < 0:
            raise ValueError(
                "candidate_pool must be 0 (disabled) or >= 2"
            )


def generate_stress_kb(config: StressConfig) -> KnowledgeBase:
    """Build the stress KB the config describes, in one linear pass.

    Per entity: one typed record, a canonical two-token name, ~Zipf
    anchor mass on that name, ``links_per_entity`` out-links (skewed
    toward low-index "hub" entities so in-degrees are realistic), and
    ``phrases_per_entity`` keyphrases over the bounded vocabulary.  Every
    ``ambiguous_fraction``-th entity additionally registers its bare
    family name, giving the dictionary genuinely ambiguous entries.
    """
    n = config.entities
    seed = config.seed
    vocab = [f"w{i:05d}" for i in range(config.vocabulary_words)]
    families = [f"Fam{i:04d}" for i in range(config.family_names)]
    kb = KnowledgeBase()
    ambiguous_every = (
        int(1.0 / config.ambiguous_fraction)
        if config.ambiguous_fraction > 0
        else 0
    )

    def name_parts(index: int) -> tuple:
        family = families[_mix(seed, index, 1) % len(families)]
        given = f"G{_mix(seed, index, 2) % 9973:04d}"
        return given, family

    def entity_id_of(index: int) -> str:
        given, family = name_parts(index)
        return f"S{index:07d}_{given}_{family}"

    for i in range(n):
        given, family = name_parts(i)
        entity_id = entity_id_of(i)
        # Zipf-ish popularity: low indices are heavy, the tail is flat.
        popularity = 1.0 + 1000.0 / (1 + i)
        kb.add_entity(
            Entity(
                entity_id=entity_id,
                canonical_name=f"{given} {family}",
                types=(_TYPES[_mix(seed, i, 3) % len(_TYPES)],),
                domain=f"d{_mix(seed, i, 4) % 13}",
                popularity=popularity,
            )
        )
        kb.dictionary.add_name(
            f"{given} {family}",
            entity_id,
            source="anchor",
            anchor_count=1 + _mix(seed, i, 5) % 7,
        )
        if ambiguous_every and i % ambiguous_every == 0:
            kb.dictionary.add_name(
                family, entity_id, source="anchor", anchor_count=1
            )
        if config.candidate_pool >= 2:
            # Shared pooled surface: the _mix-derived anchor mass keeps
            # the members' priors distinct (the pre-ranker's protected
            # prior-top candidate must be unambiguous).
            kb.dictionary.add_name(
                f"Pool{i // config.candidate_pool:05d}",
                entity_id,
                source="anchor",
                anchor_count=1 + _mix(seed, i, 9) % 9,
            )
        for j in range(config.links_per_entity):
            # Square the uniform variate to skew targets toward low
            # indices: hubs collect in-links, the tail stays sparse.
            u = _mix(seed, i, 6, j) / 0xFFFFFFFF
            target = int(u * u * n) % n
            if target != i:
                kb.links.add_link(entity_id, entity_id_of(target))
        for j in range(config.phrases_per_entity):
            phrase = tuple(
                vocab[_mix(seed, i, 7, j, k) % len(vocab)]
                for k in range(config.phrase_words)
            )
            kb.keyphrases.add_keyphrase(
                entity_id, phrase, count=1 + _mix(seed, i, 8, j) % 5
            )
    return kb
