"""Pseudo-natural vocabulary generation.

Generates pronounceable lower-case words from syllables, partitioned into a
global *background* vocabulary (filler text) and per-domain *topic*
vocabularies (from which entity theme words and keyphrases are drawn).
Words are unique across partitions so that observing a topic word in a
document is genuine evidence for its domain, mirroring how real topical
vocabulary behaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import DatasetError
from repro.utils.rng import SeededRng

_ONSETS = [
    "b", "br", "c", "ch", "cl", "d", "dr", "f", "fl", "g", "gr", "h", "j",
    "k", "l", "m", "n", "p", "pl", "pr", "r", "s", "sh", "sl", "st", "t",
    "th", "tr", "v", "w", "z",
]
_VOWELS = ["a", "e", "i", "o", "u", "ai", "ea", "ou", "io"]
_CODAS = ["", "n", "r", "l", "s", "t", "m", "nd", "rn", "st", "ck", "x"]

#: Default topical domains of the synthetic world.
DOMAINS = ("music", "sports", "politics", "business", "tech", "film")


def make_word(rng: SeededRng, syllables: int) -> str:
    """One pronounceable pseudo-word with the given syllable count."""
    parts: List[str] = []
    for _ in range(syllables):
        parts.append(rng.choice(_ONSETS))
        parts.append(rng.choice(_VOWELS))
    parts.append(rng.choice(_CODAS))
    return "".join(parts)


@dataclass
class Vocabulary:
    """Partitioned word inventory of the synthetic world."""

    background: List[str] = field(default_factory=list)
    topics: Dict[str, List[str]] = field(default_factory=dict)

    def topic_words(self, domain: str) -> List[str]:
        """The topic vocabulary of a domain."""
        if domain not in self.topics:
            raise DatasetError(f"unknown domain: {domain!r}")
        return self.topics[domain]

    @property
    def domains(self) -> List[str]:
        """All domains, sorted."""
        return sorted(self.topics)

    def all_words(self) -> List[str]:
        """Background plus all topic words."""
        words = list(self.background)
        for domain in sorted(self.topics):
            words.extend(self.topics[domain])
        return words


def generate_vocabulary(
    seed: int,
    background_size: int = 400,
    topic_size: int = 160,
    domains: Sequence[str] = DOMAINS,
) -> Vocabulary:
    """Generate the partitioned vocabulary deterministically.

    Uniqueness across all partitions is enforced; collisions are retried
    with more syllables.
    """
    rng = SeededRng(seed).fork("vocabulary")
    seen = set()

    def fresh_word(source: SeededRng, syllables: int) -> str:
        for attempt in range(100):
            word = make_word(source, syllables + (attempt // 20))
            if word not in seen:
                seen.add(word)
                return word
        raise DatasetError("could not generate a unique word")

    background = [
        fresh_word(rng, 1 + (index % 2)) for index in range(background_size)
    ]
    topics: Dict[str, List[str]] = {}
    for domain in domains:
        domain_rng = rng.fork(f"topic:{domain}")
        topics[domain] = [
            fresh_word(domain_rng, 2) for _ in range(topic_size)
        ]
    return Vocabulary(background=background, topics=topics)
