"""WP-style Wikipedia slice (Section 4.6.1).

The paper's WP dataset takes heavy-metal-band articles, keeps sentences with
at least three entity link anchors, and — as a stress test — replaces every
person name with the family name only while disabling the popularity prior.
Here we generate article-like sentences from the *music* clusters with the
same stress construction: every mention uses its primary short form
(family name for persons), own context is rich (article prose), and the
evaluation harness pairs this corpus with a prior-free AIDA configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.datagen.documents import DocumentGenerator, DocumentSpec
from repro.datagen.world import World
from repro.errors import DatasetError
from repro.types import AnnotatedDocument
from repro.utils.rng import SeededRng


@dataclass
class WpSliceConfig:
    """Size and shape knobs of the WP-style slice."""
    seed: int = 505
    num_sentences: int = 200
    domain: str = "music"
    mentions_low: int = 3
    mentions_high: int = 5


def generate_wp_slice(
    world: World, config: Optional[WpSliceConfig] = None
) -> List[AnnotatedDocument]:
    """Generate the music-domain stress sentences."""
    config = config if config is not None else WpSliceConfig()
    rng = SeededRng(config.seed).fork("wpslice")
    generator = DocumentGenerator(world, seed=config.seed)
    domain_clusters = [
        cid
        for cid in sorted(world.clusters)
        if world.clusters[cid].domain == config.domain
    ]
    if not domain_clusters:
        raise DatasetError(
            f"world has no clusters in domain {config.domain!r}"
        )
    documents: List[AnnotatedDocument] = []
    for index in range(config.num_sentences):
        spec = DocumentSpec(
            doc_id=f"wp-{index + 1:04d}",
            cluster_ids=[rng.choice(domain_clusters)],
            num_mentions=rng.randint(
                config.mentions_low, config.mentions_high
            ),
            ambiguous_prob=1.0,
            context_prob=0.85,
            distractor_prob=0.0,
            filler_sentences=1,
            surface_choice="primary",
        )
        documents.append(generator.generate(spec))
    return documents
