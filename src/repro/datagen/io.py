"""Corpus serialization.

Annotated corpora are written as JSON Lines — one document per line with
its tokens, mention spans, gold entities and timestamp — the format the
original AIDA project distributes its CoNLL-YAGO annotations in (modulo
syntax).  Serialized corpora let experiments re-run without regenerating
the world, and make the synthetic gold standards inspectable.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.errors import DatasetError
from repro.types import (
    AnnotatedDocument,
    Annotation,
    Document,
    Mention,
)

FORMAT_VERSION = 1


def document_to_dict(annotated: AnnotatedDocument) -> dict:
    """One document as a plain JSON-serializable dict."""
    return {
        "version": FORMAT_VERSION,
        "doc_id": annotated.doc_id,
        "timestamp": annotated.document.timestamp,
        "tokens": list(annotated.document.tokens),
        "gold": [
            {
                "surface": annotation.mention.surface,
                "start": annotation.mention.start,
                "end": annotation.mention.end,
                "entity": annotation.entity,
            }
            for annotation in annotated.gold
        ],
    }


def document_from_dict(data: dict) -> AnnotatedDocument:
    """Inverse of :func:`document_to_dict`, with validation."""
    try:
        version = data["version"]
        if version != FORMAT_VERSION:
            raise DatasetError(
                f"unsupported corpus format version: {version}"
            )
        tokens = tuple(str(tok) for tok in data["tokens"])
        gold: List[Annotation] = []
        for row in data["gold"]:
            mention = Mention(
                surface=str(row["surface"]),
                start=int(row["start"]),
                end=int(row["end"]),
            )
            if mention.end > len(tokens):
                raise DatasetError(
                    f"mention span {mention.start}:{mention.end} exceeds "
                    f"document length {len(tokens)}"
                )
            gold.append(
                Annotation(mention=mention, entity=str(row["entity"]))
            )
        document = Document(
            doc_id=str(data["doc_id"]),
            tokens=tokens,
            mentions=tuple(ann.mention for ann in gold),
            timestamp=int(data.get("timestamp", 0)),
        )
        return AnnotatedDocument(document=document, gold=tuple(gold))
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetError(f"malformed corpus record: {exc}") from exc


def save_corpus(
    documents: Iterable[AnnotatedDocument], path: str
) -> int:
    """Write documents as JSON Lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for annotated in documents:
            handle.write(
                json.dumps(
                    document_to_dict(annotated), ensure_ascii=False,
                    sort_keys=True,
                )
            )
            handle.write("\n")
            count += 1
    return count


def load_corpus(path: str) -> List[AnnotatedDocument]:
    """Read a JSON Lines corpus written by :func:`save_corpus`."""
    documents: List[AnnotatedDocument] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DatasetError(
                    f"{path}:{line_number}: invalid JSON: {exc}"
                ) from exc
            documents.append(document_from_dict(data))
    return documents
