"""Annotated document generation.

A document is generated from a *topic*: one (or, for deliberately
heterogeneous "coherence-trap" texts, several) world clusters.  Each chosen
entity yields one mention sentence containing:

* the mention surface — an ambiguous short form with probability
  ``ambiguous_prob``, otherwise the canonical name;
* with probability ``context_prob``, *own context*: a few of the entity's
  theme words placed adjacently (so the keyphrase chunker of Chapter 5
  re-extracts them as phrases) — mentions without own context are only
  resolvable through coherence with the rest of the document;
* filler from the background vocabulary.

Gold annotations map every mention to its true entity, or to
:data:`~repro.types.OUT_OF_KB` when the entity is not in the knowledge
base.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datagen.world import World, WorldEntity
from repro.errors import DatasetError
from repro.types import (
    AnnotatedDocument,
    Annotation,
    Document,
    EntityId,
    Mention,
    OUT_OF_KB,
)
from repro.utils.rng import SeededRng

_VERBS = (
    "played", "announced", "revealed", "signed", "visited", "recorded",
    "launched", "defeated", "joined", "met", "opened", "led",
)


@dataclass
class DocumentSpec:
    """Recipe for one generated document."""

    doc_id: str
    cluster_ids: Sequence[int]
    #: Entities that must appear (e.g. out-of-KB or emerging entities).
    forced_entities: Sequence[EntityId] = ()
    #: Number of entity mentions (including forced ones).
    num_mentions: int = 8
    #: Probability a mention uses an ambiguous short form.
    ambiguous_prob: float = 0.7
    #: Probability a mention gets its own theme-word context.
    context_prob: float = 0.75
    #: Maximum number of mentions that receive own context (None =
    #: unlimited).  KORE50-style sentences give one mention an anchor
    #: context and force the rest to resolve through coherence.
    context_limit: Optional[int] = None
    #: Probability of swapping one slot for a popular out-of-cluster entity.
    distractor_prob: float = 0.15
    #: Day index for news-stream corpora.
    timestamp: int = 0
    #: Number of pure filler sentences.
    filler_sentences: int = 2
    #: Which short form an ambiguous mention uses: "primary" (family name /
    #: first short form), "secondary" (first name, when available — the
    #: KORE50 stress pattern), or "mixed" (random among short forms).
    surface_choice: str = "primary"
    #: Bias entity sampling towards long-tail (inverse-popularity) members.
    prefer_long_tail: bool = False
    #: Exponent of the popularity bias when sampling cluster members:
    #: real text mentions popular entities more often (which is what makes
    #: anchor-frequency priors informative).  0 disables the bias.
    popularity_bias: float = 0.5
    #: Metonymy: when a sampled entity is a location whose cluster has an
    #: organization sharing its name (a team named after its city, a
    #: government referred to by its country), the document refers to the
    #: organization with this probability — sports news says "Barcelona"
    #: and means the club (Section 3.6.4).
    metonymy_bias: float = 0.65
    #: Words to use as an entity's own context instead of its latent
    #: unique words (Chapter 5's news-enrichment scenario); maps entity id
    #: to replacement words.
    context_overrides: Dict[EntityId, Sequence[str]] = field(
        default_factory=dict
    )


class DocumentGenerator:
    """Generates :class:`AnnotatedDocument` instances from a world."""

    def __init__(self, world: World, seed: int = 1234):
        self.world = world
        self._seed = seed

    def generate(self, spec: DocumentSpec) -> AnnotatedDocument:
        """Generate one annotated document from the spec."""
        rng = SeededRng(self._seed).fork(f"doc:{spec.doc_id}")
        entities = self._choose_entities(spec, rng)
        tokens: List[str] = []
        annotations: List[Annotation] = []
        context_budget = (
            spec.context_limit
            if spec.context_limit is not None
            else len(entities)
        )
        for entity_id in entities:
            allow_context = context_budget > 0
            sentence_tokens, mention, used_context = self._mention_sentence(
                entity_id, spec, rng, offset=len(tokens),
                allow_context=allow_context,
            )
            if used_context:
                context_budget -= 1
            tokens.extend(sentence_tokens)
            entity = self.world.entity(entity_id)
            gold = entity_id if entity.in_kb else OUT_OF_KB
            annotations.append(Annotation(mention=mention, entity=gold))
        for index in range(spec.filler_sentences):
            tokens.extend(self._filler_sentence(rng))
        document = Document(
            doc_id=spec.doc_id,
            tokens=tuple(tokens),
            mentions=tuple(ann.mention for ann in annotations),
            timestamp=spec.timestamp,
        )
        return AnnotatedDocument(document=document, gold=tuple(annotations))

    # ------------------------------------------------------------------
    # Entity selection
    # ------------------------------------------------------------------
    def _choose_entities(
        self, spec: DocumentSpec, rng: SeededRng
    ) -> List[EntityId]:
        chosen: List[EntityId] = list(spec.forced_entities)
        pool: List[EntityId] = []
        for cluster_id in spec.cluster_ids:
            if cluster_id not in self.world.clusters:
                raise DatasetError(f"unknown cluster: {cluster_id}")
            pool.extend(
                member
                for member in self.world.cluster_members(cluster_id)
                if member not in chosen
                and not self.world.entity(member).is_emerging
            )
        needed = max(spec.num_mentions - len(chosen), 0)
        if spec.prefer_long_tail and pool:
            weights = [
                1.0 / self.world.entity(eid).popularity for eid in pool
            ]
            chosen.extend(
                rng.pick_k_weighted(pool, weights, needed, unique=True)
            )
        elif spec.popularity_bias > 0.0 and pool:
            weights = [
                self.world.entity(eid).popularity ** spec.popularity_bias
                for eid in pool
            ]
            chosen.extend(
                rng.pick_k_weighted(pool, weights, needed, unique=True)
            )
        else:
            chosen.extend(rng.sample(pool, needed))
        chosen = [
            self._apply_metonymy(entity_id, spec, rng)
            for entity_id in chosen
        ]
        # Occasionally swap one cluster entity for a popular outsider —
        # the distractor that makes unconditional coherence risky.
        if (
            len(chosen) > len(spec.forced_entities)
            and rng.maybe(spec.distractor_prob)
        ):
            outsiders = [
                eid
                for eid in self.world.in_kb_ids()
                if self.world.entity(eid).cluster_id
                not in set(spec.cluster_ids)
            ]
            if outsiders:
                weights = [
                    self.world.entity(eid).popularity for eid in outsiders
                ]
                swap_in = rng.weighted_choice(outsiders, weights)
                chosen[-1] = swap_in
        return rng.shuffled(chosen)

    _LOCATION_TYPES = frozenset({"city", "country", "region"})
    _ORG_TYPES = frozenset({"football_club", "government", "sports_team"})

    def _apply_metonymy(
        self, entity_id: EntityId, spec: DocumentSpec, rng: SeededRng
    ) -> EntityId:
        """Replace a location by the same-named organization of its
        cluster with probability ``metonymy_bias``."""
        entity = self.world.entity(entity_id)
        if entity_id in spec.forced_entities:
            return entity_id
        if not set(entity.types) & self._LOCATION_TYPES:
            return entity_id
        if not rng.maybe(spec.metonymy_bias):
            return entity_id
        names = set(entity.names.all_forms)
        for member in self.world.cluster_members(entity.cluster_id):
            other = self.world.entity(member)
            if member == entity_id or not other.in_kb:
                continue
            if not set(other.types) & self._ORG_TYPES:
                continue
            if names & set(other.names.all_forms):
                return member
        return entity_id

    # ------------------------------------------------------------------
    # Sentence assembly
    # ------------------------------------------------------------------
    def _surface_form(
        self, entity: WorldEntity, spec: DocumentSpec, rng: SeededRng
    ) -> str:
        shorts = entity.names.short_forms
        if not shorts or not rng.maybe(spec.ambiguous_prob):
            return entity.names.canonical
        if spec.surface_choice == "secondary" and len(shorts) > 1:
            return shorts[1]
        if spec.surface_choice == "mixed":
            return rng.choice(list(shorts))
        return shorts[0]

    def _mention_sentence(
        self,
        entity_id: EntityId,
        spec: DocumentSpec,
        rng: SeededRng,
        offset: int,
        allow_context: bool = True,
    ) -> Tuple[List[str], Mention, bool]:
        entity = self.world.entity(entity_id)
        surface = self._surface_form(entity, spec, rng)
        surface_tokens = surface.split()
        has_context = allow_context and rng.maybe(spec.context_prob)
        before: List[str] = []
        after: List[str] = [rng.choice(_VERBS)]
        if has_context:
            # Own context: adjacent (shared, unique) theme-word pairs that
            # mirror the entity's keyphrases.
            own_words = list(
                spec.context_overrides.get(
                    entity.entity_id, entity.unique_words
                )
            )
            unique = rng.sample(own_words, min(2, len(own_words)))
            while len(unique) < 2:
                unique.append(unique[0])
            shared = rng.sample(list(entity.shared_words), 2)
            after.extend([shared[0], unique[0]])
            after.append("in")
            after.extend([shared[1], unique[1]])
        else:
            # Sparse context: a lone cluster word at most.
            if rng.maybe(0.5):
                after.append(rng.choice(list(entity.shared_words)))
        after.append(rng.choice(self.world.vocabulary.background))
        after.append(".")
        tokens = before + surface_tokens + after
        start = offset + len(before)
        mention = Mention(
            surface=surface, start=start, end=start + len(surface_tokens)
        )
        return tokens, mention, has_context

    def _filler_sentence(self, rng: SeededRng) -> List[str]:
        length = rng.randint(5, 9)
        words = [
            rng.choice(self.world.vocabulary.background)
            for _ in range(length)
        ]
        words.append(".")
        return words

    # ------------------------------------------------------------------
    # Convenience corpus helper
    # ------------------------------------------------------------------
    def generate_many(
        self, specs: Sequence[DocumentSpec]
    ) -> List[AnnotatedDocument]:
        """Generate a document per spec."""
        return [self.generate(spec) for spec in specs]
