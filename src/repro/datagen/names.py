"""Name material with constructed ambiguity.

The central difficulty of NED is that names are shared: "Page" may be a
guitarist, an executive, or a town; "Kashmir" a region or a song; country
names double as national sports teams (metonymy).  This module generates
capitalized name tokens and hands out *shared* short names deliberately, so
the synthetic corpora exhibit the same ambiguity structure the paper's
corpora do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import DatasetError
from repro.utils.rng import SeededRng
from repro.datagen.vocabulary import make_word


def _capitalize(word: str) -> str:
    return word[:1].upper() + word[1:]


@dataclass
class NamePools:
    """Reusable pools of name tokens.

    ``family_names`` and ``place_names`` are intentionally small relative to
    the number of entities drawing from them, which is what creates
    ambiguity: several persons share one family name, a sports team shares
    its city's name, a song shares a region's name.
    """

    first_names: List[str] = field(default_factory=list)
    family_names: List[str] = field(default_factory=list)
    place_names: List[str] = field(default_factory=list)
    org_words: List[str] = field(default_factory=list)
    title_words: List[str] = field(default_factory=list)


def generate_name_pools(
    seed: int,
    first_names: int = 60,
    family_names: int = 80,
    place_names: int = 60,
    org_words: int = 60,
    title_words: int = 80,
) -> NamePools:
    """Generate all name-token pools (unique across pools)."""
    rng = SeededRng(seed).fork("names")
    seen: Set[str] = set()

    def fresh(source: SeededRng, syllables: int) -> str:
        for attempt in range(100):
            word = _capitalize(make_word(source, syllables + attempt // 20))
            if word not in seen:
                seen.add(word)
                return word
        raise DatasetError("could not generate a unique name token")

    return NamePools(
        first_names=[fresh(rng.fork("first"), 1) for _ in range(first_names)],
        family_names=[
            fresh(rng.fork("family"), 2) for _ in range(family_names)
        ],
        place_names=[fresh(rng.fork("place"), 2) for _ in range(place_names)],
        org_words=[fresh(rng.fork("org"), 2) for _ in range(org_words)],
        title_words=[fresh(rng.fork("title"), 1) for _ in range(title_words)],
    )


@dataclass(frozen=True)
class EntityNames:
    """The naming of one entity: its canonical full name plus the shorter,
    ambiguous surface forms documents may use."""

    canonical: str
    short_forms: Tuple[str, ...] = ()

    @property
    def all_forms(self) -> Tuple[str, ...]:
        """Canonical name followed by the distinct short forms."""
        forms = [self.canonical]
        for short in self.short_forms:
            if short not in forms:
                forms.append(short)
        return tuple(forms)


class NameFactory:
    """Hands out entity names, deliberately re-using short forms.

    The factory tracks how often each short form has been given out so the
    world generator can steer the ambiguity level.
    """

    def __init__(self, pools: NamePools, rng: SeededRng):
        self._pools = pools
        self._rng = rng
        self._short_form_uses: Dict[str, int] = {}

    def uses_of(self, short_form: str) -> int:
        """How many entities received this short form so far."""
        return self._short_form_uses.get(short_form, 0)

    def _note(self, *short_forms: str) -> None:
        for form in short_forms:
            self._short_form_uses[form] = (
                self._short_form_uses.get(form, 0) + 1
            )

    def person_name(
        self, shared_family: Optional[str] = None
    ) -> EntityNames:
        """First + family name; the bare family name (and first name) are
        the ambiguous short forms.  Pass ``shared_family`` to force family-
        name collision with other persons."""
        first = self._rng.choice(self._pools.first_names)
        family = (
            shared_family
            if shared_family is not None
            else self._rng.choice(self._pools.family_names)
        )
        canonical = f"{first} {family}"
        self._note(family, first)
        return EntityNames(canonical=canonical, short_forms=(family, first))

    def place_name(self, base: Optional[str] = None) -> EntityNames:
        """A single-token place name (city, region, country)."""
        name = base if base is not None else self._rng.choice(
            self._pools.place_names
        )
        self._note(name)
        return EntityNames(canonical=name, short_forms=(name,))

    def team_name(self, place: str) -> EntityNames:
        """A sports team named after its city — the metonymy pattern: the
        bare city name is a short form of the team."""
        suffix = self._rng.choice(["United", "City", "Rovers", "Athletic"])
        canonical = f"{place} {suffix}"
        self._note(place)
        return EntityNames(canonical=canonical, short_forms=(place,))

    def org_name(self, with_acronym: bool = False) -> EntityNames:
        """A multi-word organization name, optionally with an acronym."""
        words = self._rng.sample(self._pools.org_words, 2)
        suffix = self._rng.choice(["Group", "Corporation", "Agency", "Labs"])
        canonical = " ".join(words + [suffix])
        shorts: List[str] = [words[0]]
        if with_acronym:
            acronym = "".join(w[0].upper() for w in words + [suffix])
            shorts.append(acronym)
        self._note(*shorts)
        return EntityNames(canonical=canonical, short_forms=tuple(shorts))

    def work_title(self, shared: Optional[str] = None) -> EntityNames:
        """A title for a song/album/film — one or two title words; pass
        ``shared`` to collide with a place or another work (the
        "Kashmir" pattern)."""
        if shared is not None:
            self._note(shared)
            return EntityNames(canonical=shared, short_forms=(shared,))
        if self._rng.maybe(0.5):
            name = self._rng.choice(self._pools.title_words)
        else:
            name = " ".join(self._rng.sample(self._pools.title_words, 2))
        self._note(name)
        return EntityNames(canonical=name, short_forms=(name,))

    def band_name(self) -> EntityNames:
        """A stylized band name; its title word is the short form."""
        word = self._rng.choice(self._pools.title_words)
        style = self._rng.choice(["The %s", "%s Brigade", "%s Machine"])
        canonical = style % word
        self._note(word)
        return EntityNames(canonical=canonical, short_forms=(word,))
