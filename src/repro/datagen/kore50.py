"""KORE50-style hard sentences (Section 4.6.1).

Fifty short sentences built to the paper's criteria: minimal context, high
mention density (about three mentions in ~14 words), maximal ambiguity
(every mention uses a short form; persons are referred to by a secondary
short form — the "first name only" pattern), and long-tail entities with
few incoming links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.datagen.documents import DocumentGenerator, DocumentSpec
from repro.datagen.world import World
from repro.types import AnnotatedDocument
from repro.utils.rng import SeededRng


@dataclass
class Kore50Config:
    """Size and stress knobs of the KORE50-style corpus."""
    seed: int = 404
    num_sentences: int = 50
    mentions_per_sentence: int = 3
    #: Mentions per sentence that get own ("anchor") context; the rest are
    #: resolvable only through entity coherence — short context is the
    #: whole point of this corpus.
    context_limit: int = 1


def generate_kore50(
    world: World, config: Optional[Kore50Config] = None
) -> List[AnnotatedDocument]:
    """Generate the hard short-sentence corpus."""
    config = config if config is not None else Kore50Config()
    rng = SeededRng(config.seed).fork("kore50")
    generator = DocumentGenerator(world, seed=config.seed)
    cluster_ids = sorted(world.clusters)
    documents: List[AnnotatedDocument] = []
    for index in range(config.num_sentences):
        spec = DocumentSpec(
            doc_id=f"kore50-{index + 1:02d}",
            cluster_ids=[rng.choice(cluster_ids)],
            num_mentions=config.mentions_per_sentence,
            ambiguous_prob=1.0,
            context_prob=1.0,
            context_limit=config.context_limit,
            distractor_prob=0.0,
            filler_sentences=0,
            surface_choice="secondary",
            prefer_long_tail=True,
        )
        documents.append(generator.generate(spec))
    return documents
