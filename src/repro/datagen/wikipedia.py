"""Synthetic encyclopedia dump.

Turns a :class:`~repro.datagen.world.World` into article records from which
the knowledge base is built, mirroring how YAGO/AIDA mine the real
Wikipedia:

* every **in-KB** world entity gets an article (out-of-KB entities never
  enter the dump — that is precisely what makes them out-of-KB);
* **anchors**: each article links to its cluster co-members, plus extra
  links to globally popular entities (chosen proportionally to popularity),
  so inlink counts grow with popularity and long-tail entities stay
  link-poor while remaining keyphrase-rich;
* **anchor counts** scale with the target's popularity — they are the
  evidence behind the popularity prior;
* **anchor texts** mix short (ambiguous) forms and canonical names;
* **citations** carry the entity's latent theme phrases, and **categories**
  combine type and theme — both become keyphrases via the KB builder.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.datagen.world import World, WorldEntity
from repro.kb.builder import ArticleRecord, KnowledgeBaseBuilder
from repro.kb.entity import Entity
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.schema import Taxonomy
from repro.types import EntityId
from repro.utils.rng import SeededRng

#: Probability that a link uses the target's short (ambiguous) form.
SHORT_FORM_ANCHOR_PROB = 0.65
#: Maximum number of extra (cross-cluster) links for the most popular entity.
MAX_EXTRA_LINKS = 30
#: Weight multiplier for same-domain targets when sampling extra links —
#: real encyclopedias link topically, which keeps inlink-overlap coherence
#: meaningful within a domain and weak across domains.
SAME_DOMAIN_LINK_BIAS = 4.0
#: Probability that a non-organization article links a given non-location
#: cluster co-member.  Sparse in-cluster linking leaves long-tail entities
#: genuinely link-poor — the regime where KORE outperforms Milne–Witten.
CLUSTER_LINK_PROB = 0.65


def _anchor_count(target: WorldEntity) -> int:
    """How often a given anchor is used for a target across the
    encyclopedia — grows sub-linearly with popularity."""
    return max(1, int(target.popularity**0.5))


class SyntheticWikipedia:
    """The article dump; build one with :meth:`generate`."""

    def __init__(self, world: World):
        self.world = world
        self.articles: Dict[EntityId, ArticleRecord] = {}

    @staticmethod
    def generate(world: World, seed: int = 101) -> "SyntheticWikipedia":
        """Generate the article dump for a world."""
        wikipedia = SyntheticWikipedia(world)
        rng = SeededRng(seed).fork("wikipedia")
        in_kb = world.in_kb_ids()
        popularity = {
            eid: world.entity(eid).popularity for eid in in_kb
        }
        max_pop = max(popularity.values()) if popularity else 1.0
        for entity_id in in_kb:
            article_rng = rng.fork(f"article:{entity_id}")
            wikipedia.articles[entity_id] = wikipedia._make_article(
                entity_id, in_kb, popularity, max_pop, article_rng
            )
        return wikipedia

    # ------------------------------------------------------------------
    # Article assembly
    # ------------------------------------------------------------------
    def _make_article(
        self,
        entity_id: EntityId,
        in_kb: List[EntityId],
        popularity: Dict[EntityId, float],
        max_pop: float,
        rng: SeededRng,
    ) -> ArticleRecord:
        world_entity = self.world.entity(entity_id)
        kb_entity = Entity(
            entity_id=entity_id,
            canonical_name=world_entity.names.canonical,
            types=world_entity.types,
            domain=world_entity.domain,
            popularity=world_entity.popularity,
        )
        anchors: Dict[Tuple[str, EntityId], int] = {}
        targets = self._link_targets(
            entity_id, in_kb, popularity, max_pop, rng
        )
        for target_id in targets:
            target = self.world.entity(target_id)
            anchor_text = self._anchor_text(target, rng)
            key = (anchor_text, target_id)
            anchors[key] = anchors.get(key, 0) + _anchor_count(target)
        categories = [
            f"{world_entity.shared_words[0]} {type_name}"
            for type_name in world_entity.types
        ]
        # Theme phrases carry usage-scale counts (growing with popularity)
        # so that the emerging-entity model difference can cancel
        # established vocabulary against news-harvested counts.
        phrase_count = max(2, int(world_entity.popularity**0.45))
        weighted_phrases = {
            " ".join(phrase): phrase_count
            for phrase in self.world.entity_phrases(entity_id)
        }
        return ArticleRecord(
            entity=kb_entity,
            redirects=[],
            disambiguation_names=list(world_entity.names.short_forms),
            anchors=anchors,
            categories=categories,
            citations=[],
            weighted_phrases=weighted_phrases,
            facts=[("domain", world_entity.domain)],
        )

    def _link_targets(
        self,
        entity_id: EntityId,
        in_kb: List[EntityId],
        popularity: Dict[EntityId, float],
        max_pop: float,
        rng: SeededRng,
    ) -> List[EntityId]:
        """Cluster co-members plus popularity-proportional extra links.

        Cluster links are hub-structured: ordinary members (players, songs,
        politicians) link to the cluster's organizations, works and people
        but rarely to its *locations* — a footballer's article links his
        club, not the club's city.  Organizations always link their
        locations.  This keeps inlink-overlap coherence able to separate a
        team from its identically-named city (the metonymy cases of
        Section 3.6.4).
        """
        cluster = self.world.cluster_of(entity_id)
        source_types = set(self.world.entity(entity_id).types)
        source_is_org = bool(
            source_types
            & {"band", "company", "football_club", "government", "party"}
        )
        targets = []
        for member in cluster.members:
            if member == entity_id or member not in popularity:
                continue
            member_types = set(self.world.entity(member).types)
            is_location = bool(
                member_types & {"city", "country", "region", "stadium"}
            )
            if is_location and not source_is_org and not rng.maybe(0.25):
                continue
            if (
                not is_location
                and not source_is_org
                and not rng.maybe(CLUSTER_LINK_PROB)
            ):
                continue
            targets.append(member)
        pop_norm = popularity[entity_id] / max_pop
        extra_count = int(pop_norm * MAX_EXTRA_LINKS)
        if extra_count > 0:
            domain = self.world.entity(entity_id).domain
            pool = [eid for eid in in_kb if eid != entity_id]
            weights = [
                popularity[eid]
                * (
                    SAME_DOMAIN_LINK_BIAS
                    if self.world.entity(eid).domain == domain
                    else 1.0
                )
                for eid in pool
            ]
            extras = rng.pick_k_weighted(pool, weights, extra_count)
            for extra in extras:
                if extra not in targets:
                    targets.append(extra)
        return targets

    def _anchor_text(self, target: WorldEntity, rng: SeededRng) -> str:
        if target.names.short_forms and rng.maybe(SHORT_FORM_ANCHOR_PROB):
            return rng.choice(list(target.names.short_forms))
        return target.names.canonical

    # ------------------------------------------------------------------
    # KB assembly
    # ------------------------------------------------------------------
    def build_kb(self, taxonomy: Optional[Taxonomy] = None) -> KnowledgeBase:
        """Assemble the knowledge base from the dump."""
        builder = KnowledgeBaseBuilder(taxonomy=taxonomy)
        for entity_id in sorted(self.articles):
            builder.add_article(self.articles[entity_id])
        return builder.build()


def build_world_kb(
    world: World, seed: int = 101, taxonomy: Optional[Taxonomy] = None
) -> Tuple[KnowledgeBase, SyntheticWikipedia]:
    """Generate the encyclopedia for *world* and build its knowledge base."""
    wikipedia = SyntheticWikipedia.generate(world, seed=seed)
    return wikipedia.build_kb(taxonomy=taxonomy), wikipedia
