"""Entity-relatedness ranking gold standard (Section 4.5.1).

The paper crowdsourced relative ranking judgments: for each of 21 seed
entities (popular representatives of four domains plus one singleton), 20
candidate entities drawn from the seed's article links were ranked by
relatedness.  Here the gold ranking comes from the world's *latent*
relatedness (theme-word overlap and cluster co-membership) with a pinch of
rank noise standing in for annotator disagreement.

Candidates span the full relatedness range: cluster co-members (highly
related), same-domain outsiders (somewhat related) and cross-domain
populars (remotely related) — matching how the paper mixed strongly and
remotely related candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datagen.world import World
from repro.errors import DatasetError
from repro.types import EntityId
from repro.utils.rng import SeededRng


@dataclass(frozen=True)
class RelatednessSeed:
    """One seed entity with its gold-ranked candidates (most related
    first)."""

    seed: EntityId
    domain: str
    ranked_candidates: Tuple[EntityId, ...]


@dataclass
class RelatednessGold:
    """The full gold standard: one ranked list per seed."""
    seeds: List[RelatednessSeed] = field(default_factory=list)

    def by_domain(self) -> Dict[str, List[RelatednessSeed]]:
        """Seeds grouped by domain."""
        grouped: Dict[str, List[RelatednessSeed]] = {}
        for seed in self.seeds:
            grouped.setdefault(seed.domain, []).append(seed)
        return grouped

    def all_entities(self) -> List[EntityId]:
        """Every entity appearing as seed or candidate."""
        ids = set()
        for seed in self.seeds:
            ids.add(seed.seed)
            ids.update(seed.ranked_candidates)
        return sorted(ids)


@dataclass
class RelatednessGoldConfig:
    """Size and noise knobs of the gold generator."""
    seed: int = 606
    seeds_per_domain: int = 5
    candidates_per_seed: int = 20
    #: Gaussian noise added to latent scores before ranking (annotator
    #: disagreement stand-in).
    rank_noise: float = 0.3
    domains: Sequence[str] = ("tech", "film", "music", "sports")


def generate_relatedness_gold(
    world: World, config: Optional[RelatednessGoldConfig] = None
) -> RelatednessGold:
    """Generate the ranked relatedness gold standard."""
    config = config if config is not None else RelatednessGoldConfig()
    rng = SeededRng(config.seed).fork("relgold")
    gold = RelatednessGold()
    for domain in config.domains:
        seeds = _domain_seeds(world, domain, config.seeds_per_domain)
        for seed_id in seeds:
            gold.seeds.append(
                _build_seed(world, seed_id, domain, config, rng)
            )
    return gold


def _domain_seeds(
    world: World, domain: str, count: int
) -> List[EntityId]:
    """The most popular in-KB entities of a domain."""
    members = [
        eid
        for eid in world.in_kb_ids()
        if world.entity(eid).domain == domain
        and not world.entity(eid).is_emerging
    ]
    if not members:
        raise DatasetError(f"world has no in-KB entities in {domain!r}")
    members.sort(key=lambda eid: -world.entity(eid).popularity)
    return members[:count]


def _build_seed(
    world: World,
    seed_id: EntityId,
    domain: str,
    config: RelatednessGoldConfig,
    rng: SeededRng,
) -> RelatednessSeed:
    seed_rng = rng.fork(f"seed:{seed_id}")
    cluster = world.cluster_of(seed_id)
    in_kb = set(world.in_kb_ids())
    close = [
        eid
        for eid in cluster.members
        if eid != seed_id and eid in in_kb
        and not world.entity(eid).is_emerging
    ]
    same_domain = [
        eid
        for eid in sorted(in_kb)
        if world.entity(eid).domain == domain
        and world.entity(eid).cluster_id != cluster.cluster_id
        and not world.entity(eid).is_emerging
    ]
    far = [
        eid
        for eid in sorted(in_kb)
        if world.entity(eid).domain != domain
        and not world.entity(eid).is_emerging
    ]
    candidates: List[EntityId] = list(close)
    need = config.candidates_per_seed - len(candidates)
    mid_count = max(need * 2 // 3, 0)
    candidates.extend(seed_rng.sample(same_domain, mid_count))
    candidates.extend(
        seed_rng.sample(far, config.candidates_per_seed - len(candidates))
    )
    candidates = candidates[: config.candidates_per_seed]
    noisy_scores = {
        eid: world.latent_relatedness(seed_id, eid)
        + seed_rng.gauss(0.0, config.rank_noise)
        for eid in candidates
    }
    ranked = tuple(
        sorted(candidates, key=lambda eid: (-noisy_scores[eid], eid))
    )
    return RelatednessSeed(
        seed=seed_id, domain=domain, ranked_candidates=ranked
    )
