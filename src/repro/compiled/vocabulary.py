"""Word interning: normalized words to dense ``int32`` ids.

One :class:`Vocabulary` is shared KB-wide by every compiled entity model
and every indexed document context, so a phrase word and a context token
match by integer comparison instead of string hashing.  Ids are assigned
densely in interning order, which makes the id space directly usable as
an array index.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

#: Sentinel id for words the vocabulary has never seen.
UNKNOWN = -1

_INT32_MAX = 2**31 - 1


class Vocabulary:
    """A word ↔ dense-id interner.

    Interning is append-only: an id, once assigned, never changes, so
    compiled models built at different times against the same vocabulary
    stay mutually consistent.
    """

    __slots__ = ("_ids", "_words")

    def __init__(self, words: Optional[Iterable[str]] = None):
        self._ids: Dict[str, int] = {}
        self._words: List[str] = []
        if words is not None:
            self.intern_all(words)

    def __len__(self) -> int:
        return len(self._words)

    def __contains__(self, word: str) -> bool:
        return word in self._ids

    def intern(self, word: str) -> int:
        """The word's id, assigning the next dense id on first sight."""
        wid = self._ids.get(word)
        if wid is None:
            wid = len(self._words)
            if wid > _INT32_MAX:
                raise OverflowError("vocabulary exceeds int32 id space")
            self._ids[word] = wid
            self._words.append(word)
        return wid

    def intern_all(self, words: Iterable[str]) -> None:
        """Intern every word in order."""
        for word in words:
            self.intern(word)

    def id_of(self, word: str) -> int:
        """The word's id, or :data:`UNKNOWN` (-1) if never interned."""
        return self._ids.get(word, UNKNOWN)

    def word_of(self, wid: int) -> str:
        """The word behind an id (raises ``IndexError`` on bad ids)."""
        if wid < 0:
            raise IndexError(f"no word for id {wid}")
        return self._words[wid]

    @classmethod
    def from_store(cls, store) -> "Vocabulary":
        """A vocabulary covering every keyword of a keyphrase store."""
        return cls(store.vocabulary())
